"""Tests for the Pine reimplementation (paper §4.2)."""

import pytest

from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import RequestOutcome
from repro.servers.base import Request
from repro.servers.pine import PineServer
from repro.workloads.attacks import pine_attack_message, pine_poisoned_mailbox


def make_pine(policy_cls, mailbox=None):
    config = {"mailbox": mailbox} if mailbox is not None else {}
    server = PineServer(policy_cls, config=config)
    return server, server.start()


class TestBenignBehaviour:
    def test_boot_builds_index(self):
        server, boot = make_pine(FailureObliviousPolicy)
        assert boot.outcome is RequestOutcome.SERVED
        assert len(server.index_lines) == 3

    def test_read_displays_from_and_subject(self):
        server, _ = make_pine(FailureObliviousPolicy)
        result = server.process(Request(kind="read", payload={"index": 1}))
        assert result.outcome is RequestOutcome.SERVED
        assert b"From:" in result.response.body
        assert b"report" in result.response.body

    def test_read_quotes_special_characters(self):
        server, _ = make_pine(FailureObliviousPolicy)
        result = server.process(Request(kind="read", payload={"index": 1}))
        assert b'\\"Bob B.\\"' in result.response.body

    def test_compose_screen(self):
        server, _ = make_pine(FailureObliviousPolicy)
        result = server.process(Request(kind="compose"))
        assert b"Subject :" in result.response.body

    def test_move_between_folders(self):
        server, _ = make_pine(FailureObliviousPolicy)
        result = server.process(
            Request(kind="move", payload={"index": 0, "target": "saved-messages"})
        )
        assert result.outcome is RequestOutcome.SERVED
        assert len(server.folders["saved-messages"]) == 1
        assert len(server.folders["inbox"]) == 2

    def test_move_to_missing_folder_rejected(self):
        server, _ = make_pine(FailureObliviousPolicy)
        result = server.process(Request(kind="move", payload={"index": 0, "target": "nope"}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_read_out_of_range_rejected(self):
        server, _ = make_pine(FailureObliviousPolicy)
        result = server.process(Request(kind="read", payload={"index": 99}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_benign_mailbox_is_fine_under_all_policies(self):
        for policy_cls in (StandardPolicy, BoundsCheckPolicy, FailureObliviousPolicy):
            server, boot = make_pine(policy_cls)
            assert boot.outcome is RequestOutcome.SERVED, policy_cls.__name__


class TestAttackBehaviour:
    """The From-field overflow (§4.2.2): crash / terminate / execute through."""

    def test_standard_crashes_during_initialization(self):
        _, boot = make_pine(StandardPolicy, mailbox=pine_poisoned_mailbox())
        assert boot.outcome is RequestOutcome.CRASHED

    def test_bounds_check_terminates_during_initialization(self):
        _, boot = make_pine(BoundsCheckPolicy, mailbox=pine_poisoned_mailbox())
        assert boot.outcome is RequestOutcome.TERMINATED_BY_CHECK

    def test_failure_oblivious_boots_and_serves(self):
        server, boot = make_pine(FailureObliviousPolicy, mailbox=pine_poisoned_mailbox())
        assert boot.outcome is RequestOutcome.SERVED
        result = server.process(Request(kind="read", payload={"index": 0}))
        assert result.outcome is RequestOutcome.SERVED

    def test_failure_oblivious_truncates_index_display_only(self):
        """The index shows a truncated From field; selecting the message shows it in full."""
        mailbox = pine_poisoned_mailbox(quoted_characters=32)
        server, _ = make_pine(FailureObliviousPolicy, mailbox=mailbox)
        attack_index = len(mailbox) - 1
        result = server.process(Request(kind="read", payload={"index": attack_index}))
        assert result.outcome is RequestOutcome.SERVED
        # The correct path (selection) renders the full, quoted From field.
        assert result.response.body.count(b"\\\"") == 32

    def test_failure_oblivious_logs_the_errors(self):
        server, _ = make_pine(FailureObliviousPolicy, mailbox=pine_poisoned_mailbox())
        assert server.memory_error_count() > 0
        assert any("pine.quote_from_field" in site for site in
                   server.ctx.error_log.count_by_site())

    def test_attack_message_needs_enough_quoted_characters(self):
        with pytest.raises(ValueError):
            pine_attack_message(quoted_characters=1)

    def test_list_request_re_triggers_error_but_still_serves(self):
        server, _ = make_pine(FailureObliviousPolicy, mailbox=pine_poisoned_mailbox())
        errors_before = server.memory_error_count()
        result = server.process(Request(kind="list"))
        assert result.outcome is RequestOutcome.SERVED
        assert server.memory_error_count() > errors_before
