"""Tests for the experiment runner (figures and security matrix)."""

import pytest

from repro.errors import RequestOutcome
from repro.harness.report import format_figure_table, format_security_matrix, format_simple_table
from repro.harness.runner import (
    FIGURE_NUMBERS,
    benchmark_config,
    build_server,
    run_attack_scenario,
    run_performance_figure,
    run_security_matrix,
)
from repro.servers import SERVER_CLASSES


class TestBuildServer:
    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_builds_and_boots_every_server(self, server_name):
        server = build_server(server_name, "failure-oblivious", scale=0.1)
        assert not server.start().fatal

    def test_unknown_server_rejected(self):
        with pytest.raises(KeyError):
            build_server("nginx", "failure-oblivious")

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            build_server("apache", "asan")

    def test_plant_attack_merges_trigger(self):
        server = build_server("pine", "failure-oblivious", plant_attack=True)
        boot = server.start()
        assert not boot.fatal
        assert server.memory_error_count() > 0

    def test_config_override_wins(self):
        server = build_server("apache", "failure-oblivious",
                              config={"files": {"/only.html": b"x"}})
        server.start()
        assert list(server.files) == ["/only.html"]

    def test_benchmark_config_scales(self):
        small = benchmark_config("midnight-commander", scale=0.1)
        big = benchmark_config("midnight-commander", scale=1.0)
        small_bytes = sum(len(v) for v in small["vfs_files"].values())
        big_bytes = sum(len(v) for v in big["vfs_files"].values())
        assert small_bytes < big_bytes


class TestPerformanceFigure:
    def test_figure_rows_cover_all_request_kinds(self):
        rows = run_performance_figure("mutt", repetitions=3, scale=0.2)
        assert [row.request_kind for row in rows] == ["read", "move"]

    def test_failure_oblivious_is_not_faster_than_standard(self):
        rows = run_performance_figure("sendmail", repetitions=6, scale=0.2,
                                      kinds=["recv_small"])
        assert rows[0].slowdown > 0.8  # allow noise, but FO must not be dramatically faster

    def test_single_kind_selection(self):
        rows = run_performance_figure("apache", repetitions=3, kinds=["small"])
        assert len(rows) == 1

    def test_table_formatting(self):
        rows = run_performance_figure("apache", repetitions=3, kinds=["small"])
        table = format_figure_table(rows)
        assert "Slowdown" in table and "small" in table

    def test_empty_rows_formatting(self):
        assert format_figure_table([]) == "(no rows)"

    def test_figure_numbers_cover_every_server(self):
        assert set(FIGURE_NUMBERS) == set(SERVER_CLASSES)


class TestSecurityMatrix:
    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_failure_oblivious_always_keeps_serving(self, server_name):
        scenario = run_attack_scenario(server_name, "failure-oblivious", scale=0.1)
        assert scenario.survived_attack
        assert scenario.continued_service
        assert not scenario.vulnerable

    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_standard_build_is_vulnerable(self, server_name):
        scenario = run_attack_scenario(server_name, "standard", scale=0.1)
        assert scenario.vulnerable
        assert not scenario.continued_service

    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_bounds_check_build_denies_service(self, server_name):
        scenario = run_attack_scenario(server_name, "bounds-check", scale=0.1)
        outcomes = [scenario.boot.outcome]
        if scenario.attack is not None:
            outcomes.append(scenario.attack.outcome)
        assert RequestOutcome.TERMINATED_BY_CHECK in outcomes
        assert not scenario.continued_service

    def test_matrix_has_one_cell_per_combination(self):
        cells = run_security_matrix(servers=["apache", "mutt"],
                                    policies=("standard", "failure-oblivious"), scale=0.1)
        assert len(cells) == 4

    def test_matrix_formatting(self):
        cells = run_security_matrix(servers=["apache"], policies=("failure-oblivious",), scale=0.1)
        table = format_security_matrix(cells)
        assert "apache" in table and "failure-oblivious" in table

    def test_simple_table_formatting(self):
        table = format_simple_table(["a", "b"], [[1, "x"], [22, "yy"]], title="T")
        assert "T" in table and "22" in table
