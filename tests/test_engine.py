"""Tests for the ServerProfile registry and the declarative experiment engine.

The key property under test is pluggability: a brand-new "sixth server" —
defined entirely inside this test module — registers a profile and runs
through every engine workload shape with zero edits to any harness module.
"""

import pytest

from repro.harness.engine import ENGINE, ExperimentEngine, ScenarioSpec, SecurityCell
from repro.harness.stability import run_stability_experiment
from repro.servers import SERVER_CLASSES
from repro.servers.base import Request, Response, Server, ServerError
from repro.servers.profile import (
    PROFILES,
    ServerProfile,
    get_profile,
    profile_names,
    register_profile,
    unregister_profile,
)


# ---------------------------------------------------------------------------
# The toy sixth server: a tiny key-value store with no memory errors at all.
# ---------------------------------------------------------------------------


class ToyKvServer(Server):
    """A sixth server the harness has never heard of."""

    name = "toy-kv"

    def startup(self) -> None:
        self.store = dict(self.config.get("initial", {}))

    def handle(self, request: Request) -> Response:
        if request.kind == "put":
            self.store[request.payload["key"]] = request.payload["value"]
            return Response.ok(detail="stored")
        if request.kind == "get":
            key = request.payload["key"]
            if key not in self.store:
                raise ServerError(f"no such key {key!r}")
            return Response.ok(body=self.store[key])
        raise ServerError(f"unknown request kind {request.kind!r}")


def _toy_request(kind: str, index: int) -> Request:
    if kind == "put":
        return Request(kind="put", payload={"key": f"k{index}", "value": b"v"})
    return Request(kind="get", payload={"key": "seed"})


def _toy_profile(name: str = "toy-kv") -> ServerProfile:
    return ServerProfile(
        name=name,
        server_cls=ToyKvServer,
        figure_rows=("get", "put"),
        benchmark_config=lambda scale: {"initial": {"seed": b"x" * max(int(8 * scale), 1)}},
        request_factory=_toy_request,
        # The "attack" is an anticipated error: the server rejects it and
        # keeps serving, so every build survives it.
        attack_request=lambda: Request(
            kind="get", payload={"key": "missing"}, is_attack=True
        ),
        follow_ups=lambda: [Request(kind="get", payload={"key": "seed"})],
        description="toy sixth server used by the engine tests",
    )


@pytest.fixture
def toy_profile():
    profile = register_profile(_toy_profile())
    yield profile
    unregister_profile(profile.name)


class TestRegistryRoundTrip:
    def test_register_get_unregister(self):
        profile = _toy_profile("toy-roundtrip")
        assert "toy-roundtrip" not in profile_names()
        register_profile(profile)
        try:
            assert get_profile("toy-roundtrip") is profile
            assert "toy-roundtrip" in profile_names()
            assert PROFILES["toy-roundtrip"] is profile
        finally:
            removed = unregister_profile("toy-roundtrip")
        assert removed is profile
        assert "toy-roundtrip" not in profile_names()
        with pytest.raises(KeyError):
            get_profile("toy-roundtrip")

    def test_every_paper_server_has_a_profile(self):
        for server_name, server_cls in SERVER_CLASSES.items():
            profile = get_profile(server_name)
            assert profile.server_cls is server_cls
            assert profile.figure_rows
            assert profile.attack_request is not None
            assert profile.make_follow_ups()

    def test_registration_does_not_widen_the_paper_scope(self, toy_profile):
        # SERVER_CLASSES (and the default security matrix scope) stay at the
        # paper's five servers even while a plugin profile is registered.
        assert toy_profile.name not in SERVER_CLASSES
        cells = ENGINE.run_security_matrix(policies=("failure-oblivious",), scale=0.1)
        assert {cell.server for cell in cells} == set(SERVER_CLASSES)

    def test_unknown_profile_error_names_the_known_servers(self):
        with pytest.raises(KeyError, match="pine"):
            get_profile("nginx")


class TestEngineDispatch:
    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="performance"):
            ENGINE.run(ScenarioSpec(server="pine", workload="chaos"))

    def test_workload_registration(self, toy_profile):
        engine = ExperimentEngine()
        engine.register_workload(
            "boot-only",
            lambda eng, spec: eng.build_server(spec.server, spec.policy).start(),
        )
        assert "boot-only" in engine.workload_names()
        boot = engine.run(ScenarioSpec(server=toy_profile.name, workload="boot-only"))
        assert not boot.fatal

    def test_spec_with_replaces_fields(self):
        spec = ScenarioSpec(server="pine")
        attack = spec.with_(workload="attack", scale=0.1)
        assert attack.server == "pine" and attack.workload == "attack"
        assert spec.workload == "performance"  # original untouched

    def test_performance_stops_measured_servers(self, monkeypatch):
        stopped = []
        original_stop = Server.stop

        def tracking_stop(self):
            stopped.append(self)
            original_stop(self)

        monkeypatch.setattr(Server, "stop", tracking_stop)
        ENGINE.run(
            ScenarioSpec(server="apache", workload="performance",
                         repetitions=2, scale=0.1, kinds=("small",))
        )
        # One warm-up server plus one server per (kind, policy) cell.
        assert len(stopped) == 3
        assert all(not server.alive for server in stopped)


class TestToySixthServer:
    """A new server runs through every shape with zero harness edits."""

    def test_performance_figure(self, toy_profile):
        rows = ENGINE.run(
            ScenarioSpec(server=toy_profile.name, workload="performance",
                         repetitions=3, scale=0.5)
        )
        assert [row.request_kind for row in rows] == ["get", "put"]
        for row in rows:
            assert row.baseline.all_served
            assert row.failure_oblivious.all_served

    def test_attack_scenario(self, toy_profile):
        scenario = ENGINE.run(
            ScenarioSpec(server=toy_profile.name, policy="failure-oblivious",
                         workload="attack", scale=0.5)
        )
        assert scenario.survived_attack
        assert scenario.continued_service
        assert not scenario.vulnerable

    def test_attack_scenario_under_every_build(self, toy_profile):
        # The toy server has no memory errors, so every build survives.
        for policy in ("standard", "bounds-check", "failure-oblivious"):
            scenario = ENGINE.run(
                ScenarioSpec(server=toy_profile.name, policy=policy, workload="attack")
            )
            assert scenario.continued_service, policy

    def test_security_matrix_cell(self, toy_profile):
        cells = ENGINE.run_security_matrix(
            servers=[toy_profile.name], policies=("failure-oblivious",), scale=0.5
        )
        assert len(cells) == 1
        assert cells[0].server == toy_profile.name
        assert cells[0].continued_service

    def test_stability_workload(self, toy_profile):
        result = ENGINE.run(
            ScenarioSpec(server=toy_profile.name, workload="stability", scale=0.5,
                         params={"total_requests": 12, "attack_every": 4})
        )
        assert result.flawless
        assert result.attacks_survived == result.attack_requests

    def test_old_entry_points_see_the_plugin_too(self, toy_profile):
        # The deprecation shims route through the same registry.
        from repro.harness.runner import build_server, run_attack_scenario

        server = build_server(toy_profile.name, "failure-oblivious")
        assert not server.start().fatal
        scenario = run_attack_scenario(toy_profile.name, "failure-oblivious")
        assert scenario.continued_service


class TestServerStop:
    def test_stop_refuses_further_requests_but_keeps_introspection(self):
        server = ENGINE.build_server("apache", "failure-oblivious", scale=0.1)
        assert not server.start().fatal
        server.stop()
        assert not server.alive
        result = server.process(Request(kind="get", payload={"url": "/index.html"}))
        assert result.fatal
        assert server.memory_error_count() == 0  # error log still readable

    def test_stability_shim_matches_direct_call(self, toy_profile):
        direct = run_stability_experiment(
            toy_profile.name, "failure-oblivious", total_requests=8, attack_every=4
        )
        assert direct.flawless


class TestRunMany:
    """The pooled fan-out must be observably identical to the serial path."""

    def test_serial_and_parallel_results_identical(self):
        specs = [
            ScenarioSpec(server=name, policy=policy, workload="attack", scale=0.1)
            for name in sorted(SERVER_CLASSES)
            for policy in ("standard", "bounds-check", "failure-oblivious")
        ]
        serial = ENGINE.run_many(specs)
        parallel = ENGINE.run_many(specs, workers=4)
        assert len(parallel) == len(specs)
        serial_cells = [SecurityCell.from_scenario(s) for s in serial]
        parallel_cells = [SecurityCell.from_scenario(s) for s in parallel]
        assert serial_cells == parallel_cells

    def test_security_matrix_parallel_matches_serial(self):
        serial = ENGINE.run_security_matrix(scale=0.1)
        parallel = ENGINE.run_security_matrix(scale=0.1, workers=3)
        assert serial == parallel

    def test_timed_results_carry_positive_wall_clock(self):
        specs = [ScenarioSpec(server="mutt", workload="attack", scale=0.1)]
        pairs = ENGINE.run_many(specs, timed=True)
        assert len(pairs) == 1
        result, seconds = pairs[0]
        assert result.server == "mutt"
        assert seconds > 0

    def test_workers_one_is_the_serial_path(self):
        specs = [ScenarioSpec(server="pine", workload="attack", scale=0.1)]
        assert ENGINE.run_many(specs, workers=1)[0].server == "pine"

    def test_custom_workload_survives_the_fork(self, toy_profile):
        engine = ExperimentEngine()
        engine.register_workload(
            "boot-only",
            lambda eng, spec: eng.build_server(spec.server, spec.policy).start().outcome.value,
        )
        specs = [
            ScenarioSpec(server=toy_profile.name, workload="boot-only"),
            ScenarioSpec(server="mutt", workload="boot-only", scale=0.1),
        ]
        assert engine.run_many(specs, workers=2) == ["served", "served"]
