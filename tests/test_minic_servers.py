"""Tests for the in-VM server scenarios hosting compiled mini-C programs.

``minic-pine`` and ``minic-sendmail`` run the paper's vulnerable C functions
(:mod:`repro.minic.programs`) through the mini-C front end and span-lowering
pass inside a live :class:`~repro.servers.base.Server`, registered through
the same plugin path as ``examples/custom_server_plugin.py``.  The tests pin
the paper's three-build contrast, the program's own §4.1 error handling
under failure-oblivious execution, checkpoint-restart fidelity of the
interpreter state, and the fleet-soak clone path.
"""

from __future__ import annotations

import pytest

from repro.errors import RequestOutcome
from repro.fleet.scheduler import InstanceSpec, run_fleet
from repro.servers.base import Request
from repro.servers.minic_host import (
    MiniCPineServer,
    MiniCSendmailServer,
    pine_attack_mailbox,
    sendmail_attack_sender,
)
from repro.servers.profile import get_profile
from tests.conftest import POLICY_CLASSES

SURVIVING = ("failure-oblivious", "boundless", "redirect")


def make_pine(policy_name, mailbox=None):
    config = {"mailbox": mailbox} if mailbox is not None else {}
    server = MiniCPineServer(POLICY_CLASSES[policy_name], config=config)
    return server, server.start()


def make_sendmail(policy_name):
    server = MiniCSendmailServer(POLICY_CLASSES[policy_name])
    return server, server.start()


def deliver(sender):
    return Request(kind="deliver", payload={"sender": sender, "body": b"hi"})


# ---------------------------------------------------------------------------
# Benign behaviour: the compiled programs serve requests under every build
# ---------------------------------------------------------------------------


class TestBenignBehaviour:
    def test_pine_serves_under_every_policy(self, any_policy_name):
        server, boot = make_pine(any_policy_name)
        assert boot.outcome is RequestOutcome.SERVED, any_policy_name
        listing = server.process(Request(kind="list"))
        assert listing.outcome is RequestOutcome.SERVED
        assert b"carol@example.net" in listing.response.body
        assert b"Alice Adams  lunch" in listing.response.body
        read = server.process(Request(kind="read", payload={"index": 0}))
        assert read.outcome is RequestOutcome.SERVED
        assert read.response.body.startswith(b"From: ")
        lookup = server.process(Request(kind="lookup", payload={"mailbox": b"carol"}))
        assert lookup.outcome is RequestOutcome.SERVED

    def test_pine_index_lines_are_clipped_by_strncat(self):
        server, _ = make_pine(
            "failure-oblivious",
            mailbox=[{"personal": b"P" * 60, "mailbox": b"p", "host": b"h",
                      "subject": b"S" * 70, "body": b""}],
        )
        listing = server.process(Request(kind="list"))
        assert listing.outcome is RequestOutcome.SERVED
        # strncat clips from/subject into the fixed 80-byte line buffer.
        line = listing.response.body.split(b"\n")[1]
        assert b"P" * 24 in line and b"P" * 25 not in line
        assert b"S" * 40 in line and b"S" * 41 not in line

    def test_pine_unknown_lookup_is_an_ordinary_rejection(self, any_policy_name):
        server, _ = make_pine(any_policy_name)
        result = server.process(Request(kind="lookup", payload={"mailbox": b"zelda"}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_sendmail_delivers_under_every_policy(self, any_policy_name):
        server, boot = make_sendmail(any_policy_name)
        assert boot.outcome is RequestOutcome.SERVED
        result = server.process(deliver(b"alice@example.org"))
        assert result.outcome is RequestOutcome.SERVED
        assert result.response.body.startswith(b"From: alice@example.org")
        stat = server.process(Request(kind="stat"))
        assert stat.outcome is RequestOutcome.SERVED
        assert b"delivered 1" in stat.response.body
        assert b"remote 1" in stat.response.body

    def test_sendmail_balanced_comments_survive_everywhere(self, any_policy_name):
        server, _ = make_sendmail(any_policy_name)
        result = server.process(deliver(b"alice(home desk)@example.org"))
        assert result.outcome is RequestOutcome.SERVED
        assert b"(home desk)" in result.response.body

    def test_tree_walk_configuration_serves_too(self):
        server = MiniCPineServer(
            POLICY_CLASSES["failure-oblivious"], config={"lower": False}
        )
        boot = server.start()
        assert boot.outcome is RequestOutcome.SERVED
        result = server.process(Request(kind="read", payload={"index": 0}))
        assert result.outcome is RequestOutcome.SERVED


# ---------------------------------------------------------------------------
# The attack: three builds, three behaviours (paper §2)
# ---------------------------------------------------------------------------


class TestPineAttack:
    """The est_size quoting overflow fires while booting the poisoned mailbox."""

    def test_standard_build_crashes(self):
        _, boot = make_pine("standard", mailbox=pine_attack_mailbox())
        assert boot.outcome is RequestOutcome.CRASHED

    def test_bounds_check_build_terminates(self):
        _, boot = make_pine("bounds-check", mailbox=pine_attack_mailbox())
        assert boot.outcome is RequestOutcome.TERMINATED_BY_CHECK

    @pytest.mark.parametrize("policy", SURVIVING)
    def test_surviving_builds_keep_serving(self, policy):
        server, boot = make_pine(policy, mailbox=pine_attack_mailbox())
        assert boot.outcome is RequestOutcome.SERVED, policy
        # The overflow happened and was attributed to the vulnerable site.
        assert server.ctx.error_log.count_by_site().get("minic_pine.addr_string", 0) > 0
        # Legitimate traffic continues: the paper's acceptability argument.
        read = server.process(Request(kind="read", payload={"index": 0}))
        assert read.outcome is RequestOutcome.SERVED
        lookup = server.process(Request(kind="lookup", payload={"mailbox": b"attacker"}))
        assert lookup.outcome is RequestOutcome.SERVED

    def test_failure_oblivious_overflow_is_write_only(self):
        server, _ = make_pine("failure-oblivious", mailbox=pine_attack_mailbox())
        assert server.ctx.error_log.count_writes() > 0
        server.ctx.heap.verify_heap()  # discarded writes left the heap intact


class TestSendmailAttack:
    """The crackaddr walk: the program's own length check rejects what the
    failure-oblivious build survives (§4.1's anticipated-error story)."""

    def test_bounds_check_build_terminates(self):
        server, _ = make_sendmail("bounds-check")
        result = server.process(deliver(sendmail_attack_sender()))
        assert result.outcome is RequestOutcome.TERMINATED_BY_CHECK

    @pytest.mark.parametrize("policy", SURVIVING)
    def test_surviving_builds_reject_via_program_logic(self, policy):
        server, _ = make_sendmail(policy)
        attack = server.process(deliver(sendmail_attack_sender()))
        # crackaddr survives the overflow, then format_header's post-parse
        # length check rejects the address: sendmail's own 552 response.
        assert attack.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING, policy
        follow_up = server.process(deliver(b"bob@example.org"))
        assert follow_up.outcome is RequestOutcome.SERVED
        stat = server.process(Request(kind="stat"))
        assert b"rejected 1" in stat.response.body

    def test_standard_build_corruption_is_deferred(self):
        """Unchecked, the overflow silently corrupts neighbouring state: the
        attack request itself returns (the length check still fires), and the
        damage surfaces on a later request — the paper's worst case."""
        server, _ = make_sendmail("standard")
        first = server.process(deliver(sendmail_attack_sender()))
        second = server.process(deliver(b"bob@example.org"))
        outcomes = {first.outcome, second.outcome}
        assert RequestOutcome.SERVED not in outcomes or not server.alive
        assert any(
            outcome in (RequestOutcome.CRASHED, RequestOutcome.EXPLOITED,
                        RequestOutcome.HUNG)
            for outcome in outcomes
        )

    def test_error_log_attributes_the_overflow(self):
        server, _ = make_sendmail("failure-oblivious")
        server.process(deliver(sendmail_attack_sender()))
        assert server.ctx.error_log.count_by_site().get(
            "minic_sendmail.crackaddr", 0) > 0


# ---------------------------------------------------------------------------
# Checkpoint restarts: the frozen interpreter state re-binds on restore
# ---------------------------------------------------------------------------


class TestCheckpointRestart:
    def test_pine_restart_recovers_interpreter_state(self):
        server, _ = make_pine("failure-oblivious", mailbox=pine_attack_mailbox())
        server.process(Request(kind="list"))
        result = server.restart()
        assert result.outcome is RequestOutcome.SERVED
        # The restored instance's struct-pointer handles and globals resolve
        # against the restored object table: the linked-list walk still works.
        lookup = server.process(Request(kind="lookup", payload={"mailbox": b"alice"}))
        assert lookup.outcome is RequestOutcome.SERVED
        read = server.process(Request(kind="read", payload={"index": 0}))
        assert read.outcome is RequestOutcome.SERVED
        assert read.response.body.startswith(b"From: ")

    def test_sendmail_crash_restart_loop(self):
        server, _ = make_sendmail("standard")
        server.process(deliver(sendmail_attack_sender()))
        server.process(deliver(b"bob@example.org"))
        if not server.alive:
            restart = server.restart()
            assert restart.outcome is RequestOutcome.SERVED
        result = server.process(deliver(b"carol@example.net"))
        assert result.outcome is RequestOutcome.SERVED

    def test_restarted_globals_point_at_restored_bytes(self):
        server, _ = make_pine("failure-oblivious")
        server.restart()
        # global_string reads through the thawed global slot.
        server.process(Request(kind="list"))
        assert server.global_string("line")


# ---------------------------------------------------------------------------
# Profile registration: the zero-harness-edit plugin path
# ---------------------------------------------------------------------------


class TestProfiles:
    @pytest.mark.parametrize("name", ["minic-pine", "minic-sendmail"])
    def test_registered_with_attack_scenario(self, name):
        profile = get_profile(name)
        assert profile.figure_rows
        attack = profile.attack_request()
        assert attack.is_attack
        assert profile.follow_ups()

    def test_benchmark_config_scales_the_mailbox(self):
        profile = get_profile("minic-pine")
        small = profile.benchmark_config(0.5)["mailbox"]
        large = profile.benchmark_config(4.0)["mailbox"]
        assert len(large) > len(small) >= 3


# ---------------------------------------------------------------------------
# Fleet soaks: pre-fork clones of the compiled programs
# ---------------------------------------------------------------------------


class TestFleetSoak:
    def test_minic_fleet_matches_the_paper_contrast(self):
        specs = [
            InstanceSpec("minic-pine", "failure-oblivious", count=2, attack_every=6),
            InstanceSpec("minic-pine", "bounds-check", count=1, attack_every=6),
            InstanceSpec("minic-sendmail", "failure-oblivious", count=2, attack_every=6),
        ]
        result = run_fleet(specs, total_requests=90, seed=11, workers=0)
        by_group = {}
        for tally in result.instances:
            by_group.setdefault((tally.server, tally.policy), []).append(tally)

        for tally in by_group[("minic-pine", "failure-oblivious")]:
            assert tally.availability == 1.0
            assert tally.attacks_survived == tally.attack_requests > 0
            assert tally.error_sites.get("minic_pine.addr_string", 0) > 0

        # The checked build dies booting the planted mailbox: boot-fatal,
        # every arrival dropped.
        assert result.boot_fatal["minic-pine/bounds-check"]
        for tally in by_group[("minic-pine", "bounds-check")]:
            assert tally.availability == 0.0
            assert tally.dropped == tally.requests

        for tally in by_group[("minic-sendmail", "failure-oblivious")]:
            assert tally.availability == 1.0
            assert tally.server_deaths == 0
            assert tally.error_sites.get("minic_sendmail.crackaddr", 0) > 0

    def test_standard_sendmail_dies_and_restarts_in_the_fleet(self):
        specs = [InstanceSpec("minic-sendmail", "standard", count=1, attack_every=8)]
        result = run_fleet(specs, total_requests=48, seed=7, workers=0)
        tally = result.instances[0]
        assert tally.server_deaths > 0
        assert tally.restarts >= tally.server_deaths
        assert tally.legitimate_served > 0
