"""Tests for the mini-C tokenizer."""

import pytest

from repro.minic.lexer import LexError, TokenType, tokenize


def kinds(source):
    return [token.type for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestTokens:
    def test_empty_source_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENT
        assert tokens[1].value == "foo"

    def test_decimal_number(self):
        assert values("42") == [42]

    def test_hex_number(self):
        assert values("0xFF 0x1f") == [255, 31]

    def test_integer_suffixes_swallowed(self):
        assert values("10UL 5u") == [10, 5]

    def test_char_literal(self):
        assert values("'a'") == [ord("a")]

    def test_char_escapes(self):
        assert values(r"'\0' '\n' '\\' '\x41'") == [0, 10, 92, 65]

    def test_string_literal(self):
        assert values('"hello"') == [b"hello"]

    def test_string_with_escapes(self):
        assert values(r'"a\tb\n"') == [b"a\tb\n"]

    def test_multi_character_punctuation(self):
        assert values("a <<= b >> c != d") == ["a", "<<=", "b", ">>", "c", "!=", "d"]

    def test_increment_versus_plus(self):
        assert values("a++ + b") == ["a", "++", "+", "b"]

    def test_line_comments_ignored(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comments_ignored(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_unterminated_string_rejected(self):
        with pytest.raises(LexError):
            tokenize('"open')

    def test_unknown_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_helper_predicates(self):
        token = tokenize("while")[0]
        assert token.is_keyword("while") and not token.is_keyword("for")
        punct = tokenize(";")[0]
        assert punct.is_punct(";")
