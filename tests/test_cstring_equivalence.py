"""Equivalence of the span-based fast paths with per-byte references.

The fast paths in :mod:`repro.memory.cstring` and the accessor's span helpers
— including the batched out-of-bounds continuation, which hands a whole
invalid run to the policy in one call — must be observably identical to the
byte-at-a-time loops they replaced, under every policy, for everything a
program (or the paper's evaluation) can see: returned values, the final
memory image, the error-log event stream and every aggregate query over it,
the policy's continuation statistics, and the manufactured-value sequence's
consumption.  The single intentional exception is ``checks_performed``, which
counts one check per span/run rather than per byte (see README
"Performance").

Each property builds two identically laid-out contexts, runs the reference
byte loop on one and the shipped fast path on the other, and compares.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryFault
from repro.memory import cstring
from repro.memory.context import MemoryContext
from repro.memory.pointer import FatPointer
from repro.telemetry.sinks import CounterSink
from tests.conftest import POLICY_CLASSES
from tests.reference_cstring import (
    ref_read_c_string,
    ref_strchr,
    ref_strcmp,
    ref_strcpy,
    ref_strlen,
    ref_strncpy,
)

POLICY_NAMES = sorted(POLICY_CLASSES)


# -- comparison plumbing -------------------------------------------------------


def _normalize_event(event):
    """Comparable identity of one error-log event across twin contexts.

    The unit *serial* differs between contexts (it is a global counter), so
    the unit is identified by its base name + size instead.
    """
    return (
        event.kind, event.access, event.offset, event.length, event.site,
        event.unit_name.split("#")[0], event.unit_size,
    )


def _observe(ctx, outcome):
    """Everything a program can observe after one cstring call.

    ``checks_performed`` is deliberately excluded: the fast path pays one
    check per span (and, since the batched continuation, one per invalid
    run) instead of per byte, which is the documented invariant change.
    """
    stats = ctx.policy.stats.as_dict()
    stats.pop("checks_performed")
    log = ctx.error_log
    sequence = getattr(ctx.policy, "sequence", None)
    counters = ctx.observed_counters
    return {
        "outcome": outcome,
        "heap": bytes(ctx.space.heap.data),
        "events": [_normalize_event(event) for event in log.events()],
        "stats": stats,
        # The full §3 error-log query surface: aggregate answers must not
        # depend on whether the stream was recorded per byte or as runs.
        "log_total": log.total_recorded,
        "log_dropped": log.dropped,
        "log_by_site": log.count_by_site(),
        "log_by_kind": log.count_by_kind(),
        "log_reads": log.count_reads(),
        "log_writes": log.count_writes(),
        "log_top_sites": log.most_common_sites(3),
        "log_tail": [_normalize_event(event) for event in log.tail(4)],
        "log_summary": log.summary(),
        # Stream-level aggregates (what a trace summary reports): the
        # CounterSink weighs run records by their count, so these equal the
        # per-byte stream's aggregates field for field.
        "counters": {
            "by_type": counters.by_type,
            "invalid_total": counters.invalid_total,
            "invalid_by_site": counters.invalid_by_site,
            "invalid_by_kind": counters.invalid_by_kind,
            "invalid_by_access": counters.invalid_by_access,
            "manufactured_bytes": counters.manufactured_bytes,
            "discarded_bytes": counters.discarded_bytes,
            "stored_bytes": counters.stored_bytes,
            "redirected_accesses": counters.redirected_accesses,
        },
        # Manufactured-value consumption: identical counts plus identical
        # returned bytes pin down identical consumption order.
        "sequence_produced": sequence.produced if sequence is not None else None,
    }


def _normalize(value, base_ptr):
    """Make return values comparable across twin contexts."""
    if isinstance(value, FatPointer):
        # Pointers from different contexts never compare equal; the offset
        # from the argument pointer is the meaningful identity.
        return ("ptr", value.address - base_ptr.address)
    return value


def _run_twin(policy_name, setup, reference_op, fast_op):
    """Run reference and fast implementations on twin contexts and compare.

    ``SCAN_LIMIT`` is shrunk for the duration: runaway scans (overlapping
    self-propagating copies, unterminated buffers under the Standard build)
    otherwise walk the per-byte reference through up to a mebibyte of heap
    per example.  Both implementations read the module global at call time,
    so the guard fires identically.
    """
    observations = []
    original_limit = cstring.SCAN_LIMIT
    cstring.SCAN_LIMIT = 2048
    try:
        for operation in (reference_op, fast_op):
            # Small segments: the default 4 MiB heap makes per-example
            # snapshots the dominant cost of the whole suite.
            ctx = MemoryContext(POLICY_CLASSES[policy_name](),
                                heap_size=32 * 1024, stack_size=8 * 1024,
                                globals_size=4 * 1024)
            ctx.observed_counters = ctx.bus.attach(CounterSink())
            pointers = setup(ctx)
            ctx.observed_counters.clear()  # setup allocations are not under test
            try:
                outcome = ("ok", _normalize(operation(ctx.mem, *pointers), pointers[0]))
            except MemoryFault as fault:
                outcome = ("fault", type(fault).__name__)
            observations.append(_observe(ctx, outcome))
    finally:
        cstring.SCAN_LIMIT = original_limit
    reference, fast = observations
    assert fast == reference


# -- strategies ----------------------------------------------------------------

policies = st.sampled_from(POLICY_NAMES)
text = st.binary(min_size=0, max_size=48).map(lambda b: b.replace(b"\x00", b"\x01"))
sizes = st.integers(min_value=1, max_value=64)
COMMON_SETTINGS = dict(max_examples=40, deadline=None)


class TestStrcpyFamily:
    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, dst_size=sizes)
    def test_strcpy_including_partial_overflow(self, policy, payload, dst_size):
        """dst smaller than src straddles the unit boundary mid-copy."""

        def setup(ctx):
            src = ctx.alloc_c_string(payload)
            dst = ctx.malloc(dst_size)
            return dst, src

        _run_twin(policy, setup, ref_strcpy, cstring.strcpy)

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, dst_size=sizes,
           n=st.integers(min_value=0, max_value=96))
    def test_strncpy_with_nul_padding(self, policy, payload, dst_size, n):
        def setup(ctx):
            src = ctx.alloc_c_string(payload)
            dst = ctx.malloc(dst_size)
            return dst, src

        _run_twin(policy, setup,
                  lambda mem, d, s: ref_strncpy(mem, d, s, n),
                  lambda mem, d, s: cstring.strncpy(mem, d, s, n))

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, delta=st.integers(min_value=-8, max_value=8))
    def test_strcpy_overlapping_regions(self, policy, payload, delta):
        """Overlapping forward copies must self-propagate exactly like C."""

        def setup(ctx):
            buf = ctx.malloc(len(payload) + 24)
            cstring.write_c_string(ctx.mem, buf + max(0, -delta), payload)
            src = buf + max(0, -delta)
            dst = src + delta
            return dst, src

        _run_twin(policy, setup, ref_strcpy, cstring.strcpy)


class TestScanFamily:
    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, limit=st.integers(min_value=0, max_value=80))
    def test_strlen_with_guard_limits(self, policy, payload, limit):
        def setup(ctx):
            return (ctx.alloc_c_string(payload),)

        _run_twin(policy, setup,
                  lambda mem, s: ref_strlen(mem, s, limit),
                  lambda mem, s: cstring.strlen(mem, s, limit))

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, ch=st.integers(min_value=0, max_value=255))
    def test_strchr(self, policy, payload, ch):
        def setup(ctx):
            return (ctx.alloc_c_string(payload),)

        def fast(mem, s):
            found = cstring.strchr(mem, s, ch)
            return None if found is None else found - s

        def reference(mem, s):
            found = ref_strchr(mem, s, ch)
            return None if found is None else found - s

        _run_twin(policy, setup, reference, fast)

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, left=text, right=text)
    def test_strcmp(self, policy, left, right):
        def setup(ctx):
            return ctx.alloc_c_string(left), ctx.alloc_c_string(right)

        _run_twin(policy, setup, ref_strcmp, cstring.strcmp)

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, missing_nul=st.booleans(),
           limit=st.integers(min_value=0, max_value=512))
    def test_read_c_string(self, policy, payload, missing_nul, limit):
        """missing_nul plants a buffer with no terminator: the scan runs off
        the unit and the policy decides what happens next.  An explicit limit
        keeps the redirect policy — which wraps the scan back into the
        NUL-free unit forever — bounded."""

        def setup(ctx):
            if missing_nul:
                buf = ctx.malloc(max(1, len(payload)), name="unterminated")
                ctx.mem.write(buf, payload[: max(1, len(payload))] or b"\x01")
                return (buf,)
            return (ctx.alloc_c_string(payload),)

        _run_twin(policy, setup,
                  lambda mem, s: ref_read_c_string(mem, s, limit),
                  lambda mem, s: cstring.read_c_string(mem, s, limit))


class TestRedirectWraparound:
    """Redirect-policy bulk paths against their per-byte definition."""

    @pytest.mark.parametrize("length", [1, 3, 8, 11, 24])
    def test_redirected_read_wraps_like_per_byte(self, length):
        ctx = MemoryContext(POLICY_CLASSES["redirect"]())
        buf = ctx.malloc(8)
        ctx.mem.write(buf, b"01234567")
        data = ctx.mem.read(buf + 9, length)
        expected = bytes(b"01234567"[(9 + i) % 8] for i in range(length))
        assert data == expected

    @pytest.mark.parametrize("length", [1, 3, 8, 11, 24])
    def test_redirected_write_wraps_like_per_byte(self, length):
        reference_ctx = MemoryContext(POLICY_CLASSES["redirect"]())
        fast_ctx = MemoryContext(POLICY_CLASSES["redirect"]())
        payload = bytes((i * 37 + 5) % 256 for i in range(length))
        images = []
        for ctx, bulk in ((reference_ctx, False), (fast_ctx, True)):
            buf = ctx.malloc(8)
            ctx.mem.write(buf, b"01234567")
            if bulk:
                ctx.mem.write(buf + 9, payload)
            else:
                for i, byte in enumerate(payload):
                    ctx.mem.write_byte(buf + 9 + i, byte)
            images.append(ctx.mem.read(buf, 8))
        assert images[0] == images[1]


# -- accessor-level span helpers ------------------------------------------------


def ref_read_span(mem, ptr, n):
    """Per-byte reference for MemoryAccessor.read_span."""
    return bytes(mem.read_byte(ptr + i) for i in range(n))


def ref_write_span(mem, ptr, data):
    """Per-byte reference for MemoryAccessor.write_span."""
    for i in range(len(data)):
        mem.write_byte(ptr + i, data[i])


class TestSpanHelperEquivalence:
    """read_span/write_span with out-of-bounds suffixes, prefixes, and UAF.

    These drive the batched continuation directly: the invalid portion of
    the range reaches the policy as one run, and every observation must
    match the per-byte loops above — including pointers that start below
    their unit (the run re-enters bounds) and dead units.
    """

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, unit_size=sizes,
           start=st.integers(min_value=-24, max_value=80),
           length=st.integers(min_value=1, max_value=96))
    def test_read_span_with_oob_runs(self, policy, unit_size, start, length):
        def setup(ctx):
            base = ctx.malloc(unit_size, name="window")
            ctx.mem.write(base, bytes((i * 7 + 1) % 256 for i in range(unit_size)))
            return (base + start,)

        _run_twin(policy, setup,
                  lambda mem, p: ref_read_span(mem, p, length),
                  lambda mem, p: mem.read_span(p, length))

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, unit_size=sizes,
           start=st.integers(min_value=-24, max_value=80),
           payload=st.binary(min_size=1, max_size=96))
    def test_write_span_with_oob_runs(self, policy, unit_size, start, payload):
        def setup(ctx):
            base = ctx.malloc(unit_size, name="window")
            return (base + start,)

        _run_twin(policy, setup,
                  lambda mem, p: ref_write_span(mem, p, payload),
                  lambda mem, p: mem.write_span(p, payload))

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, unit_size=sizes,
           length=st.integers(min_value=1, max_value=64),
           use_read=st.booleans())
    def test_use_after_free_runs(self, policy, unit_size, length, use_read):
        """The whole range over a dead unit is one use-after-free run."""

        def setup(ctx):
            base = ctx.malloc(unit_size, name="freed")
            ctx.free(base)
            return (base,)

        if use_read:
            _run_twin(policy, setup,
                      lambda mem, p: ref_read_span(mem, p, length),
                      lambda mem, p: mem.read_span(p, length))
        else:
            payload = bytes(range(length % 251, length % 251 + length))[:length] or b"\x01"
            _run_twin(policy, setup,
                      lambda mem, p: ref_write_span(mem, p, payload),
                      lambda mem, p: mem.write_span(p, payload))

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, dst_size=sizes,
           terminated=st.booleans())
    def test_read_span_until_crosses_the_boundary(self, policy, payload, dst_size, terminated):
        """read_span_until with a limit past the unit end: the scan either
        finds the NUL in the span or continues through the invalid run via
        the policy's scan hook (falling back per byte where it must)."""

        def setup(ctx):
            buf = ctx.malloc(max(1, dst_size), name="scanbuf")
            stored = payload[:dst_size]
            if stored:
                ctx.mem.write(buf, stored)
            if terminated and len(stored) < dst_size:
                ctx.mem.write_byte(buf + len(stored), 0)
            return (buf,)

        def reference(mem, p):
            # Per-byte model of "read until NUL, limit N": read_byte until a
            # zero appears or the limit is exhausted.
            limit = dst_size + 16
            out = bytearray()
            for i in range(limit):
                byte = mem.read_byte(p + i)
                out.append(byte)
                if byte == 0:
                    return (bytes(out), i)
            return (bytes(out), -1)

        def fast(mem, p):
            limit = dst_size + 16
            out = bytearray()
            pos = 0
            # Mirror the reference loop on top of read_span_until, taking the
            # per-byte path wherever the accessor reports no progress.
            while pos < limit:
                data, index = mem.read_span_until(p + pos, 0, limit - pos)
                if index >= 0:
                    out += data
                    return (bytes(out), pos + index)
                if data:
                    out += data
                    pos += len(data)
                    continue
                byte = mem.read_byte(p + pos)
                out.append(byte)
                if byte == 0:
                    return (bytes(out), pos)
                pos += 1
            return (bytes(out), -1)

        _run_twin(policy, setup, reference, fast)


class TestAttackFloodEquivalence:
    """The headline scenario: a long attack payload overflowing a small buffer.

    The destination leaves its unit early, so nearly every written byte is an
    invalid access — exactly the flood the batched continuation collapses to
    one policy decision per source span.  Everything observable must equal
    the frozen per-byte loops, under every policy.
    """

    @settings(max_examples=20, deadline=None)
    @given(policy=policies,
           dst_size=st.integers(min_value=1, max_value=16),
           flood_len=st.integers(min_value=32, max_value=600))
    def test_strcpy_flood(self, policy, dst_size, flood_len):
        def setup(ctx):
            src = ctx.alloc_c_string(b"A" * flood_len, name="attack")
            dst = ctx.malloc(dst_size, name="victim")
            return dst, src

        _run_twin(policy, setup, ref_strcpy, cstring.strcpy)

    @settings(max_examples=20, deadline=None)
    @given(policy=policies,
           dst_size=st.integers(min_value=1, max_value=16),
           n=st.integers(min_value=32, max_value=300),
           payload_len=st.integers(min_value=0, max_value=80))
    def test_strncpy_flood_with_padding(self, policy, dst_size, n, payload_len):
        """Covers both flood phases: copying past the unit and NUL-padding
        past the unit."""

        def setup(ctx):
            src = ctx.alloc_c_string(b"B" * payload_len, name="attack")
            dst = ctx.malloc(dst_size, name="victim")
            return dst, src

        _run_twin(policy, setup,
                  lambda mem, d, s: ref_strncpy(mem, d, s, n),
                  lambda mem, d, s: cstring.strncpy(mem, d, s, n))

    @settings(max_examples=15, deadline=None)
    @given(policy=policies, flood_len=st.integers(min_value=64, max_value=600))
    def test_boundless_flood_read_back(self, policy, flood_len):
        """After a flood, reading the overflowed range back replays stored
        bytes (boundless) or manufactures (others) identically per byte."""

        def run(mem, dst, src):
            try:
                cstring.strcpy(mem, dst, src)
            except MemoryFault:
                pass
            return mem.read_span(dst, flood_len + 1)

        def run_reference(mem, dst, src):
            try:
                ref_strcpy(mem, dst, src)
            except MemoryFault:
                pass
            return ref_read_span(mem, dst, flood_len + 1)

        def setup(ctx):
            src = ctx.alloc_c_string(b"C" * flood_len, name="attack")
            dst = ctx.malloc(8, name="victim")
            return dst, src

        _run_twin(policy, setup, run_reference, run)
