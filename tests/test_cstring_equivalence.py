"""Equivalence of the span-based cstring fast paths with per-byte references.

The fast paths in :mod:`repro.memory.cstring` must be observably identical to
the byte-at-a-time loops they replaced, under every policy, for everything a
program (or the paper's evaluation) can see: returned values, the final memory
image, the error-log event stream, and the policy's continuation statistics.
The single intentional exception is ``checks_performed``, which now counts one
check per span rather than per byte (see README "Performance").

Each property builds two identically laid-out contexts, runs the reference
byte loop on one and the shipped fast path on the other, and compares.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryFault
from repro.memory import cstring
from repro.memory.context import MemoryContext
from repro.memory.pointer import FatPointer
from tests.conftest import POLICY_CLASSES
from tests.reference_cstring import (
    ref_read_c_string,
    ref_strchr,
    ref_strcmp,
    ref_strcpy,
    ref_strlen,
    ref_strncpy,
)

POLICY_NAMES = sorted(POLICY_CLASSES)


# -- comparison plumbing -------------------------------------------------------


def _observe(ctx, outcome):
    """Everything a program can observe after one cstring call.

    ``checks_performed`` is deliberately excluded: the fast path pays one
    check per span instead of per byte, which is the documented invariant
    change of this PR.
    """
    stats = ctx.policy.stats.as_dict()
    stats.pop("checks_performed")
    return {
        "outcome": outcome,
        "heap": bytes(ctx.space.heap.data),
        "events": [
            (event.kind, event.access, event.offset, event.length)
            for event in ctx.error_log.events()
        ],
        "stats": stats,
    }


def _normalize(value, base_ptr):
    """Make return values comparable across twin contexts."""
    if isinstance(value, FatPointer):
        # Pointers from different contexts never compare equal; the offset
        # from the argument pointer is the meaningful identity.
        return ("ptr", value.address - base_ptr.address)
    return value


def _run_twin(policy_name, setup, reference_op, fast_op):
    """Run reference and fast implementations on twin contexts and compare.

    ``SCAN_LIMIT`` is shrunk for the duration: runaway scans (overlapping
    self-propagating copies, unterminated buffers under the Standard build)
    otherwise walk the per-byte reference through up to a mebibyte of heap
    per example.  Both implementations read the module global at call time,
    so the guard fires identically.
    """
    observations = []
    original_limit = cstring.SCAN_LIMIT
    cstring.SCAN_LIMIT = 2048
    try:
        for operation in (reference_op, fast_op):
            # Small segments: the default 4 MiB heap makes per-example
            # snapshots the dominant cost of the whole suite.
            ctx = MemoryContext(POLICY_CLASSES[policy_name](),
                                heap_size=32 * 1024, stack_size=8 * 1024,
                                globals_size=4 * 1024)
            pointers = setup(ctx)
            try:
                outcome = ("ok", _normalize(operation(ctx.mem, *pointers), pointers[0]))
            except MemoryFault as fault:
                outcome = ("fault", type(fault).__name__)
            observations.append(_observe(ctx, outcome))
    finally:
        cstring.SCAN_LIMIT = original_limit
    reference, fast = observations
    assert fast == reference


# -- strategies ----------------------------------------------------------------

policies = st.sampled_from(POLICY_NAMES)
text = st.binary(min_size=0, max_size=48).map(lambda b: b.replace(b"\x00", b"\x01"))
sizes = st.integers(min_value=1, max_value=64)
COMMON_SETTINGS = dict(max_examples=40, deadline=None)


class TestStrcpyFamily:
    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, dst_size=sizes)
    def test_strcpy_including_partial_overflow(self, policy, payload, dst_size):
        """dst smaller than src straddles the unit boundary mid-copy."""

        def setup(ctx):
            src = ctx.alloc_c_string(payload)
            dst = ctx.malloc(dst_size)
            return dst, src

        _run_twin(policy, setup, ref_strcpy, cstring.strcpy)

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, dst_size=sizes,
           n=st.integers(min_value=0, max_value=96))
    def test_strncpy_with_nul_padding(self, policy, payload, dst_size, n):
        def setup(ctx):
            src = ctx.alloc_c_string(payload)
            dst = ctx.malloc(dst_size)
            return dst, src

        _run_twin(policy, setup,
                  lambda mem, d, s: ref_strncpy(mem, d, s, n),
                  lambda mem, d, s: cstring.strncpy(mem, d, s, n))

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, delta=st.integers(min_value=-8, max_value=8))
    def test_strcpy_overlapping_regions(self, policy, payload, delta):
        """Overlapping forward copies must self-propagate exactly like C."""

        def setup(ctx):
            buf = ctx.malloc(len(payload) + 24)
            cstring.write_c_string(ctx.mem, buf + max(0, -delta), payload)
            src = buf + max(0, -delta)
            dst = src + delta
            return dst, src

        _run_twin(policy, setup, ref_strcpy, cstring.strcpy)


class TestScanFamily:
    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, limit=st.integers(min_value=0, max_value=80))
    def test_strlen_with_guard_limits(self, policy, payload, limit):
        def setup(ctx):
            return (ctx.alloc_c_string(payload),)

        _run_twin(policy, setup,
                  lambda mem, s: ref_strlen(mem, s, limit),
                  lambda mem, s: cstring.strlen(mem, s, limit))

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, ch=st.integers(min_value=0, max_value=255))
    def test_strchr(self, policy, payload, ch):
        def setup(ctx):
            return (ctx.alloc_c_string(payload),)

        def fast(mem, s):
            found = cstring.strchr(mem, s, ch)
            return None if found is None else found - s

        def reference(mem, s):
            found = ref_strchr(mem, s, ch)
            return None if found is None else found - s

        _run_twin(policy, setup, reference, fast)

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, left=text, right=text)
    def test_strcmp(self, policy, left, right):
        def setup(ctx):
            return ctx.alloc_c_string(left), ctx.alloc_c_string(right)

        _run_twin(policy, setup, ref_strcmp, cstring.strcmp)

    @settings(**COMMON_SETTINGS)
    @given(policy=policies, payload=text, missing_nul=st.booleans(),
           limit=st.integers(min_value=0, max_value=512))
    def test_read_c_string(self, policy, payload, missing_nul, limit):
        """missing_nul plants a buffer with no terminator: the scan runs off
        the unit and the policy decides what happens next.  An explicit limit
        keeps the redirect policy — which wraps the scan back into the
        NUL-free unit forever — bounded."""

        def setup(ctx):
            if missing_nul:
                buf = ctx.malloc(max(1, len(payload)), name="unterminated")
                ctx.mem.write(buf, payload[: max(1, len(payload))] or b"\x01")
                return (buf,)
            return (ctx.alloc_c_string(payload),)

        _run_twin(policy, setup,
                  lambda mem, s: ref_read_c_string(mem, s, limit),
                  lambda mem, s: cstring.read_c_string(mem, s, limit))


class TestRedirectWraparound:
    """Redirect-policy bulk paths against their per-byte definition."""

    @pytest.mark.parametrize("length", [1, 3, 8, 11, 24])
    def test_redirected_read_wraps_like_per_byte(self, length):
        ctx = MemoryContext(POLICY_CLASSES["redirect"]())
        buf = ctx.malloc(8)
        ctx.mem.write(buf, b"01234567")
        data = ctx.mem.read(buf + 9, length)
        expected = bytes(b"01234567"[(9 + i) % 8] for i in range(length))
        assert data == expected

    @pytest.mark.parametrize("length", [1, 3, 8, 11, 24])
    def test_redirected_write_wraps_like_per_byte(self, length):
        reference_ctx = MemoryContext(POLICY_CLASSES["redirect"]())
        fast_ctx = MemoryContext(POLICY_CLASSES["redirect"]())
        payload = bytes((i * 37 + 5) % 256 for i in range(length))
        images = []
        for ctx, bulk in ((reference_ctx, False), (fast_ctx, True)):
            buf = ctx.malloc(8)
            ctx.mem.write(buf, b"01234567")
            if bulk:
                ctx.mem.write(buf + 9, payload)
            else:
                for i, byte in enumerate(payload):
                    ctx.mem.write_byte(buf + 9 + i, byte)
            images.append(ctx.mem.read(buf, 8))
        assert images[0] == images[1]
