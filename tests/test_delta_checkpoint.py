"""Property tests for incremental checkpoint streams (delta chains).

The two invariants everything in the recovery layer leans on:

* **bit-identity** — materializing snapshot *k* from (base + deltas) via
  :meth:`~repro.memory.checkpoint_stream.CheckpointStream.space_checkpoint`
  reproduces, byte for byte, the segment contents the space actually had
  when snapshot *k* was taken;
* **restore idempotence** — ``stream.restore(k)`` brings the live space (and
  the whole context: heap bookkeeping, object table, policy state) back to
  exactly that recorded state, no matter what writes/allocs/frees/restores
  happened in between, and doing it twice is a no-op.

Both are exercised across *random interleavings* of heap traffic, snapshot
points, and restores — including against the mini-C servers, whose frozen
interpreter state rides in the handler-state half of the supervisor's
snapshots.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import FailureObliviousPolicy
from repro.memory.checkpoint_stream import CheckpointStream
from repro.memory.context import MemoryContext
from repro.memory.pointer import FatPointer


def _segment_bytes(ctx: MemoryContext) -> dict:
    """The observable raw memory: every segment's full contents."""
    return {s.name: bytes(s.data) for s in ctx.space.segments()}


#: One step of the random interleaving.  Weights favor mutation so chains
#: carry real dirty blocks; snapshot/restore still occur often enough to
#: build multi-delta histories and fork them.
_STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=9000)),
        st.tuples(st.just("write"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("snapshot"), st.just(0)),
        st.tuples(st.just("restore"), st.integers(min_value=0, max_value=10**6)),
    ),
    min_size=1,
    max_size=40,
)


class TestDeltaChainProperties:
    @settings(max_examples=60, deadline=None)
    @given(steps=_STEPS, seed=st.integers(min_value=0, max_value=2**31))
    def test_materialized_snapshots_are_bit_identical_and_restores_round_trip(
        self, steps, seed
    ):
        """Acceptance: random write/free/restore interleavings preserve both
        the (base + deltas) == full-checkpoint identity and restore
        idempotence, for every snapshot still on the chain."""
        import random

        rng = random.Random(seed)
        ctx = MemoryContext(FailureObliviousPolicy())
        ctx.set_site("prop")
        stream = CheckpointStream(ctx)
        live = []
        #: index -> raw segment bytes recorded the moment it was snapshot
        #: (index 0 is the stream's base).  Truncated exactly like the
        #: stream's own history on restore.
        recorded = {0: _segment_bytes(ctx)}

        for op, arg in steps:
            if op == "malloc":
                unit = ctx.malloc(arg, name="prop")
                payload = bytes(rng.randrange(1, 256) for _ in range(min(arg, 64)))
                ctx.mem.write(unit, payload)
                live.append(unit)
            elif op == "write" and live:
                ptr = live[arg % len(live)]
                span = rng.randrange(1, min(ptr.referent.size, 64) + 1)
                ctx.mem.write(ptr, bytes(rng.randrange(256) for _ in range(span)))
            elif op == "free" and live:
                ctx.free(live.pop(arg % len(live)))
            elif op == "snapshot":
                index = stream.snapshot()
                recorded[index] = _segment_bytes(ctx)
            elif op == "restore":
                target = arg % len(stream)
                stream.restore(target)
                # The restore is exact...
                assert _segment_bytes(ctx) == recorded[target]
                # ...idempotent...
                stream.restore(target)
                assert _segment_bytes(ctx) == recorded[target]
                # ...and truncates the history (a fork point), so drop the
                # recordings past it and resync the live-unit handles to the
                # restored object table.
                recorded = {k: v for k, v in recorded.items() if k <= target}
                live = [
                    FatPointer.to_unit(unit) for unit in ctx.table.live_units()
                ]

        # Every snapshot still on the chain materializes bit-identically to
        # what the space actually contained when it was taken.
        for index in range(len(stream)):
            materialized = stream.space_checkpoint(index)
            assert {
                name: contents for name, _base, contents in materialized.segments
            } == recorded[index], f"snapshot {index} diverged"
        # And the delta chain really is incremental: everything after the
        # base carries only block payloads, never whole segments.
        total_segments = sum(len(s.data) for s in ctx.space.segments())
        for delta in stream.deltas:
            assert delta.space.payload_bytes <= total_segments

    @settings(max_examples=30, deadline=None)
    @given(steps=_STEPS, seed=st.integers(min_value=0, max_value=2**31))
    def test_changed_blocks_finds_exactly_the_differing_blocks(self, steps, seed):
        """stream.changed_blocks(a, b) agrees with a brute-force byte diff
        of the two materialized snapshots, at block granularity."""
        import random

        from repro.memory.address_space import DIRTY_BLOCK

        rng = random.Random(seed)
        ctx = MemoryContext(FailureObliviousPolicy())
        stream = CheckpointStream(ctx)
        live = []
        for op, arg in steps:
            if op == "malloc":
                unit = ctx.malloc(arg, name="diff")
                ctx.mem.write(unit, bytes(rng.randrange(256) for _ in range(8)))
                live.append(unit)
            elif op == "write" and live:
                unit = live[arg % len(live)]
                ctx.mem.write(unit, bytes(rng.randrange(256) for _ in range(8)))
            elif op == "free" and live:
                ctx.free(live.pop(arg % len(live)))
            elif op == "snapshot":
                stream.snapshot()
        if len(stream) < 2:
            stream.snapshot()
        a = rng.randrange(len(stream))
        b = rng.randrange(len(stream))
        lo, hi = min(a, b), max(a, b)
        cp_lo = {n: d for n, _b, d in stream.space_checkpoint(lo).segments}
        cp_hi = {n: d for n, _b, d in stream.space_checkpoint(hi).segments}
        brute = {}
        for name in cp_lo:
            blocks = [
                i
                for i in range(len(cp_lo[name]) // DIRTY_BLOCK + 1)
                if cp_lo[name][i * DIRTY_BLOCK : (i + 1) * DIRTY_BLOCK]
                != cp_hi[name][i * DIRTY_BLOCK : (i + 1) * DIRTY_BLOCK]
            ]
            if blocks:
                brute[name] = blocks
        assert stream.changed_blocks(lo, hi) == brute


@pytest.mark.parametrize("server_name", ["minic-pine", "minic-sendmail"])
class TestMinicServerDeltaChains:
    """The mini-C servers freeze interpreter state into their images; delta
    rollbacks must reproduce it exactly (the supervisor pairs the stream
    with capture/restore_handler_state for exactly this)."""

    @settings(max_examples=10, deadline=None)
    @given(plan=st.lists(st.sampled_from(["benign", "snap", "back"]),
                         min_size=3, max_size=12))
    def test_rollback_replays_identical_outcomes(self, server_name, plan):
        from repro.harness.engine import ENGINE

        server = ENGINE.build_server(
            server_name, "failure-oblivious", plant_attack=True, scale=0.25
        )
        assert not server.start().fatal
        profile = ENGINE.profile(server_name)
        stream = CheckpointStream(server.ctx)
        states = [server.capture_handler_state()]
        recorded = {0: _segment_bytes(server.ctx)}
        outcomes = {0: []}
        index = 0
        request_no = 0
        for op in plan:
            if op == "benign":
                result = server.process(profile.make_request(
                    profile.figure_rows[0].lower() if profile.figure_rows else "read",
                    index=request_no,
                ))
                request_no += 1
                outcomes[index].append(result.outcome)
                assert not result.fatal
            elif op == "snap":
                index = stream.snapshot()
                states.append(server.capture_handler_state())
                recorded[index] = _segment_bytes(server.ctx)
                outcomes[index] = []
            else:  # back: roll all the way to the latest snapshot and replay
                stream.restore(index)
                server.restore_handler_state(states[index])
                assert _segment_bytes(server.ctx) == recorded[index]
                replayed = []
                for i, expected in enumerate(outcomes[index]):
                    result = server.process(profile.make_request(
                        profile.figure_rows[0].lower() if profile.figure_rows else "read",
                        index=i,
                    ))
                    replayed.append(result.outcome)
                outcomes[index] = replayed
        # The chain materializes bit-identically for every surviving index.
        for k in range(len(stream)):
            materialized = stream.space_checkpoint(k)
            assert {
                name: contents for name, _base, contents in materialized.segments
            } == recorded[k]
        server.stop()
