"""Tests for the Mutt reimplementation and its Figure 1 conversion (paper §2, §4.6)."""

import pytest

from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import RequestOutcome
from repro.servers.base import Request
from repro.servers.mutt import MuttServer, utf8_to_utf7
from repro.memory.context import MemoryContext
from repro.workloads.attacks import mutt_attack_config, mutt_attack_folder_name, mutt_attack_request


def make_mutt(policy_cls, config=None):
    server = MuttServer(policy_cls, config=config or {})
    boot = server.start()
    return server, boot


class TestConversionRoutine:
    """Direct tests of the Figure 1 port."""

    def convert(self, name: bytes, policy=None):
        ctx = MemoryContext(policy or FailureObliviousPolicy())
        source = ctx.alloc_c_string(name, name="input")
        result = utf8_to_utf7(ctx, source, len(name))
        return ctx, (ctx.read_c_string(result) if result is not None else None)

    def test_ascii_passes_through(self):
        _, out = self.convert(b"INBOX")
        assert out == b"INBOX"

    def test_ampersand_is_escaped(self):
        _, out = self.convert(b"a&b")
        assert out == b"a&-b"

    def test_non_ascii_uses_modified_base64(self):
        _, out = self.convert("café".encode("utf-8"))
        assert out == b"caf&AOk-"

    def test_mixed_text_encodes_each_accented_run(self):
        # Modified UTF-7 (RFC 3501) always closes a base64 run with '-', unlike
        # plain UTF-7 which may omit it before characters such as a space.
        name = "déjà vu".encode("utf-8")
        _, out = self.convert(name)
        assert out == b"d&AOk-j&AOA- vu"

    def test_invalid_utf8_bails(self):
        _, out = self.convert(b"\xc1\x80")
        assert out is None

    def test_truncated_multibyte_bails(self):
        _, out = self.convert(b"\xe0\xa0")
        assert out is None

    def test_expansion_ratio_exceeds_two_for_control_characters(self):
        name = b"\x01" * 30
        _, out = self.convert(name)
        assert len(out) > 2 * len(name)

    def test_overflow_logged_under_failure_oblivious(self):
        ctx, _ = self.convert(mutt_attack_folder_name(60))
        assert ctx.error_log.count_writes() > 0

    def test_overflow_terminates_bounds_check(self):
        from repro.errors import BoundsCheckViolation

        ctx = MemoryContext(BoundsCheckPolicy())
        name = mutt_attack_folder_name(60)
        source = ctx.alloc_c_string(name, name="input")
        with pytest.raises(BoundsCheckViolation):
            utf8_to_utf7(ctx, source, len(name))

    def test_overflow_corrupts_heap_under_standard(self):
        from repro.errors import HeapCorruption

        ctx = MemoryContext(StandardPolicy())
        name = mutt_attack_folder_name(60)
        source = ctx.alloc_c_string(name, name="input")
        # The corruption is discovered either by the realloc inside the routine
        # or by the allocator's next heap walk, mirroring a real glibc abort.
        with pytest.raises(HeapCorruption):
            utf8_to_utf7(ctx, source, len(name))
            ctx.heap.verify_heap()


class TestBenignBehaviour:
    def test_boot_opens_inbox(self):
        server, boot = make_mutt(FailureObliviousPolicy)
        assert boot.outcome is RequestOutcome.SERVED
        assert server.current_folder_name == b"INBOX"

    def test_read_message(self):
        server, _ = make_mutt(FailureObliviousPolicy)
        result = server.process(Request(kind="read", payload={"index": 0}))
        assert result.outcome is RequestOutcome.SERVED
        assert b"From: alice@example.org" in result.response.body

    def test_move_message_to_archive(self):
        server, _ = make_mutt(FailureObliviousPolicy)
        result = server.process(Request(kind="move", payload={"index": 0, "target": b"archive"}))
        assert result.outcome is RequestOutcome.SERVED
        assert len(server.imap.select(b"archive")) == 1

    def test_open_missing_folder_rejected(self):
        server, _ = make_mutt(FailureObliviousPolicy)
        result = server.process(Request(kind="open_folder", payload={"folder": b"no-such"}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_read_out_of_range_rejected(self):
        server, _ = make_mutt(FailureObliviousPolicy)
        result = server.process(Request(kind="read", payload={"index": 99}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING


class TestAttackBehaviour:
    """Opening the expanding folder name (§4.6.2)."""

    def test_standard_crashes_when_configured_to_open_attack_folder(self):
        _, boot = make_mutt(StandardPolicy, config=mutt_attack_config())
        assert boot.outcome is RequestOutcome.CRASHED

    def test_bounds_check_terminates_before_ui(self):
        _, boot = make_mutt(BoundsCheckPolicy, config=mutt_attack_config())
        assert boot.outcome is RequestOutcome.TERMINATED_BY_CHECK

    def test_failure_oblivious_turns_attack_into_missing_folder(self):
        server, boot = make_mutt(FailureObliviousPolicy, config=mutt_attack_config())
        assert boot.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING
        assert server.alive

    def test_failure_oblivious_user_can_process_other_folders(self):
        server, _ = make_mutt(FailureObliviousPolicy, config=mutt_attack_config())
        opened = server.process(Request(kind="open_folder", payload={"folder": b"INBOX"}))
        assert opened.outcome is RequestOutcome.SERVED
        read = server.process(Request(kind="read", payload={"index": 0}))
        assert read.outcome is RequestOutcome.SERVED

    def test_attack_request_against_running_mutt(self):
        server, _ = make_mutt(FailureObliviousPolicy)
        result = server.process(mutt_attack_request())
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING
        assert server.alive

    def test_repeated_attacks_survived(self):
        server, _ = make_mutt(FailureObliviousPolicy)
        for _ in range(5):
            assert not server.process(mutt_attack_request()).fatal
        follow_up = server.process(Request(kind="read", payload={"index": 0}))
        assert follow_up.outcome is RequestOutcome.SERVED
