"""Tests for the simulated address space."""

import pytest

from repro.errors import SegmentationFault
from repro.memory.address_space import (
    AddressSpace,
    GLOBALS_BASE,
    HEAP_BASE,
    STACK_BASE,
)


class TestSegments:
    def test_standard_segments_exist(self):
        space = AddressSpace()
        assert {segment.name for segment in space.segments()} == {"globals", "heap", "stack"}

    def test_segment_bases(self):
        space = AddressSpace()
        assert space.globals.base == GLOBALS_BASE
        assert space.heap.base == HEAP_BASE
        assert space.stack.base == STACK_BASE

    def test_map_segment_rejects_overlap(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.map_segment("evil", HEAP_BASE + 10, 100)

    def test_map_segment_rejects_zero_size(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.map_segment("empty", 0x9000_0000, 0)

    def test_custom_segment_is_usable(self):
        space = AddressSpace()
        segment = space.map_segment("mmap", 0x9000_0000, 64)
        space.write(segment.base, b"hello")
        assert space.read(segment.base, 5) == b"hello"

    def test_find_segment(self):
        space = AddressSpace()
        assert space.find_segment(HEAP_BASE).name == "heap"
        assert space.find_segment(0x0) is None

    def test_is_mapped_range_spanning_end(self):
        space = AddressSpace(heap_size=64)
        assert space.is_mapped(HEAP_BASE, 64)
        assert not space.is_mapped(HEAP_BASE, 65)


class TestRawAccess:
    def test_write_then_read(self):
        space = AddressSpace()
        space.write(HEAP_BASE + 100, b"data")
        assert space.read(HEAP_BASE + 100, 4) == b"data"

    def test_read_unmapped_faults(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault):
            space.read(0x1234, 1)

    def test_write_unmapped_faults(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault):
            space.write(0x1234, b"x")

    def test_write_past_segment_end_faults(self):
        space = AddressSpace(heap_size=32)
        with pytest.raises(SegmentationFault):
            space.write(HEAP_BASE + 30, b"abcdef")

    def test_fault_records_address(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault) as excinfo:
            space.read_byte(0x42)
        assert excinfo.value.address == 0x42

    def test_byte_helpers(self):
        space = AddressSpace()
        space.write_byte(STACK_BASE + 5, 0xAB)
        assert space.read_byte(STACK_BASE + 5) == 0xAB

    def test_byte_fast_path_crosses_segments(self):
        space = AddressSpace()
        space.write_byte(HEAP_BASE, 1)
        space.write_byte(STACK_BASE, 2)
        assert space.read_byte(HEAP_BASE) == 1
        assert space.read_byte(STACK_BASE) == 2

    def test_byte_fast_path_faults_on_unmapped(self):
        space = AddressSpace()
        space.read_byte(HEAP_BASE)
        with pytest.raises(SegmentationFault):
            space.read_byte(0x50)
        with pytest.raises(SegmentationFault):
            space.write_byte(0x50, 1)

    def test_fill(self):
        space = AddressSpace()
        space.fill(HEAP_BASE, 0x7F, 16)
        assert space.read(HEAP_BASE, 16) == b"\x7f" * 16

    def test_zero_length_read_and_write(self):
        space = AddressSpace()
        assert space.read(HEAP_BASE, 0) == b""
        space.write(HEAP_BASE, b"")  # no-op, must not fault

    def test_negative_length_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.read(HEAP_BASE, -1)

    def test_raw_access_counters(self):
        space = AddressSpace()
        space.write(HEAP_BASE, b"abcd")
        space.read(HEAP_BASE, 4)
        assert space.raw_writes >= 4
        assert space.raw_reads >= 4

    def test_memory_initially_zeroed(self):
        space = AddressSpace()
        assert space.read(HEAP_BASE, 64) == b"\x00" * 64


class TestReadView:
    def test_view_matches_read_and_is_readonly(self):
        space = AddressSpace()
        space.write(HEAP_BASE + 8, b"payload")
        view = space.read_view(HEAP_BASE + 8, 7)
        assert isinstance(view, memoryview)
        assert view == b"payload"
        assert view.readonly
        with pytest.raises(TypeError):
            view[0] = 0

    def test_view_aliases_live_memory(self):
        space = AddressSpace()
        space.write(HEAP_BASE, b"before")
        view = space.read_view(HEAP_BASE, 6)
        space.write(HEAP_BASE, b"after!")
        assert bytes(view) == b"after!"

    def test_view_charges_raw_reads(self):
        space = AddressSpace()
        before = space.raw_reads
        space.read_view(HEAP_BASE, 32)
        assert space.raw_reads == before + 32

    def test_view_faults_like_read(self):
        space = AddressSpace(heap_size=64)
        with pytest.raises(SegmentationFault):
            space.read_view(HEAP_BASE, 65)
        with pytest.raises(ValueError):
            space.read_view(HEAP_BASE, -1)


class TestTouchedBlockRestore:
    def test_checkpoint_records_touched_blocks(self):
        space = AddressSpace()
        space.write(HEAP_BASE, b"x")
        space.write(HEAP_BASE + 5000, b"y")
        cp = space.checkpoint()
        touched = dict(cp.touched_blocks)
        assert touched["heap"] == (0, 1)

    def test_clone_into_fresh_space_is_sparse_and_exact(self):
        parent = AddressSpace()
        parent.write(HEAP_BASE + 123, b"template state")
        parent.write(STACK_BASE + 9000, b"frame")
        cp = parent.checkpoint()

        clone = AddressSpace()
        clone.restore(cp)
        assert clone.read(HEAP_BASE + 123, 14) == b"template state"
        assert clone.read(STACK_BASE + 9000, 5) == b"frame"
        # The clone's full contents equal the checkpoint's, including the
        # untouched (skipped) blocks.
        for name, _base, contents in cp.segments:
            assert bytes(clone.segment(name).data) == bytes(contents)

    def test_clone_overwrites_its_own_prior_writes(self):
        cp = AddressSpace().checkpoint()
        dirty_space = AddressSpace()
        # Writes in blocks the checkpoint never touched must still be undone.
        dirty_space.write(HEAP_BASE + 100_000, b"stale garbage")
        dirty_space.restore(cp)
        assert dirty_space.read(HEAP_BASE + 100_000, 13) == b"\x00" * 13

    def test_restore_sequence_across_checkpoints(self):
        space = AddressSpace()
        space.write(HEAP_BASE, b"AAAA")
        cp_a = space.checkpoint()
        space.write(HEAP_BASE + 8192, b"BBBB")
        space.checkpoint()  # cp_b; epoch now differs from cp_a
        space.restore(cp_a)  # cross-epoch restore takes the sparse path
        assert space.read(HEAP_BASE, 4) == b"AAAA"
        assert space.read(HEAP_BASE + 8192, 4) == b"\x00" * 4

    def test_checkpoint_without_touched_data_full_copies(self):
        import dataclasses

        space = AddressSpace()
        space.write(HEAP_BASE, b"live")
        cp = dataclasses.replace(space.checkpoint(), touched_blocks=())
        other = AddressSpace()
        other.write(HEAP_BASE + 50_000, b"noise")
        other.restore(cp)
        assert other.read(HEAP_BASE, 4) == b"live"
        assert other.read(HEAP_BASE + 50_000, 5) == b"\x00" * 5
