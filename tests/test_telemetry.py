"""Tests for the unified telemetry spine: bus, sinks, and layer wiring."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errorlog import MemoryErrorLog
from repro.core.policies import BoundlessPolicy, FailureObliviousPolicy, RedirectPolicy
from repro.errors import AccessKind, ErrorKind, MemoryErrorEvent
from repro.harness.engine import ENGINE
from repro.memory.context import MemoryContext
from repro.telemetry import (
    AllocFree,
    CoalescingRingSink,
    CounterSink,
    Discard,
    EventBus,
    InvalidAccess,
    ListSink,
    Manufacture,
    Redirect,
    RequestEnd,
    RequestStart,
    expand_invalid_accesses,
)


def make_error(site="f", offset=10, access=AccessKind.WRITE,
               kind=ErrorKind.OUT_OF_BOUNDS, length=1, request_id=None):
    return MemoryErrorEvent(
        kind=kind, access=access, unit_name="buf#1", unit_size=8,
        offset=offset, length=length, site=site, request_id=request_id,
    )


class TestEventBus:
    def test_emit_reaches_every_sink(self):
        bus = EventBus()
        first, second = bus.attach(ListSink()), bus.attach(ListSink())
        bus.emit(Manufacture(length=3))
        assert len(first.events) == len(second.events) == 1

    def test_detach_stops_delivery(self):
        bus = EventBus()
        sink = bus.attach(ListSink())
        bus.detach(sink)
        bus.emit(Manufacture(length=3))
        assert sink.events == []

    def test_attach_is_idempotent(self):
        bus = EventBus()
        sink = ListSink()
        bus.attach(sink)
        bus.attach(sink)
        bus.emit(Discard(length=1))
        assert len(sink.events) == 1

    def test_list_sink_type_filter(self):
        bus = EventBus()
        sink = bus.attach(ListSink(event_types=(Discard,)))
        bus.emit(Manufacture(length=1))
        bus.emit(Discard(length=2))
        assert [type(e) for e in sink.events] == [Discard]


class TestCounterSink:
    def test_counts_by_type_and_payload(self):
        sink = CounterSink()
        sink.emit(InvalidAccess(error=make_error(site="a", access=AccessKind.READ)))
        sink.emit(InvalidAccess(error=make_error(site="a")))
        sink.emit(Manufacture(length=5))
        sink.emit(Discard(length=7))
        sink.emit(Discard(length=2, stored=True))
        sink.emit(Redirect(offset=9, redirect_offset=1, length=1))
        sink.emit(AllocFree(op="malloc", unit_name="u", size=8, base=0))
        sink.emit(AllocFree(op="free", unit_name="u", size=8, base=0))
        sink.emit(RequestEnd(request_id=1, kind="read", outcome="served"))
        assert sink.invalid_total == 2
        assert sink.invalid_by_site["a"] == 2
        assert sink.invalid_by_access[AccessKind.READ] == 1
        assert sink.manufactured_bytes == 5
        assert sink.discarded_bytes == 7
        assert sink.stored_bytes == 2
        assert sink.redirected_accesses == 1
        assert sink.allocations == 1 and sink.frees == 1
        assert sink.requests_by_outcome["served"] == 1


class NaiveRing:
    """Reference model: an unbounded-cost list with oldest-first eviction."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.items = []
        self.dropped = 0

    def append(self, event):
        self.items.append(event)
        if len(self.items) > self.capacity:
            self.items.pop(0)
            self.dropped += 1


class TestCoalescingRingSink:
    def test_per_byte_flood_is_one_run(self):
        ring = CoalescingRingSink(capacity=10_000)
        flood = [make_error(offset=100 + i) for i in range(5_000)]
        for error in flood:
            ring.append(error)
        assert ring.run_count == 1
        assert len(ring) == 5_000
        assert ring.events() == flood

    def test_same_offset_repeats_coalesce_with_zero_stride(self):
        ring = CoalescingRingSink(capacity=100)
        for _ in range(50):
            ring.append(make_error(offset=42))
        assert ring.run_count == 1
        assert ring.events() == [make_error(offset=42)] * 50

    def test_site_change_starts_a_new_run(self):
        ring = CoalescingRingSink(capacity=100)
        ring.append(make_error(site="a", offset=0))
        ring.append(make_error(site="a", offset=1))
        ring.append(make_error(site="b", offset=2))
        assert ring.run_count == 2

    def test_eviction_shrinks_oldest_run_first(self):
        ring = CoalescingRingSink(capacity=4)
        flood = [make_error(offset=i) for i in range(6)]
        for error in flood:
            ring.append(error)
        assert len(ring) == 4
        assert ring.dropped == 2
        assert ring.events() == flood[-4:]

    def test_tail_matches_events_slice(self):
        ring = CoalescingRingSink(capacity=50)
        for i in range(30):
            ring.append(make_error(site="a" if i % 7 else "b", offset=i))
        events = ring.events()
        for n in (0, 1, 5, 29, 30, 100):
            assert ring.tail(n) == (events[-n:] if n > 0 else [])

    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(1, 12),
        steps=st.lists(
            st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 6)),
            max_size=60,
        ),
    )
    def test_matches_naive_model(self, capacity, steps):
        """Coalesced storage is observably identical to an uncoalesced list."""
        ring = CoalescingRingSink(capacity=capacity)
        naive = NaiveRing(capacity=capacity)
        for site, offset in steps:
            event = make_error(site=site, offset=offset)
            ring.append(event)
            naive.append(event)
        assert ring.events() == naive.items
        assert len(ring) == len(naive.items)
        assert ring.dropped == naive.dropped

    @settings(max_examples=120, deadline=None)
    @given(
        capacity=st.integers(1, 40),
        steps=st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),     # site: starts new runs
                st.integers(-5, 30),             # first offset
                st.integers(1, 25),              # run count (1 = single append)
                st.integers(-2, 3),              # stride for run appends
            ),
            max_size=40,
        ),
        tails=st.lists(st.integers(0, 60), max_size=4),
    )
    def test_invariants_under_random_run_streams(self, capacity, steps, tails):
        """Acceptance invariants under random single/run streams with partial
        evictions: retained size never exceeds capacity, events() equals an
        uncoalesced reference log, and tail(n) is always events()[-n:]."""
        ring = CoalescingRingSink(capacity=capacity)
        naive = NaiveRing(capacity=capacity)
        for site, offset, count, stride in steps:
            first = make_error(site=site, offset=offset)
            if count == 1:
                ring.append(first)
                naive.append(first)
            else:
                ring.append_run(first, stride=stride, count=count)
                for i in range(count):
                    naive.append(make_error(site=site, offset=offset + stride * i))
            assert len(ring) <= ring.capacity
        events = ring.events()
        assert events == naive.items
        assert len(ring) == len(events)
        assert ring.dropped == naive.dropped
        for n in tails + [len(events), len(events) + 5]:
            assert ring.tail(n) == (events[-n:] if n > 0 else [])


class TestErrorLogFacade:
    """The §3 log is a façade over the bus: its answers equal direct bus queries."""

    def test_record_publishes_on_the_bus(self):
        log = MemoryErrorLog()
        capture = log.bus.attach(ListSink((InvalidAccess,)))
        event = make_error()
        log.record(event)
        assert capture.events == [InvalidAccess(error=event)]

    def test_facade_queries_equal_direct_bus_queries(self):
        log = MemoryErrorLog()
        counter = log.bus.attach(CounterSink())
        capture = log.bus.attach(ListSink((InvalidAccess,)))
        for i in range(40):
            log.record(make_error(site="hot" if i % 3 else "cold", offset=i,
                                  access=AccessKind.READ if i % 2 else AccessKind.WRITE))
        assert log.total_recorded == counter.invalid_total == 40
        assert log.count_by_site() == Counter(counter.invalid_by_site)
        assert log.count_by_kind() == Counter(counter.invalid_by_kind)
        assert log.count_reads() == counter.invalid_by_access[AccessKind.READ]
        assert log.count_writes() == counter.invalid_by_access[AccessKind.WRITE]
        assert log.events() == [e.error for e in capture.events]

    def test_facade_equivalence_on_a_real_attack_scenario(self):
        """Acceptance: façade output equals bus queries for a live server run."""
        profile = ENGINE.profile("pine")
        server = ENGINE.build_server("pine", "failure-oblivious",
                                     plant_attack=True, scale=0.1)
        counter = server.add_telemetry_sink(CounterSink())
        capture = server.add_telemetry_sink(ListSink((InvalidAccess,)))
        server.start()
        server.process(profile.make_attack_request())
        for request in profile.make_follow_ups():
            server.process(request)
        log = server.ctx.error_log
        assert log.total_recorded == counter.invalid_total > 0
        assert log.count_by_site() == Counter(counter.invalid_by_site)
        assert log.count_by_kind() == Counter(counter.invalid_by_kind)
        # The batched continuation publishes floods as run records; the log
        # expands them, so the captured stream must be expanded to compare.
        assert log.events() == expand_invalid_accesses(capture.events)

    def test_capacity_still_enforced(self):
        log = MemoryErrorLog(capacity=2)
        for i in range(5):
            log.record(make_error(offset=i))
        assert len(log) == 2
        assert log.total_recorded == 5
        assert log.dropped == 3

    def test_shared_bus_constructor(self):
        bus = EventBus()
        log = MemoryErrorLog(capacity=10, bus=bus)
        bus.emit(InvalidAccess(error=make_error()))
        assert log.total_recorded == 1


class TestPolicyEmission:
    def _oob_write(self, ctx):
        ptr = ctx.malloc(8, name="buf")
        ctx.mem.write(ptr + 6, b"xxxx")  # 2 bytes in bounds, 2 beyond

    def test_failure_oblivious_emits_discard_and_manufacture(self):
        policy = FailureObliviousPolicy()
        ctx = MemoryContext(policy)
        capture = ctx.bus.attach(ListSink((Discard, Manufacture)))
        self._oob_write(ctx)
        ptr = ctx.malloc(8, name="buf2")
        ctx.mem.read(ptr + 5, 6)  # 3 bytes in bounds, 3 beyond
        kinds = [type(e) for e in capture.events]
        assert kinds == [Discard, Manufacture]
        assert capture.events[0].length == 2
        assert capture.events[1].length == 3

    def test_redirect_policy_emits_redirect(self):
        policy = RedirectPolicy()
        ctx = MemoryContext(policy)
        capture = ctx.bus.attach(ListSink((Redirect,)))
        self._oob_write(ctx)
        assert len(capture.events) == 1
        event = capture.events[0]
        assert event.offset == 8 and event.redirect_offset == 0
        assert event.access == "write"

    def test_policy_scope_labels_the_bus(self):
        assert FailureObliviousPolicy().bus.scope["policy"] == "failure-oblivious"

    def test_boundless_overwrites_do_not_inflate_stored_bytes(self):
        """Discard(stored=True) events count newly stored offsets, like stats."""
        policy = BoundlessPolicy()
        ctx = MemoryContext(policy)
        counter = ctx.bus.attach(CounterSink())
        ptr = ctx.malloc(8, name="buf")
        ctx.mem.write(ptr + 8, b"abcd")  # four new out-of-bounds offsets
        ctx.mem.write(ptr + 8, b"wxyz")  # the same offsets, overwritten
        assert policy.stats.stored_out_of_bounds_bytes == 4
        assert counter.stored_bytes == 4


class TestAllocatorEmission:
    def test_malloc_and_free_emit_allocfree(self, fo_ctx):
        capture = fo_ctx.bus.attach(ListSink((AllocFree,)))
        ptr = fo_ctx.malloc(32, name="work")
        fo_ctx.free(ptr)
        ops = [(e.op, e.size) for e in capture.events]
        assert ops == [("malloc", 32), ("free", 32)]

    def test_allocfree_carries_the_current_request_id(self, fo_ctx):
        capture = fo_ctx.bus.attach(ListSink((AllocFree,)))
        fo_ctx.set_request(77)
        fo_ctx.malloc(8)
        fo_ctx.set_request(None)
        assert capture.events[0].request_id == 77


class TestServerEmission:
    def test_request_lifecycle_events(self):
        profile = ENGINE.profile("apache")
        server = ENGINE.build_server("apache", "failure-oblivious", scale=0.1)
        capture = server.add_telemetry_sink(ListSink((RequestStart, RequestEnd)))
        server.start()
        request = profile.make_request(profile.figure_rows[0], 0)
        result = server.process(request)
        kinds = [type(e).__name__ for e in capture.events]
        assert kinds == ["RequestStart", "RequestEnd", "RequestStart", "RequestEnd"]
        startup_end = capture.events[1]
        assert startup_end.kind == "__startup__"
        request_end = capture.events[3]
        assert request_end.request_id == request.request_id
        assert request_end.outcome == result.outcome.value
        assert request_end.memory_errors == len(result.memory_errors)

    def test_request_end_error_sites_match_result(self):
        profile = ENGINE.profile("pine")
        server = ENGINE.build_server("pine", "failure-oblivious",
                                     plant_attack=True, scale=0.1)
        capture = server.add_telemetry_sink(ListSink((RequestEnd,)))
        server.start()
        attack = profile.make_attack_request()
        result = server.process(attack)
        end = [e for e in capture.events if e.request_id == attack.request_id][-1]
        expected = Counter(e.site for e in result.memory_errors)
        assert Counter(dict(end.error_sites)) == expected
        assert end.is_attack

    def test_sinks_survive_restart(self):
        server = ENGINE.build_server("apache", "failure-oblivious", scale=0.1)
        capture = server.add_telemetry_sink(ListSink((RequestEnd,)))
        server.start()
        before = len(capture.events)
        server.restart()
        assert len(capture.events) > before
        assert server.ctx.bus.scope["server"] == "apache"

    def test_server_scope_labels_the_bus(self):
        server = ENGINE.build_server("mutt", "standard", scale=0.1)
        assert server.ctx.bus.scope["server"] == "mutt"
        assert server.ctx.bus.scope["policy"] == "standard"


class TestRingCostCeiling:
    def test_attack_flood_storage_is_runs_not_events(self):
        """A per-byte OOB flood must not allocate one retained object per byte."""
        policy = FailureObliviousPolicy()
        ctx = MemoryContext(policy)
        ptr = ctx.malloc(16, name="flood")
        ctx.mem.set_site("flood.site")
        for i in range(2_000):
            ctx.mem.write_byte(ptr + 16 + i, 0x41)
        log = ctx.error_log
        assert log.total_recorded == 2_000
        assert log._ring.run_count < 10
        assert log.events()[0].offset == 16
        assert log.events()[-1].offset == 16 + 1_999


@pytest.mark.parametrize("capacity", [1, 3])
def test_facade_clear_resets_everything(capacity):
    log = MemoryErrorLog(capacity=capacity)
    for i in range(5):
        log.record(make_error(offset=i))
    log.clear()
    assert len(log) == 0
    assert log.total_recorded == 0
    assert log.dropped == 0


# ---------------------------------------------------------------------------
# Batched-run telemetry (PR 4): run records, ring ingest, store reclaim.
# ---------------------------------------------------------------------------


class TestRunRecords:
    def test_counter_sink_weighs_runs(self):
        sink = CounterSink()
        sink.emit(InvalidAccess(error=make_error(site="a"), count=100, stride=1))
        sink.emit(Manufacture(length=40, count=40))
        sink.emit(Discard(length=60, count=60))
        sink.emit(Redirect(offset=9, redirect_offset=1, length=50, count=50))
        assert sink.invalid_total == 100
        assert sink.invalid_by_site["a"] == 100
        assert sink.by_type["InvalidAccess"] == 100
        assert sink.by_type["Redirect"] == 50
        assert sink.manufactured_bytes == 40
        assert sink.discarded_bytes == 60
        assert sink.redirected_accesses == 50

    def test_run_record_expands_to_per_byte_events(self):
        run = InvalidAccess(error=make_error(offset=7), count=4, stride=1)
        assert [e.offset for e in run.expand()] == [7, 8, 9, 10]
        assert expand_invalid_accesses([run, InvalidAccess(error=make_error(offset=99))]) \
            == list(run.expand()) + [make_error(offset=99)]

    def test_ring_ingests_runs_directly(self):
        ring = CoalescingRingSink(capacity=10_000)
        ring.emit(InvalidAccess(error=make_error(offset=100), count=5_000, stride=1))
        assert ring.run_count == 1
        assert len(ring) == 5_000
        assert ring.events() == [make_error(offset=100 + i) for i in range(5_000)]

    def test_ring_merges_contiguous_run_chunks(self):
        """Consecutive chunks of one flood (successive source spans) stay one run."""
        ring = CoalescingRingSink(capacity=10_000)
        ring.append_run(make_error(offset=0), stride=1, count=64)
        ring.append_run(make_error(offset=64), stride=1, count=64)
        assert ring.run_count == 1
        assert ring.events() == [make_error(offset=i) for i in range(128)]

    def test_run_larger_than_capacity_keeps_newest_tail(self):
        ring = CoalescingRingSink(capacity=100)
        ring.append_run(make_error(offset=0), stride=1, count=1_000)
        assert len(ring) == 100
        assert ring.dropped == 900
        assert ring.events() == [make_error(offset=i) for i in range(900, 1_000)]

    def test_mixed_singles_and_runs_match_per_byte_log(self):
        """The same flood recorded as runs or per byte answers identically."""
        per_byte = MemoryErrorLog(capacity=300)
        batched = MemoryErrorLog(capacity=300)
        batched.record(make_error(offset=0))
        per_byte.record(make_error(offset=0))
        batched.record_run(make_error(offset=1), count=500)
        for i in range(500):
            per_byte.record(make_error(offset=1 + i))
        batched.record_run(make_error(site="b", offset=0), count=3)
        for i in range(3):
            per_byte.record(make_error(site="b", offset=i))
        assert batched.events() == per_byte.events()
        assert batched.total_recorded == per_byte.total_recorded
        assert batched.dropped == per_byte.dropped
        assert batched.count_by_site() == per_byte.count_by_site()
        assert batched.tail(7) == per_byte.tail(7)


class TestCounterSinkClear:
    def test_clear_resets_every_field(self):
        sink = CounterSink()
        sink.emit(InvalidAccess(error=make_error()))
        sink.emit(Manufacture(length=5))
        sink.emit(RequestEnd(request_id=1, kind="read", outcome="served"))
        sink.clear()
        assert sink == CounterSink()

    def test_clear_does_not_reinvoke_init(self):
        """Subclasses with richer constructors survive clear() (the old
        ``self.__init__()`` reset would call the subclass __init__ with no
        arguments and blow up or corrupt non-init state)."""

        class TaggedCounterSink(CounterSink):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

        sink = TaggedCounterSink("keep-me")
        sink.emit(Manufacture(length=3))
        sink.clear()
        assert sink.tag == "keep-me"
        assert sink.manufactured_bytes == 0


class TestBoundlessReclaim:
    def test_free_releases_stored_capacity(self):
        policy = BoundlessPolicy(max_stored_bytes=8)
        ctx = MemoryContext(policy)
        ptr = ctx.malloc(8, name="leaky")
        ctx.mem.write(ptr + 8, b"abcdefgh")  # fill the side store
        assert policy.stored_bytes() == 8
        ctx.free(ptr)
        assert policy.stored_bytes() == 0
        # The released capacity is usable again: a fresh unit's overflow is
        # stored, not silently degraded to discard mode.
        fresh = ctx.malloc(8, name="fresh")
        ctx.mem.write(fresh + 8, b"XY")
        data = ctx.mem.read(fresh + 8, 2)
        assert data == b"XY"
        assert policy.stored_bytes() == 2

    def test_free_of_other_unit_keeps_store(self):
        policy = BoundlessPolicy()
        ctx = MemoryContext(policy)
        keeper, other = ctx.malloc(8, name="keeper"), ctx.malloc(8, name="other")
        ctx.mem.write(keeper + 8, b"zz")
        ctx.free(other)
        assert policy.stored_bytes() == 2
        assert ctx.mem.read(keeper + 8, 2) == b"zz"

    def test_stack_frame_pop_releases_stored_capacity(self):
        """Stack locals die by frame pop, which never emits AllocFree; the
        object-table death hook reclaims their store anyway — otherwise a
        soak overflowing a stack local each request leaks to capacity."""
        policy = BoundlessPolicy(max_stored_bytes=8)
        ctx = MemoryContext(policy)
        for _ in range(5):  # each iteration would leak 8 bytes without reclaim
            with ctx.stack_frame("handler"):
                buf = ctx.stack_buffer("local", 8)
                ctx.seal_frame()
                ctx.mem.write(buf + 8, b"abcdefgh")
                assert policy.stored_bytes() == 8
            assert policy.stored_bytes() == 0
