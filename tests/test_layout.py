"""Tests for type sizes and struct layout."""

import pytest

from repro.memory.layout import StructLayout, align_up, sizeof


class TestSizeof:
    @pytest.mark.parametrize(
        "type_name,expected",
        [("char", 1), ("unsigned char", 1), ("short", 2), ("int", 4), ("size_t", 4), ("char*", 4)],
    )
    def test_primitive_sizes(self, type_name, expected):
        assert sizeof(type_name) == expected

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            sizeof("quux_t")


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(8, 4) == 8

    def test_rounds_up(self):
        assert align_up(9, 4) == 12

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            align_up(8, 0)


class TestStructLayout:
    def test_sequential_fields(self):
        layout = StructLayout("pair", [("start", 4), ("end", 4)])
        assert layout.offset_of("start") == 0
        assert layout.offset_of("end") == 4
        assert layout.size == 8

    def test_natural_alignment_inserts_padding(self):
        layout = StructLayout("mixed", [("flag", 1), ("value", 4)])
        assert layout.offset_of("value") == 4
        assert layout.size == 8

    def test_field_names_in_order(self):
        layout = StructLayout("s", [("a", 1), ("b", 2), ("c", 4)])
        assert layout.field_names() == ["a", "b", "c"]

    def test_size_of_field(self):
        layout = StructLayout("s", [("a", 2)])
        assert layout.size_of("a") == 2

    def test_regmatch_style_array_element(self):
        """The Apache capture buffer stores 8-byte (start, end) pairs."""
        layout = StructLayout("regmatch_t", [("rm_so", 4), ("rm_eo", 4)])
        assert layout.size == 8
