"""Tests for the mini-C interpreter and its libc builtins."""

import pytest

from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import BoundsCheckViolation, InfiniteLoopGuard
from repro.minic import compile_program
from repro.minic.compiler import CompileError
from repro.minic.interpreter import MiniCRuntimeError


def run(source, function="main", *args, policy=None):
    program = compile_program(source)
    instance = program.instantiate(policy or FailureObliviousPolicy())
    return instance, instance.call(function, *args)


class TestScalarsAndControlFlow:
    def test_arithmetic(self):
        _, result = run("int main(void) { return (2 + 3) * 4 - 6 / 2; }")
        assert result == 17

    def test_division_truncates_toward_zero(self):
        _, result = run("int main(void) { return -7 / 2; }")
        assert result == -3

    def test_bitwise_and_shifts(self):
        _, result = run("int main(void) { return (0xF0 >> 4) | (1 << 3); }")
        assert result == 0x0F | 8

    def test_comparisons_and_logic(self):
        _, result = run("int main(void) { return (1 < 2) && (3 != 4) && !(5 == 6); }")
        assert result == 1

    def test_short_circuit_does_not_evaluate_rhs(self):
        source = """
        int side(void) { return 1 / 0; }
        int main(void) { return 0 && side(); }
        """
        _, result = run(source)
        assert result == 0

    def test_if_else(self):
        _, result = run("int main(void) { int x = 3; if (x > 2) return 10; else return 20; }")
        assert result == 10

    def test_while_loop(self):
        _, result = run("int main(void) { int i = 0; int s = 0; while (i < 5) { s += i; i++; } return s; }")
        assert result == 10

    def test_for_loop(self):
        _, result = run("int main(void) { int s = 0; int i; for (i = 0; i < 4; i++) s += i; return s; }")
        assert result == 6

    def test_break_and_continue(self):
        source = """
        int main(void) {
            int s = 0; int i;
            for (i = 0; i < 10; i++) {
                if (i == 3) continue;
                if (i == 6) break;
                s += i;
            }
            return s;
        }
        """
        _, result = run(source)
        assert result == 0 + 1 + 2 + 4 + 5

    def test_goto_forward(self):
        source = """
        int main(void) {
            int x = 1;
            goto done;
            x = 99;
        done:
            return x;
        }
        """
        _, result = run(source)
        assert result == 1

    def test_goto_out_of_loop(self):
        source = """
        int main(void) {
            int i;
            for (i = 0; i < 100; i++) {
                if (i == 7) goto out;
            }
        out:
            return i;
        }
        """
        _, result = run(source)
        assert result == 7

    def test_ternary(self):
        _, result = run("int main(void) { int x = 5; return x > 3 ? 1 : 2; }")
        assert result == 1

    def test_comma_expression(self):
        _, result = run("int main(void) { int a; int b; a = 1, b = 2; return a + b; }")
        assert result == 3

    def test_char_truncation_on_assignment(self):
        _, result = run("int main(void) { unsigned char c = 300; return c; }")
        assert result == 300 & 0xFF

    def test_signed_char_sign_extension(self):
        _, result = run("int main(void) { char c = 0xff; return c; }")
        assert result == -1

    def test_infinite_loop_guard(self):
        with pytest.raises(InfiniteLoopGuard):
            run("int main(void) { while (1) ; return 0; }")

    def test_function_calls_and_recursion(self):
        source = """
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        int main(void) { return fib(10); }
        """
        _, result = run(source)
        assert result == 55


class TestPointersAndMemory:
    def test_local_array_store_and_load(self):
        source = """
        int main(void) {
            char buf[8];
            buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
            return buf[0] + buf[1];
        }
        """
        _, result = run(source)
        assert result == ord("h") + ord("i")

    def test_pointer_walk_over_argument_string(self):
        source = """
        int count(const char *s) {
            int n = 0;
            while (*s) { n++; s++; }
            return n;
        }
        """
        _, result = run(source, "count", b"hello world")
        assert result == 11

    def test_strlen_builtin_matches_manual_count(self):
        source = "int f(const char *s) { return strlen(s); }"
        _, result = run(source, "f", b"four")
        assert result == 4

    def test_malloc_strcpy_roundtrip(self):
        source = """
        char *dup(const char *s) {
            char *copy = malloc(strlen(s) + 1);
            strcpy(copy, s);
            return copy;
        }
        """
        instance, result = run(source, "dup", b"duplicate me")
        assert instance.read_string(result) == b"duplicate me"

    def test_string_literal_global(self):
        source = """
        static char *alphabet = "abcdef";
        int pick(int i) { return alphabet[i]; }
        """
        _, result = run(source, "pick", 2)
        assert result == ord("c")

    def test_pointer_difference(self):
        source = """
        int length(const char *s) {
            const char *p = s;
            while (*p) p++;
            return p - s;
        }
        """
        _, result = run(source, "length", b"12345")
        assert result == 5

    def test_buffer_overflow_is_policy_governed(self):
        source = """
        int smash(void) {
            char buf[4];
            int i;
            for (i = 0; i < 32; i++) buf[i] = 'A';
            return 0;
        }
        """
        program = compile_program(source)
        oblivious = program.instantiate(FailureObliviousPolicy())
        assert oblivious.call("smash") == 0
        assert oblivious.ctx.error_log.count_writes() > 0
        checked = program.instantiate(BoundsCheckPolicy())
        with pytest.raises(BoundsCheckViolation):
            checked.call("smash")

    def test_memset_and_memcpy_builtins(self):
        source = """
        int f(void) {
            char a[8];
            char b[8];
            memset(a, 'x', 8);
            memcpy(b, a, 8);
            return b[7];
        }
        """
        _, result = run(source, "f")
        assert result == ord("x")

    def test_free_and_realloc_builtins(self):
        source = """
        int f(void) {
            char *p = malloc(4);
            p[0] = 'a';
            p = realloc(p, 16);
            free(p);
            return 0;
        }
        """
        instance, result = run(source, "f")
        assert result == 0
        assert instance.ctx.heap.frees >= 1

    def test_putchar_and_puts_capture_output(self):
        source = """
        int main(void) {
            putchar('o'); putchar('k');
            puts("done");
            return 0;
        }
        """
        instance, _ = run(source)
        assert bytes(instance.output) == b"okdone\n"

    def test_dereferencing_integer_is_an_error(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main(void) { int x = 3; return *x; }")

    def test_address_of_reports_unsupported(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main(void) { int x = 3; return &x; }")

    def test_undefined_variable_is_an_error(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main(void) { return nowhere; }")

    def test_wrong_arity_is_an_error(self):
        program = compile_program("int f(int a) { return a; }")
        instance = program.instantiate(FailureObliviousPolicy())
        with pytest.raises(MiniCRuntimeError):
            instance.call("f", 1, 2)


class TestCompileChecks:
    def test_undefined_callee_rejected_at_compile_time(self):
        with pytest.raises(CompileError):
            compile_program("int main(void) { return missing(); }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(CompileError):
            compile_program("int f(void) { return 1; } int f(void) { return 2; }")

    def test_builtins_do_not_count_as_undefined(self):
        program = compile_program("int f(const char *s) { return strlen(s); }")
        assert program.function_names() == ["f"]

    def test_program_runs_identically_across_instances(self):
        program = compile_program("int main(void) { return 7; }")
        assert program.instantiate(StandardPolicy()).call("main") == 7
        assert program.instantiate(FailureObliviousPolicy()).call("main") == 7
