"""Out-of-bounds floods driven through the mini-C stdlib builtins.

``strncat``, ``strchr``, and ``sprintf`` operate on simulated memory through
the instance's accessor, so a call that runs past its buffer produces the
same per-policy behaviours as hand-written loops: termination under the
bounds-check build, logged-and-discarded (or stored, or wrapped) accesses
under the surviving builds, and silent corruption under the standard build.
These floods push hundreds of out-of-bounds bytes through each builtin to
pin that contract under every policy.
"""

from __future__ import annotations

import pytest

from repro.errors import BoundsCheckViolation, ErrorKind, MemoryFault
from repro.minic import compile_program
from tests.conftest import POLICY_CLASSES

SURVIVING = ("failure-oblivious", "boundless", "redirect")

STRNCAT_FLOOD = """
char dst[16];

int flood(char *payload) {
    dst[0] = 0;
    strncat(dst, payload, 300);
    return strlen(dst);
}
"""

STRCHR_FLOOD = """
char hay[16];

int flood(int needle) {
    int i;
    for (i = 0; i < 16; i++) { hay[i] = 'A'; }
    if (strchr(hay, needle)) { return 1; }
    return 0;
}
"""

SPRINTF_FLOOD = """
char out[16];

int flood(char *name, int seq) {
    return sprintf(out, "From: %s (msg %d)", name, seq);
}
"""


def run_flood(source, policy_name, function, *args):
    program = compile_program(source)
    instance = program.instantiate(POLICY_CLASSES[policy_name]())
    return instance, instance.call(function, *args)


class TestStrncatFlood:
    """A 200-byte append into a 16-byte destination."""

    PAYLOAD = b"x" * 200

    def test_bounds_check_terminates(self):
        with pytest.raises(BoundsCheckViolation):
            run_flood(STRNCAT_FLOOD, "bounds-check", "flood", self.PAYLOAD)

    @pytest.mark.parametrize("policy", SURVIVING)
    def test_surviving_builds_log_the_flood(self, policy):
        instance, _ = run_flood(STRNCAT_FLOOD, policy, "flood", self.PAYLOAD)
        log = instance.ctx.error_log
        assert log.count_writes() > 0
        assert log.count_by_kind().get(ErrorKind.OUT_OF_BOUNDS, 0) > 0
        instance.ctx.heap.verify_heap()

    def test_failure_oblivious_discards_the_tail(self):
        instance, length = run_flood(
            STRNCAT_FLOOD, "failure-oblivious", "flood", self.PAYLOAD
        )
        # In-bounds bytes landed; everything past the unit was discarded, so
        # the in-memory string never exceeds the destination size.
        assert length >= 15

    def test_standard_build_runs_unchecked(self):
        try:
            instance, _ = run_flood(STRNCAT_FLOOD, "standard", "flood", self.PAYLOAD)
        except MemoryFault:
            return  # walked off the segment: also acceptable for unchecked code
        assert instance.ctx.error_log.total_recorded == 0


class TestStrchrFlood:
    """Searching an unterminated 16-byte buffer scans past its end."""

    def test_bounds_check_terminates(self):
        with pytest.raises(BoundsCheckViolation):
            run_flood(STRCHR_FLOOD, "bounds-check", "flood", ord("Z"))

    @pytest.mark.parametrize("policy", ("failure-oblivious", "boundless"))
    def test_surviving_builds_log_oob_reads(self, policy):
        instance, _ = run_flood(STRCHR_FLOOD, policy, "flood", ord("Z"))
        log = instance.ctx.error_log
        assert log.count_reads() > 0
        assert log.count_by_kind().get(ErrorKind.OUT_OF_BOUNDS, 0) > 0

    def test_redirect_wraps_into_an_unterminated_orbit(self):
        # The redirect policy maps every out-of-bounds read back inside the
        # unit, so searching 16 'A's for an absent byte never sees a
        # terminator: the scan guard converts the orbit into a hang fault.
        from repro.errors import InfiniteLoopGuard

        with pytest.raises(InfiniteLoopGuard):
            run_flood(STRCHR_FLOOD, "redirect", "flood", ord("Z"))

    def test_in_bounds_hit_never_leaves_the_unit(self, any_policy_name):
        instance, found = run_flood(STRCHR_FLOOD, any_policy_name, "flood", ord("A"))
        assert found == 1
        assert instance.ctx.error_log.total_recorded == 0


class TestSprintfFlood:
    """%s expansion of a 150-byte name into a 16-byte output buffer."""

    NAME = b"m" * 150

    def test_bounds_check_terminates(self):
        with pytest.raises(BoundsCheckViolation):
            run_flood(SPRINTF_FLOOD, "bounds-check", "flood", self.NAME, 7)

    @pytest.mark.parametrize("policy", SURVIVING)
    def test_surviving_builds_log_the_flood(self, policy):
        instance, _ = run_flood(SPRINTF_FLOOD, policy, "flood", self.NAME, 7)
        log = instance.ctx.error_log
        assert log.count_writes() > 0
        assert log.count_by_kind().get(ErrorKind.OUT_OF_BOUNDS, 0) > 0
        instance.ctx.heap.verify_heap()

    def test_fitting_output_is_clean_everywhere(self, any_policy_name):
        instance, length = run_flood(SPRINTF_FLOOD, any_policy_name, "flood", b"a", 3)
        assert length == len(b"From: a (msg 3)")
        assert instance.ctx.error_log.total_recorded == 0
