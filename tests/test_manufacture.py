"""Tests for the manufactured value sequence (paper §3)."""

import pytest

from repro.core.manufacture import (
    FixedValueSequence,
    ManufacturedValueSequence,
    ZeroValueSequence,
)


class TestPaperSequence:
    def test_starts_with_zero_one(self):
        seq = ManufacturedValueSequence()
        assert seq.next_value() == 0
        assert seq.next_value() == 1

    def test_interleaves_zero_one_with_counter(self):
        seq = ManufacturedValueSequence()
        values = [seq.next_value() for _ in range(9)]
        assert values == [0, 1, 2, 0, 1, 3, 0, 1, 4]

    def test_zero_and_one_are_most_frequent(self):
        seq = ManufacturedValueSequence()
        values = [seq.next_value() for _ in range(3000)]
        counts = {v: values.count(v) for v in set(values)}
        assert counts[0] > counts[2]
        assert counts[1] > counts[2]

    def test_counter_eventually_produces_every_byte_value(self):
        seq = ManufacturedValueSequence()
        seen = set()
        for _ in range(3 * 256 * 2):
            seen.add(seq.next_value())
        assert set(range(256)) <= seen

    def test_counter_wraps_after_max_small(self):
        seq = ManufacturedValueSequence(max_small=4)
        values = [seq.next_value() for _ in range(12)]
        # counter walks 2, 3, 4 then wraps back to 2
        assert values[2::3] == [2, 3, 4, 2]

    def test_slash_character_appears(self):
        """The Midnight Commander loop needs '/' (47) to eventually appear."""
        seq = ManufacturedValueSequence()
        values = [seq.next_value() for _ in range(500)]
        assert ord("/") in values

    def test_reset_restarts_sequence(self):
        seq = ManufacturedValueSequence()
        first = [seq.next_value() for _ in range(10)]
        seq.reset()
        second = [seq.next_value() for _ in range(10)]
        assert first == second

    def test_produced_counter(self):
        seq = ManufacturedValueSequence()
        for _ in range(7):
            seq.next_value()
        assert seq.produced == 7

    def test_next_bytes_length(self):
        seq = ManufacturedValueSequence()
        assert len(seq.next_bytes(13)) == 13

    def test_next_int_signed_range(self):
        seq = ManufacturedValueSequence()
        for _ in range(300):
            value = seq.next_int(size=4, signed=True)
            assert -(1 << 31) <= value < (1 << 31)

    def test_next_int_consumes_one_sequence_element(self):
        seq = ManufacturedValueSequence()
        ints = [seq.next_int() for _ in range(6)]
        assert ints == [0, 1, 2, 0, 1, 3]

    def test_peek_does_not_consume(self):
        seq = ManufacturedValueSequence()
        peeked = seq.peek(5)
        consumed = [seq.next_value() for _ in range(5)]
        assert peeked == consumed

    def test_iteration_protocol(self):
        seq = ManufacturedValueSequence()
        iterator = iter(seq)
        assert [next(iterator) for _ in range(3)] == [0, 1, 2]

    def test_without_zero_one_weighting(self):
        seq = ManufacturedValueSequence(favor_zero_one=False)
        assert [seq.next_value() for _ in range(4)] == [2, 3, 4, 5]

    def test_rejects_tiny_max_small(self):
        with pytest.raises(ValueError):
            ManufacturedValueSequence(max_small=1)


class TestAblationSequences:
    def test_zero_sequence_only_produces_zero(self):
        seq = ZeroValueSequence()
        assert all(seq.next_value() == 0 for _ in range(100))

    def test_zero_sequence_never_produces_slash(self):
        seq = ZeroValueSequence()
        assert ord("/") not in [seq.next_value() for _ in range(1000)]

    def test_fixed_sequence_cycles(self):
        seq = FixedValueSequence([7, 9])
        assert [seq.next_value() for _ in range(5)] == [7, 9, 7, 9, 7]

    def test_fixed_sequence_rejects_empty(self):
        with pytest.raises(ValueError):
            FixedValueSequence([])

    def test_fixed_sequence_reset(self):
        seq = FixedValueSequence([5, 6, 7])
        seq.next_value()
        seq.reset()
        assert seq.next_value() == 5
