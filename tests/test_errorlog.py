"""Tests for the memory-error log (paper §3's administrator log)."""

import pytest

from repro.core.errorlog import MemoryErrorLog
from repro.errors import AccessKind, ErrorKind, MemoryErrorEvent


def make_event(site="f", offset=10, access=AccessKind.WRITE, kind=ErrorKind.OUT_OF_BOUNDS,
               request_id=None):
    return MemoryErrorEvent(
        kind=kind,
        access=access,
        unit_name="buf#1",
        unit_size=8,
        offset=offset,
        length=1,
        site=site,
        request_id=request_id,
    )


class TestRecording:
    def test_record_and_len(self):
        log = MemoryErrorLog()
        log.record(make_event())
        assert len(log) == 1

    def test_total_recorded_counts_all(self):
        log = MemoryErrorLog(capacity=2)
        for _ in range(5):
            log.record(make_event())
        assert log.total_recorded == 5
        assert len(log) == 2
        assert log.dropped == 3

    def test_extend(self):
        log = MemoryErrorLog()
        log.extend([make_event(), make_event()])
        assert len(log) == 2

    def test_clear(self):
        log = MemoryErrorLog()
        log.record(make_event())
        log.clear()
        assert len(log) == 0
        assert log.total_recorded == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryErrorLog(capacity=0)

    def test_eviction_keeps_newest(self):
        log = MemoryErrorLog(capacity=2)
        log.record(make_event(site="a"))
        log.record(make_event(site="b"))
        log.record(make_event(site="c"))
        assert [event.site for event in log.events()] == ["b", "c"]


class TestQueries:
    def test_count_by_site(self):
        log = MemoryErrorLog()
        log.record(make_event(site="prescan"))
        log.record(make_event(site="prescan"))
        log.record(make_event(site="wakeup"))
        assert log.count_by_site()["prescan"] == 2

    def test_count_by_kind(self):
        log = MemoryErrorLog()
        log.record(make_event(kind=ErrorKind.OUT_OF_BOUNDS))
        log.record(make_event(kind=ErrorKind.USE_AFTER_FREE))
        assert log.count_by_kind()[ErrorKind.OUT_OF_BOUNDS] == 1

    def test_read_write_counts(self):
        log = MemoryErrorLog()
        log.record(make_event(access=AccessKind.READ))
        log.record(make_event(access=AccessKind.WRITE))
        log.record(make_event(access=AccessKind.WRITE))
        assert log.count_reads() == 1
        assert log.count_writes() == 2

    def test_events_for_request(self):
        log = MemoryErrorLog()
        log.record(make_event(request_id=5))
        log.record(make_event(request_id=6))
        assert len(log.events_for_request(5)) == 1

    def test_most_common_sites(self):
        log = MemoryErrorLog()
        for _ in range(3):
            log.record(make_event(site="hot"))
        log.record(make_event(site="cold"))
        assert log.most_common_sites(1)[0][0] == "hot"

    def test_find_by_kind_and_site(self):
        log = MemoryErrorLog()
        log.record(make_event(site="pine.quote", kind=ErrorKind.OUT_OF_BOUNDS))
        log.record(make_event(site="mutt.utf7", kind=ErrorKind.OUT_OF_BOUNDS))
        found = log.find(kind=ErrorKind.OUT_OF_BOUNDS, site_substring="pine")
        assert len(found) == 1

    def test_summary_mentions_totals(self):
        log = MemoryErrorLog()
        log.record(make_event())
        assert "1 error" in log.summary()

    def test_iteration(self):
        log = MemoryErrorLog()
        log.record(make_event())
        assert list(log)[0].unit_name == "buf#1"

    def test_event_describe_contains_offset_and_unit(self):
        event = make_event(offset=12)
        text = event.describe()
        assert "12" in text and "buf#1" in text
