"""Tests for the `repro trace` CLI: export, offline summary, filter."""

import json

import pytest

from repro.cli import main
from repro.telemetry.summary import iter_records, summarize_jsonl


@pytest.fixture(scope="module")
def exported_figure(tmp_path_factory):
    """One small figure run exported serially (shared by the read-only tests)."""
    out = tmp_path_factory.mktemp("trace") / "fig6.jsonl"
    code = main(["trace", "export", "fig6", "--repetitions", "2",
                 "--scale", "0.1", "--out", str(out)])
    assert code == 0
    return out


class TestExport:
    def test_export_writes_jsonl_and_prints_summary(self, exported_figure, capsys):
        records = list(iter_records(str(exported_figure)))
        assert records, "export should write events"
        assert all("event" in record for record in records)

    def test_offline_summary_matches_export_counts(self, exported_figure, capsys):
        """Acceptance: re-summarizing the export reproduces its aggregate counts."""
        summary = summarize_jsonl(str(exported_figure))
        assert summary.total_events == len(list(iter_records(str(exported_figure))))
        assert main(["trace", "summary", str(exported_figure)]) == 0
        out = capsys.readouterr().out
        first_line = next(line for line in out.splitlines() if line.startswith("events"))
        assert first_line.split()[-1] == str(summary.total_events)

    def test_parallel_export_has_identical_aggregate_counts(
        self, exported_figure, tmp_path
    ):
        """Acceptance: a --workers > 1 figure export re-summarizes identically."""
        out = tmp_path / "fig6-parallel.jsonl"
        code = main(["trace", "export", "fig6", "--repetitions", "2",
                     "--scale", "0.1", "--workers", "2", "--out", str(out)])
        assert code == 0
        assert summarize_jsonl(str(out)) == summarize_jsonl(str(exported_figure))

    def test_unknown_experiment_is_an_argparse_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "export", "fig99", "--out", str(tmp_path / "x.jsonl")])


class TestSummaryFilters:
    def test_server_filter_keeps_scoped_events_only(self, exported_figure):
        everything = summarize_jsonl(str(exported_figure))
        mutt_only = summarize_jsonl(str(exported_figure), server="mutt")
        assert mutt_only.total_events > 0
        assert set(mutt_only.servers) == {"mutt"}
        assert mutt_only.total_events <= everything.total_events

    def test_kind_filter_selects_request_events(self, exported_figure):
        records = list(iter_records(str(exported_figure)))
        request_kinds = {r["kind"] for r in records if r["event"] == "request-end"}
        kind = next(k for k in request_kinds if k != "__startup__")
        filtered = summarize_jsonl(str(exported_figure), kind=kind)
        assert filtered.total_events > 0
        assert set(filtered.by_type) <= {"request-start", "request-end"}

    def test_policy_filter(self, exported_figure):
        standard = summarize_jsonl(str(exported_figure), policy="standard")
        assert set(standard.policies) == {"standard"}


class TestFilterCommand:
    def test_filter_to_stdout(self, exported_figure, capsys):
        assert main(["trace", "filter", str(exported_figure),
                     "--policy", "standard"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["scope"]["policy"] == "standard"

    def test_filter_to_file_round_trips(self, exported_figure, tmp_path, capsys):
        subset = tmp_path / "subset.jsonl"
        assert main(["trace", "filter", str(exported_figure),
                     "--server", "mutt", "--out", str(subset)]) == 0
        direct = summarize_jsonl(str(exported_figure), server="mutt")
        assert summarize_jsonl(str(subset)) == direct
