"""Tests for the Midnight Commander reimplementation (paper §4.5)."""


from repro.core.manufacture import ZeroValueSequence
from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import RequestOutcome
from repro.servers.base import Request
from repro.servers.midnight_commander import ArchiveEntry, MidnightCommanderServer
from repro.workloads.attacks import (
    midnight_commander_attack_request,
    midnight_commander_blank_line_config,
)
from repro.workloads.benign import midnight_commander_vfs_files


def make_mc(policy_cls, config=None):
    merged = {"vfs_files": midnight_commander_vfs_files(directory_bytes=64 * 1024,
                                                        delete_file_bytes=16 * 1024)}
    merged.update(config or {})
    server = MidnightCommanderServer(policy_cls, config=merged)
    boot = server.start()
    return server, boot


class TestBenignBehaviour:
    def test_boot_parses_configuration(self):
        server, boot = make_mc(FailureObliviousPolicy)
        assert boot.outcome is RequestOutcome.SERVED
        assert server.settings["verbose"] == "1"

    def test_copy_directory(self):
        server, _ = make_mc(FailureObliviousPolicy)
        result = server.process(
            Request(kind="copy", payload={"source": "/home/user/data", "target": "/home/user/copy"})
        )
        assert result.outcome is RequestOutcome.SERVED
        assert len(server.vfs.tree("/home/user/copy")) == 16

    def test_copy_preserves_contents(self):
        server, _ = make_mc(FailureObliviousPolicy)
        server.process(
            Request(kind="copy", payload={"source": "/home/user/data", "target": "/home/user/copy"})
        )
        assert (
            server.vfs.files["/home/user/copy/file00.bin"]
            == server.vfs.files["/home/user/data/file00.bin"]
        )

    def test_move_directory(self):
        server, _ = make_mc(FailureObliviousPolicy)
        result = server.process(
            Request(kind="move", payload={"source": "/home/user/data", "target": "/home/user/moved"})
        )
        assert result.outcome is RequestOutcome.SERVED
        assert not server.vfs.tree("/home/user/data")
        assert len(server.vfs.tree("/home/user/moved")) == 16

    def test_mkdir_and_duplicate_rejected(self):
        server, _ = make_mc(FailureObliviousPolicy)
        assert server.process(Request(kind="mkdir", payload={"path": "/home/user/new"})).outcome \
            is RequestOutcome.SERVED
        assert server.process(Request(kind="mkdir", payload={"path": "/home/user/new"})).outcome \
            is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_delete_file(self):
        server, _ = make_mc(FailureObliviousPolicy)
        result = server.process(Request(kind="delete", payload={"path": "/home/user/big-download.iso"}))
        assert result.outcome is RequestOutcome.SERVED
        assert "/home/user/big-download.iso" not in server.vfs.files

    def test_delete_missing_rejected(self):
        server, _ = make_mc(FailureObliviousPolicy)
        result = server.process(Request(kind="delete", payload={"path": "/nope"}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_copy_missing_source_rejected(self):
        server, _ = make_mc(FailureObliviousPolicy)
        result = server.process(Request(kind="copy", payload={"source": "/nope", "target": "/x"}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_benign_archive_with_files_only(self):
        server, _ = make_mc(FailureObliviousPolicy)
        entries = [ArchiveEntry(name="a.txt", content=b"aa"), ArchiveEntry(name="b.txt", content=b"bb")]
        result = server.process(Request(kind="open_archive", payload={"entries": entries}))
        assert result.outcome is RequestOutcome.SERVED
        assert b"a.txt" in result.response.body


class TestBlankConfigurationLine:
    """§4.5.4: a blank line in the configuration file triggers a memory error."""

    def test_bounds_check_terminates_at_startup(self):
        _, boot = make_mc(BoundsCheckPolicy, config=midnight_commander_blank_line_config())
        assert boot.outcome is RequestOutcome.TERMINATED_BY_CHECK

    def test_standard_tolerates_blank_lines(self):
        _, boot = make_mc(StandardPolicy, config=midnight_commander_blank_line_config())
        assert boot.outcome is RequestOutcome.SERVED

    def test_failure_oblivious_parses_and_logs(self):
        server, boot = make_mc(FailureObliviousPolicy, config=midnight_commander_blank_line_config())
        assert boot.outcome is RequestOutcome.SERVED
        assert server.settings["confirm_delete"] == "1"
        assert server.ctx.error_log.count_by_site()["mc.load_setup"] >= 2

    def test_default_configuration_has_no_blank_line_errors(self):
        server, _ = make_mc(BoundsCheckPolicy)
        assert server.alive


class TestSymlinkAttack:
    """The tgz symlink strcat overflow (§4.5.2)."""

    def test_standard_crashes_opening_malicious_archive(self):
        server, _ = make_mc(StandardPolicy)
        result = server.process(midnight_commander_attack_request())
        assert result.outcome in (RequestOutcome.CRASHED, RequestOutcome.EXPLOITED)

    def test_bounds_check_terminates(self):
        server, _ = make_mc(BoundsCheckPolicy)
        result = server.process(midnight_commander_attack_request())
        assert result.outcome is RequestOutcome.TERMINATED_BY_CHECK

    def test_failure_oblivious_shows_dangling_links_and_continues(self):
        server, _ = make_mc(FailureObliviousPolicy)
        result = server.process(midnight_commander_attack_request())
        assert result.outcome is RequestOutcome.SERVED
        assert b"dangling" in result.response.body
        follow_up = server.process(Request(kind="mkdir", payload={"path": "/home/user/ok"}))
        assert follow_up.outcome is RequestOutcome.SERVED

    def test_failure_oblivious_errors_attributed_to_symlink_code(self):
        server, _ = make_mc(FailureObliviousPolicy)
        server.process(midnight_commander_attack_request())
        assert server.ctx.error_log.count_by_site()["mc.vfs_s_resolve_symlink"] > 0


class TestSlashSearchLoop:
    """§3: the loop that searches past the end of a buffer for '/'."""

    def test_paper_sequence_lets_the_loop_terminate(self):
        server, _ = make_mc(FailureObliviousPolicy)
        result = server.process(Request(kind="find_component", payload={"name": "noslashhere"}))
        assert result.outcome is RequestOutcome.SERVED

    def test_all_zero_sequence_hangs(self):
        from repro.core.policies import FailureObliviousPolicy as FO

        def zero_policy():
            return FO(sequence=ZeroValueSequence())

        config = {"vfs_files": midnight_commander_vfs_files(directory_bytes=16 * 1024)}
        server = MidnightCommanderServer(zero_policy, config=config)
        server.start()
        result = server.process(Request(kind="find_component", payload={"name": "noslash"}))
        assert result.outcome is RequestOutcome.HUNG

    def test_name_containing_slash_never_reads_out_of_bounds(self):
        server, _ = make_mc(BoundsCheckPolicy)
        result = server.process(Request(kind="find_component", payload={"name": "dir/file"}))
        assert result.outcome is RequestOutcome.SERVED
        assert "3" in result.response.detail
