"""Tests for fat pointers (Ruwase & Lam style intended referents)."""

from repro.memory.data_unit import NULL_UNIT, UnitKind, make_unit
from repro.memory.pointer import FatPointer


def make_ptr(size=16, base=1000):
    unit = make_unit(name="buf", base=base, size=size, kind=UnitKind.HEAP)
    return FatPointer(unit)


class TestBasics:
    def test_address_combines_base_and_offset(self):
        ptr = make_ptr(base=1000)
        assert (ptr + 5).address == 1005

    def test_null_pointer(self):
        null = FatPointer.null()
        assert null.is_null
        assert null.referent is NULL_UNIT
        assert not null.in_bounds

    def test_in_bounds_inside(self):
        ptr = make_ptr(size=8)
        assert ptr.in_bounds
        assert (ptr + 7).in_bounds

    def test_in_bounds_false_at_end(self):
        ptr = make_ptr(size=8)
        assert not (ptr + 8).in_bounds

    def test_in_bounds_false_when_negative(self):
        ptr = make_ptr()
        assert not (ptr - 1).in_bounds

    def test_in_bounds_false_when_dead(self):
        ptr = make_ptr()
        ptr.referent.alive = False
        assert not ptr.in_bounds

    def test_remaining(self):
        ptr = make_ptr(size=10)
        assert (ptr + 3).remaining() == 7
        assert (ptr + 12).remaining() == 0
        assert (ptr - 2).remaining() == 0  # negative offsets have no safe span

    def test_remaining_zero_for_dead_unit(self):
        ptr = make_ptr(size=10)
        ptr.referent.alive = False
        assert ptr.remaining() == 0

    def test_to_unit_constructor(self):
        unit = make_unit(name="x", base=50, size=4, kind=UnitKind.STACK)
        assert FatPointer.to_unit(unit, 2).address == 52


class TestArithmetic:
    def test_addition_preserves_referent(self):
        ptr = make_ptr()
        moved = ptr + 100
        assert moved.referent is ptr.referent
        assert moved.offset == 100

    def test_subtraction_of_int(self):
        ptr = make_ptr()
        assert (ptr + 10 - 4).offset == 6

    def test_pointer_difference(self):
        ptr = make_ptr()
        assert (ptr + 10) - (ptr + 4) == 6

    def test_advance_alias(self):
        ptr = make_ptr()
        assert ptr.advance(3).offset == 3

    def test_out_of_bounds_pointers_are_representable(self):
        """Holding (not dereferencing) an OOB pointer is legal, as Pine/MC rely on."""
        ptr = make_ptr(size=4)
        way_out = ptr + 1000
        assert way_out.offset == 1000
        assert way_out.referent is ptr.referent


class TestComparisons:
    def test_ordering_by_address(self):
        ptr = make_ptr()
        assert ptr < ptr + 1
        assert ptr + 2 > ptr
        assert ptr <= ptr
        assert ptr >= ptr

    def test_comparison_across_units_uses_addresses(self):
        a = FatPointer(make_unit(name="a", base=100, size=4, kind=UnitKind.HEAP))
        b = FatPointer(make_unit(name="b", base=200, size=4, kind=UnitKind.HEAP))
        assert a < b

    def test_out_of_bounds_comparison_does_not_raise(self):
        """The paper §4.1 notes Pine and MC compare out-of-bounds pointers."""
        ptr = make_ptr(size=4)
        assert (ptr + 100) > ptr

    def test_same_unit(self):
        ptr = make_ptr()
        other = FatPointer(make_unit(name="o", base=5000, size=4, kind=UnitKind.HEAP))
        assert ptr.same_unit(ptr + 3)
        assert not ptr.same_unit(other)

    def test_equality_is_structural(self):
        ptr = make_ptr()
        assert ptr + 1 == ptr + 1
        assert ptr + 1 != ptr + 2
