"""Tests for the throughput-under-attack and stability experiments."""

import pytest

from repro.errors import SegmentationFault
from repro.harness.stability import run_stability_experiment
from repro.harness.throughput import run_throughput_experiment, throughput_ratio
from repro.servers.base import Request, Response, Server
from repro.servers.profile import ServerProfile, register_profile, unregister_profile
from repro.workloads.streams import RequestStream, mixed_stream


class TestThroughput:
    @pytest.fixture(scope="class")
    def results(self):
        return run_throughput_experiment(
            attack_fraction=0.5, total_requests=80, pool_size=2
        )

    def test_all_builds_measured(self, results):
        assert set(results) == {"standard", "bounds-check", "failure-oblivious"}

    def test_failure_oblivious_children_never_die(self, results):
        assert results["failure-oblivious"].child_deaths == 0

    def test_crashing_builds_lose_children(self, results):
        assert results["standard"].child_deaths > 0
        assert results["bounds-check"].child_deaths > 0

    def test_failure_oblivious_serves_every_legitimate_request(self, results):
        fo = results["failure-oblivious"]
        assert fo.legitimate_served == fo.legitimate_requests

    def test_failure_oblivious_throughput_is_highest(self, results):
        """The paper's §4.3.2 ordering: FO well above Bounds Check and Standard."""
        assert throughput_ratio(results, "failure-oblivious", "bounds-check") > 2.0
        assert throughput_ratio(results, "failure-oblivious", "standard") > 2.0

    def test_restart_time_only_charged_to_crashing_builds(self, results):
        assert results["failure-oblivious"].restart_seconds == 0
        assert results["bounds-check"].restart_seconds > 0

    def test_throughput_values_are_positive(self, results):
        assert all(result.throughput_rps > 0 for result in results.values())

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            run_throughput_experiment(policies=("asan",), total_requests=10)


class TestStability:
    def test_failure_oblivious_apache_is_flawless(self):
        result = run_stability_experiment(
            "apache", "failure-oblivious", total_requests=60, attack_every=10, scale=0.1
        )
        assert result.flawless
        assert result.attacks_survived == result.attack_requests
        assert result.server_deaths == 0

    def test_failure_oblivious_sendmail_logs_wakeup_errors(self):
        result = run_stability_experiment(
            "sendmail", "failure-oblivious", total_requests=40, attack_every=8, scale=0.1
        )
        assert result.flawless
        assert "sendmail.daemon_wakeup" in result.error_sites

    def test_standard_apache_needs_restarts(self):
        result = run_stability_experiment(
            "apache", "standard", total_requests=60, attack_every=10, scale=0.1
        )
        assert result.server_deaths > 0
        assert result.restarts > 0

    def test_bounds_check_pine_cannot_start(self):
        result = run_stability_experiment(
            "pine", "bounds-check", total_requests=30, attack_every=10, scale=0.1
        )
        assert result.legitimate_served == 0
        assert not result.flawless

    def test_restart_disabled(self):
        result = run_stability_experiment(
            "apache", "standard", total_requests=40, attack_every=10,
            restart_on_death=False, scale=0.1,
        )
        assert result.restarts == 0
        assert result.legitimate_failed > 0

    def test_custom_stream_is_respected(self):
        stream = mixed_stream("apache", total_requests=25, attack_every=5)
        result = run_stability_experiment("apache", "failure-oblivious", stream=stream, scale=0.1)
        assert result.total_requests == 25

    def test_service_rate_bounds(self):
        result = run_stability_experiment(
            "mutt", "failure-oblivious", total_requests=30, attack_every=6, scale=0.1
        )
        assert 0.0 <= result.legitimate_service_rate <= 1.0


class FragileServer(Server):
    """Toy server: one "crash" request kills it, and every restart dies at boot.

    Models a persistent trigger (Pine's poisoned mailbox): the first boot
    succeeds, but once crashed, the monitor's restarts keep hitting the same
    startup fault.
    """

    name = "toy-fragile"
    # Boot mutates the shared config (the boots counter), so consecutive
    # boots differ and the image-replay restart model does not apply.
    checkpoint_restarts = False

    def startup(self) -> None:
        boots = self.config.setdefault("boots", [])
        boots.append(1)
        if len(boots) > 1:
            raise SegmentationFault(0, "persistent trigger hit during restart boot")

    def handle(self, request: Request) -> Response:
        if request.kind == "crash":
            raise SegmentationFault(0, "request smashed the heap")
        return Response.ok(body=b"ok")


@pytest.fixture
def fragile_profile():
    profile = register_profile(ServerProfile(
        name="toy-fragile",
        server_cls=FragileServer,
        description="toy server whose restarts fail (stability regression test)",
    ))
    yield profile
    unregister_profile(profile.name)


class TestRestartDeathAccounting:
    """Regression: a restart that dies at boot is a server death on BOTH paths.

    The boot-time path always counted it; the in-loop path (stability.py's
    request loop) silently dropped it, understating server_deaths for every
    persistent-trigger scenario.
    """

    def test_failed_in_loop_restarts_count_as_deaths(self, fragile_profile):
        stream = RequestStream(requests=[
            Request(kind="ok"),
            Request(kind="crash"),
            Request(kind="ok"),
            Request(kind="ok"),
        ])
        result = run_stability_experiment("toy-fragile", "standard", stream=stream)
        # One death from the crashing request, plus one per failed restart
        # attempt (the monitor retries before each remaining request).
        assert result.restarts == 2
        assert result.server_deaths == 3
        assert result.legitimate_served == 1
        # The crashing request plus the two requests arriving while down.
        assert result.legitimate_failed == 3

    def test_successful_restarts_still_count_no_extra_deaths(self, fragile_profile):
        stream = RequestStream(requests=[Request(kind="ok"), Request(kind="ok")])
        result = run_stability_experiment("toy-fragile", "standard", stream=stream)
        assert result.server_deaths == 0
        assert result.restarts == 0
