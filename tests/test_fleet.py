"""The fleet soak service: deterministic traffic, worker-invariant tallies,
streaming sinks, and report-from-export parity.

The load-bearing invariants:

* the traffic timeline is a pure function of (seed, specs) — worker and
  shard counts cannot perturb it;
* serial and pooled runs produce identical per-instance tallies (the shard
  is the unit of determinism, and instances are independent);
* `fleet report` rebuilt from a SQLite export equals the live tallies for
  every stream-derived column, because drops flow through the event stream.
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main as cli_main
from repro.cli import parse_instance_spec
from repro.fleet.report import fleet_report_from_trace, format_fleet_table
from repro.fleet.scheduler import (
    DROPPED_OUTCOME,
    FleetTallySink,
    InstanceSpec,
    run_fleet,
    split_instances,
    expand_instances,
)
from repro.fleet.traffic import (
    ARRIVALS,
    BurstyArrivals,
    InstanceTraffic,
    PoissonArrivals,
    RampArrivals,
    TrafficModel,
    UniformArrivals,
    derive_seed,
    make_arrival,
    split_by_weight,
)
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.soak import run_soak_experiment
from repro.servers.base import bounded_history_limit
from repro.telemetry.events import RequestEnd
from repro.telemetry.stats import StatsSink


# ---------------------------------------------------------------------------
# Traffic model
# ---------------------------------------------------------------------------


class TestDeriveSeed:
    def test_stable_and_distinguishing(self):
        assert derive_seed(7, "traffic", 0) == derive_seed(7, "traffic", 0)
        assert derive_seed(7, "traffic", 0) != derive_seed(7, "traffic", 1)
        assert derive_seed(7, "traffic", 0) != derive_seed(7, "arrival", 0)
        assert derive_seed(7, "traffic", 0) != derive_seed(8, "traffic", 0)


class TestArrivalProcesses:
    @pytest.mark.parametrize("name", sorted(ARRIVALS))
    def test_registered_processes_produce_increasing_times(self, name):
        process = make_arrival(name, rate=50.0)
        times = process.arrival_times(200, random.Random(3))
        assert len(times) == 200
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times[0] > 0

    def test_deterministic_per_seed(self):
        process = PoissonArrivals(rate=100.0)
        assert (process.arrival_times(50, random.Random(5))
                == process.arrival_times(50, random.Random(5)))
        assert (process.arrival_times(50, random.Random(5))
                != process.arrival_times(50, random.Random(6)))

    def test_uniform_is_evenly_spaced(self):
        times = UniformArrivals(rate=10.0).arrival_times(4, random.Random(0))
        assert times == pytest.approx([0.1, 0.2, 0.3, 0.4])

    def test_ramp_accelerates(self):
        # Mean gap over the first quarter should exceed the last quarter's.
        gaps = RampArrivals(start_rate=5.0, end_rate=500.0).inter_arrivals(
            400, random.Random(1)
        )
        assert sum(gaps[:100]) > sum(gaps[-100:])

    def test_bursty_has_heavier_gap_tail_than_poisson(self):
        rng = random.Random(2)
        gaps = BurstyArrivals(rate=100.0, burst_size=6).inter_arrivals(600, rng)
        gaps_sorted = sorted(gaps)
        # Bursts: most gaps tiny, idle gaps an order of magnitude larger.
        assert gaps_sorted[-1] > 20 * gaps_sorted[len(gaps) // 2]

    def test_unknown_name_is_rejected(self):
        with pytest.raises(KeyError):
            make_arrival("fractal")

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=10.0, burst_size=0)


class TestSplitByWeight:
    def test_exact_and_deterministic(self):
        counts = split_by_weight(10, [1.0, 1.0, 1.0])
        assert sum(counts) == 10
        assert counts == split_by_weight(10, [1.0, 1.0, 1.0])

    def test_weights_scale_shares(self):
        assert split_by_weight(90, [2.0, 1.0]) == [60, 30]

    def test_rejects_nonpositive_weight_sum(self):
        with pytest.raises(ValueError):
            split_by_weight(10, [0.0, 0.0])


class TestTrafficModel:
    def _model(self, seed=9):
        return TrafficModel(
            [
                InstanceTraffic("apache", PoissonArrivals(rate=50.0)),
                InstanceTraffic("pine", BurstyArrivals(rate=50.0), weight=2.0),
            ],
            total_requests=90,
            seed=seed,
        )

    def test_timeline_is_seed_deterministic(self):
        a = [(fr.instance, fr.at, fr.seq, fr.request.kind, fr.request.is_attack)
             for fr in self._model().timeline()]
        b = [(fr.instance, fr.at, fr.seq, fr.request.kind, fr.request.is_attack)
             for fr in self._model().timeline()]
        assert a == b
        c = [(fr.instance, fr.at) for fr in self._model(seed=10).timeline()]
        assert c != [(fr.instance, fr.at) for fr in self._model().timeline()]

    def test_timeline_is_ordered_and_complete(self):
        timeline = self._model().timeline()
        assert len(timeline) == 90
        keys = [(fr.at, fr.instance, fr.seq) for fr in timeline]
        assert keys == sorted(keys)
        # Weights apportion 1:2.
        assert sum(1 for fr in timeline if fr.instance == 0) == 30
        assert sum(1 for fr in timeline if fr.instance == 1) == 60

    def test_attacks_mixed_at_the_requested_period(self):
        model = TrafficModel(
            [InstanceTraffic("apache", UniformArrivals(rate=10.0), attack_every=5)],
            total_requests=50, seed=1,
        )
        requests = model.instance_requests(0)
        attack_positions = [i for i, r in enumerate(requests) if r.is_attack]
        assert attack_positions == [5, 10, 15, 20, 25, 30, 35, 40, 45]

    def test_per_instance_streams_ignore_fleet_composition(self):
        """An instance's content depends on its index and seed only — adding
        instances after it cannot change what it receives."""
        small = TrafficModel(
            [InstanceTraffic("apache", UniformArrivals(rate=10.0))],
            total_requests=20, seed=4,
        )
        # Same index-0 count in a bigger fleet (weights arranged so counts match).
        big = TrafficModel(
            [InstanceTraffic("apache", UniformArrivals(rate=10.0)),
             InstanceTraffic("pine", UniformArrivals(rate=10.0))],
            total_requests=40, seed=4,
        )
        kinds_small = [r.kind for r in small.instance_requests(0)]
        kinds_big = [r.kind for r in big.instance_requests(0)]
        assert kinds_small == kinds_big


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------

#: >= 3 profiles x >= 2 policies, kept small enough for the test suite.
FLEET_SPECS = [
    InstanceSpec("apache", "failure-oblivious", count=2),
    InstanceSpec("apache", "bounds-check"),
    InstanceSpec("pine", "failure-oblivious"),
    InstanceSpec("pine", "bounds-check"),
    InstanceSpec("mutt", "failure-oblivious"),
    InstanceSpec("sendmail", "failure-oblivious"),
]
FLEET_KW = dict(total_requests=240, seed=13)


class TestSplitInstances:
    def test_contiguous_and_complete(self):
        instances = expand_instances([InstanceSpec("apache", "standard", count=7)])
        groups = split_instances(instances, 3)
        assert [len(g) for g in groups] == [3, 2, 2]
        assert [i.index for g in groups for i in g] == list(range(7))

    def test_more_shards_than_instances(self):
        instances = expand_instances([InstanceSpec("apache", "standard", count=2)])
        assert [len(g) for g in split_instances(instances, 9)] == [1, 1]


class TestFleetScheduler:
    def test_pooled_tallies_identical_to_serial(self):
        """Acceptance: identical per-instance tallies serial vs --workers N."""
        serial = run_fleet(FLEET_SPECS, workers=0, **FLEET_KW)
        pooled = run_fleet(FLEET_SPECS, workers=3, **FLEET_KW)
        assert serial.tally() == pooled.tally()
        assert serial.shard_count == pooled.shard_count == 7

    def test_shard_grouping_does_not_change_tallies(self):
        """Shards group whole instances, so any shard count yields the same
        per-instance tallies (instances are independent processes)."""
        by_instance = run_fleet(FLEET_SPECS, workers=0, **FLEET_KW)
        grouped = run_fleet(FLEET_SPECS, workers=2, shards=2, **FLEET_KW)
        assert by_instance.tally() == grouped.tally()
        assert grouped.shard_count == 2

    def test_failure_oblivious_instances_serve_everything(self):
        result = run_fleet(FLEET_SPECS, workers=0, **FLEET_KW)
        for tally in result.instances:
            if tally.policy == "failure-oblivious":
                assert tally.availability == 1.0
                assert tally.server_deaths == 0
                assert tally.dropped == 0

    def test_bounds_check_contrast_matches_the_paper(self):
        result = run_fleet(FLEET_SPECS, workers=0, **FLEET_KW)
        by_label = {(t.index, t.server, t.policy): t for t in result.instances}
        apache_bc = by_label[(2, "apache", "bounds-check")]
        # Apache's checked build dies per attack and is restored per death.
        assert apache_bc.server_deaths == apache_bc.attack_requests > 0
        assert apache_bc.restarts >= apache_bc.server_deaths
        assert apache_bc.availability == 1.0
        # Pine's checked build dies at boot (poisoned mailbox): everything
        # arriving is dropped through the event stream.
        pine_bc = by_label[(4, "pine", "bounds-check")]
        assert result.boot_fatal["pine/bounds-check"]
        assert pine_bc.legitimate_served == 0
        assert pine_bc.dropped == pine_bc.requests
        assert pine_bc.availability == 0.0

    def test_mutt_clones_restore_the_post_setup_state(self):
        """The template re-checkpoints after session setup, so Mutt clones
        (whose startup folder rejection needs a follow-up to recover from)
        serve their whole stream."""
        result = run_fleet(
            [InstanceSpec("mutt", "failure-oblivious", count=2)],
            total_requests=60, seed=3, workers=0,
        )
        for tally in result.instances:
            assert tally.availability == 1.0

    def test_stats_sink_aggregates_per_server_policy(self):
        result = run_fleet(FLEET_SPECS, workers=2, stats_every=50, **FLEET_KW)
        keys = result.stats.keys()
        assert ("apache", "failure-oblivious") in keys
        assert ("pine", "bounds-check") in keys
        assert result.stats.requests_seen == result.total_requests
        by_outcome = {}
        for counter in result.stats.counters.values():
            for outcome, count in counter.requests_by_outcome.items():
                by_outcome[outcome] = by_outcome.get(outcome, 0) + count
        # The outcome counters also see replayed __startup__ boots (restart
        # telemetry), so they bound the workload from above; the drop count
        # is exact because only the scheduler emits that outcome.
        assert sum(by_outcome.values()) >= result.total_requests
        assert by_outcome.get(DROPPED_OUTCOME, 0) == result.dropped
        assert by_outcome.get("served", 0) >= result.legitimate_served

    def test_wall_clock_budget_drops_the_tail(self):
        result = run_fleet(
            [InstanceSpec("apache", "failure-oblivious")],
            total_requests=400, seed=2, workers=0, max_seconds=0.0,
        )
        assert result.deadline_hit
        # Everything after the (already expired) deadline is dropped, and the
        # drops still flow through the tallies.
        assert result.dropped == 400
        assert result.legitimate_served == 0

    def test_result_throughput_and_table(self):
        result = run_fleet(FLEET_SPECS, workers=0, **FLEET_KW)
        assert result.requests_per_sec > 0
        table = format_fleet_table(result)
        assert "availability" in table
        assert "apache" in table and "bounds-check" in table

    def test_instance_spec_validation(self):
        with pytest.raises(ValueError):
            InstanceSpec("apache", "standard", count=0)
        with pytest.raises(ValueError):
            InstanceSpec("apache", "standard", weight=0.0)
        with pytest.raises(ValueError):
            run_fleet([], total_requests=10)


class TestHistoryGuard:
    def test_fleet_refuses_unbounded_history(self):
        with pytest.raises(ValueError, match="unbounded"):
            run_fleet(FLEET_SPECS, history_limit=None, **FLEET_KW)

    def test_soak_refuses_unbounded_history(self):
        with pytest.raises(ValueError, match="unbounded"):
            run_soak_experiment(
                "apache", "failure-oblivious", total_requests=20,
                history_limit=None,
            )

    def test_explicit_opt_in_is_honored(self):
        result = run_soak_experiment(
            "apache", "failure-oblivious", total_requests=12, shards=2,
            history_limit=None, allow_unbounded_history=True,
        )
        assert result.total_requests == 12

    def test_guard_validates_values(self):
        assert bounded_history_limit(64) == 64
        assert bounded_history_limit(None, allow_unbounded=True) is None
        with pytest.raises(ValueError):
            bounded_history_limit(0)
        with pytest.raises(ValueError):
            bounded_history_limit(-5)

    def test_fleet_history_stays_bounded(self):
        result = run_fleet(
            [InstanceSpec("apache", "failure-oblivious")],
            total_requests=100, seed=1, workers=0, history_limit=8,
        )
        # The tally proves 100 requests ran; the bound proves none of the
        # instances retained more than history_limit results.
        assert result.total_requests == 100


class TestFleetTallySink:
    def test_drop_events_split_by_attack_flag(self):
        sink = FleetTallySink()
        sink.emit(RequestEnd(request_id=1, kind="get", outcome=DROPPED_OUTCOME))
        sink.emit(RequestEnd(request_id=2, kind="get", outcome=DROPPED_OUTCOME,
                             is_attack=True))
        sink.emit(RequestEnd(request_id=3, kind="get", outcome="served"))
        assert sink.legitimate_dropped == 1
        assert sink.attacks_dropped == 1
        assert sink.legitimate_served == 1
        # Drops are neither survivals nor deaths.
        assert sink.attacks_survived == 0
        assert sink.server_deaths == 0


# ---------------------------------------------------------------------------
# Report-from-export parity
# ---------------------------------------------------------------------------


def _stream_fields(tally):
    return (
        tally.index, tally.server, tally.policy, tally.requests,
        tally.attack_requests, tally.legitimate_served, tally.legitimate_failed,
        tally.dropped, tally.attacks_survived, tally.server_deaths,
        tally.memory_errors_logged, dict(sorted(tally.error_sites.items())),
    )


class TestFleetReport:
    def test_report_from_sqlite_equals_live_tallies(self, tmp_path):
        """Acceptance: `fleet report` reproduces the live per-instance counts
        from the SQLite export — including the boot-fatal instance whose
        requests were all dropped."""
        db = str(tmp_path / "fleet.sqlite")
        result = run_fleet(FLEET_SPECS, workers=2, sqlite_path=db, **FLEET_KW)
        reported = fleet_report_from_trace(db)
        assert [_stream_fields(t) for t in result.instances] == \
            [_stream_fields(t) for t in reported]

    def test_report_table_renders_from_export(self, tmp_path):
        db = str(tmp_path / "fleet.sqlite")
        run_fleet(FLEET_SPECS, workers=0, sqlite_path=db, **FLEET_KW)
        table = format_fleet_table(fleet_report_from_trace(db))
        assert "availability" in table

    def test_spill_databases_are_merged_and_removed(self, tmp_path):
        db = str(tmp_path / "fleet.sqlite")
        run_fleet(FLEET_SPECS, workers=2, sqlite_path=db, **FLEET_KW)
        assert (tmp_path / "fleet.sqlite").exists()
        assert not (tmp_path / "fleet.sqlite.spills").exists()

    def test_export_is_ordered_by_instance(self, tmp_path):
        from repro.telemetry import iter_trace_records

        db = str(tmp_path / "fleet.sqlite")
        run_fleet(FLEET_SPECS, workers=3, sqlite_path=db, **FLEET_KW)
        scenarios = [
            record["scenario"]
            for record in iter_trace_records(db)
            if record.get("scenario") is not None
        ]
        assert scenarios == sorted(scenarios)
        assert set(scenarios) == set(range(7))


# ---------------------------------------------------------------------------
# CLI + experiment registration
# ---------------------------------------------------------------------------


class TestFleetCli:
    def test_parse_instance_spec(self):
        spec = parse_instance_spec("apache:bounds-check:3", 10, "poisson", 50.0)
        assert (spec.server, spec.policy, spec.count) == ("apache", "bounds-check", 3)
        with pytest.raises(ValueError):
            parse_instance_spec("apache", 10, "poisson", 50.0)
        with pytest.raises(ValueError):
            parse_instance_spec("apache:standard:x", 10, "poisson", 50.0)

    def test_fleet_run_and_report_round_trip(self, tmp_path, capsys):
        db = str(tmp_path / "cli.sqlite")
        assert cli_main([
            "fleet", "run", "-i", "apache:failure-oblivious:2",
            "-i", "pine:bounds-check", "--requests", "90", "--seed", "5",
            "--workers", "2", "--sqlite-out", db,
        ]) == 0
        run_output = capsys.readouterr().out
        assert "availability" in run_output
        assert cli_main(["fleet", "report", db]) == 0
        report_output = capsys.readouterr().out
        # The same served counts appear in both tables.
        for line in run_output.splitlines():
            if line.startswith("0 ") or line.startswith("1 "):
                assert line.split()[:2] == ["0", "apache"] or \
                    line.split()[:2] == ["1", "apache"]
        assert "from export" in report_output

    def test_fleet_report_rejects_traceless_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli_main(["fleet", "report", str(empty)]) == 1

    def test_bad_instance_spec_exits_with_usage_error(self, capsys):
        assert cli_main(["fleet", "run", "-i", "nonsense"]) == 2

    def test_exp_fleet_is_registered_and_runs(self):
        assert "exp-fleet" in EXPERIMENTS
        output = run_experiment("exp-fleet", total_requests=120, workers=0)
        assert output.experiment_id == "exp-fleet"
        assert "availability" in output.table
        assert output.data.total_requests == 120
