"""The redirect policy's batched terminator scan (preview/commit protocol).

The redirect policy's out-of-bounds reads land *inside the unit* (at
``offset % size``), so — unlike failure-oblivious and boundless — it cannot
generate scan bytes itself.  Since the preview/commit protocol it returns a
REDIRECT preview, the accessor scans the wrapped unit contents, and the
consumed length is committed back for recording.  These tests pin the edge
shapes (wraparound, terminator exactly at the wrap point, absent terminator
tiling, dead units) against the frozen per-byte reference loops; the generic
Hypothesis equivalence suite covers the random shapes.
"""

from __future__ import annotations

import pytest

from repro.core.policies import RedirectPolicy
from repro.errors import InfiniteLoopGuard
from repro.memory import cstring
from repro.memory.context import MemoryContext
from tests.reference_cstring import ref_read_c_string, ref_strlen


def _twin_contexts():
    return MemoryContext(RedirectPolicy()), MemoryContext(RedirectPolicy())


def _observe(ctx):
    log = ctx.error_log
    stats = ctx.policy.stats.as_dict()
    stats.pop("checks_performed")  # one check per run vs per byte, documented
    return {
        "heap": bytes(ctx.space.heap.data),
        "raw_reads": ctx.space.raw_reads,
        "stats": stats,
        "log_total": log.total_recorded,
        "log_by_site": log.count_by_site(),
        "log_by_kind": log.count_by_kind(),
        "events": [
            (e.kind, e.access, e.unit_name, e.unit_size, e.offset, e.length, e.site)
            for e in log.events()
        ],
        "sequence_produced": ctx.policy.sequence.produced,
    }


def _prepare(ctx, content: bytes):
    """One unit holding ``content`` followed by a scan pointer past its end."""
    unit = ctx.malloc(len(content), name="target")
    ctx.mem.write(unit, content)
    return unit


@pytest.mark.parametrize("content,start_offset", [
    (b"AB\x00DEFGH", 8),     # hit before the wrap point
    (b"ABCDEFG\x00", 12),    # scan starts mid-unit-image, wraps to find NUL
    (b"\x00BCDEFGH", 15),    # hit exactly at the wrap boundary
])
def test_oob_strlen_matches_per_byte_reference(content, start_offset):
    fast_ctx, ref_ctx = _twin_contexts()
    fast_unit = _prepare(fast_ctx, content)
    ref_unit = _prepare(ref_ctx, content)
    fast = cstring.strlen(fast_ctx.mem, fast_unit + start_offset)
    ref = ref_strlen(ref_ctx.mem, ref_unit + start_offset)
    assert fast == ref
    assert _observe(fast_ctx) == _observe(ref_ctx)


def test_absent_terminator_spins_exactly_like_the_byte_loop():
    """No NUL anywhere in the wrapped unit: both paths examine the same
    number of bytes, record the same events, and hit the loop guard."""
    fast_ctx, ref_ctx = _twin_contexts()
    content = b"ABCDEFGH"  # no NUL: the wrapped scan can never terminate
    fast_unit = _prepare(fast_ctx, content)
    ref_unit = _prepare(ref_ctx, content)
    limit = 1000
    with pytest.raises(InfiniteLoopGuard):
        cstring.strlen(fast_ctx.mem, fast_unit + 8, limit=limit)
    with pytest.raises(InfiniteLoopGuard):
        ref_strlen(ref_ctx.mem, ref_unit + 8, limit=limit)
    assert _observe(fast_ctx) == _observe(ref_ctx)


def test_dead_unit_scan_manufactures_like_per_byte():
    """UAF scans fall back to manufactured bytes; consumption must match."""
    fast_ctx, ref_ctx = _twin_contexts()
    results = []
    for ctx in (fast_ctx, ref_ctx):
        unit = ctx.malloc(8, name="dead")
        ctx.mem.write(unit, b"ABCDEFG\x00")
        ctx.free(unit)
        results.append((ctx, unit))
    fast = cstring.read_c_string(fast_ctx.mem, results[0][1])
    ref = ref_read_c_string(ref_ctx.mem, results[1][1])
    assert fast == ref
    assert _observe(fast_ctx) == _observe(ref_ctx)


def test_negative_offset_reenters_bounds_like_per_byte():
    """A pointer below its unit: the invalid run ends at offset 0 and the
    scan continues in bounds — per-byte and batched agree."""
    fast_ctx, ref_ctx = _twin_contexts()
    fast_unit = _prepare(fast_ctx, b"XY\x00AAAAA")
    ref_unit = _prepare(ref_ctx, b"XY\x00AAAAA")
    fast = cstring.strlen(fast_ctx.mem, fast_unit + (-3))
    ref = ref_strlen(ref_ctx.mem, ref_unit + (-3))
    assert fast == ref
    assert _observe(fast_ctx) == _observe(ref_ctx)


def test_commit_records_one_run_not_per_byte_objects():
    """The batched scan stores its error events as one coalesced run."""
    ctx = MemoryContext(RedirectPolicy())
    unit = _prepare(ctx, b"ABCDEFG\x00")
    cstring.strlen(ctx.mem, unit + 8)
    log = ctx.error_log
    # 8 per-byte events retained (offsets 8..15), stored as a handful of runs.
    assert log.total_recorded == 8
    assert log._ring.run_count <= 2
    assert ctx.policy.stats.redirected_accesses == 8
