"""Tests for the policy-mediated memory accessor — the heart of the mechanism."""

import pytest

from repro.core.policies import (
    BoundlessPolicy,
    RedirectPolicy,
)
from repro.errors import BoundsCheckViolation, ErrorKind, SegmentationFault, UseAfterFree
from repro.memory.context import MemoryContext
from repro.memory.pointer import FatPointer


class TestInBoundsAccess:
    def test_round_trip(self, fo_ctx):
        buf = fo_ctx.malloc(16)
        fo_ctx.mem.write(buf, b"hello world")
        assert fo_ctx.mem.read(buf, 11) == b"hello world"

    def test_round_trip_is_policy_independent(self, any_policy_name):
        from tests.conftest import POLICY_CLASSES

        ctx = MemoryContext(POLICY_CLASSES[any_policy_name]())
        buf = ctx.malloc(16)
        ctx.mem.write(buf + 4, b"abcd")
        assert ctx.mem.read(buf + 4, 4) == b"abcd"

    def test_byte_helpers(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write_byte(buf + 3, 0x7E)
        assert fo_ctx.mem.read_byte(buf + 3) == 0x7E

    def test_int_helpers_signed(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write_int(buf, -12345, size=4)
        assert fo_ctx.mem.read_int(buf, size=4, signed=True) == -12345

    def test_int_helpers_unsigned(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write_int(buf, 0xDEADBEEF, size=4, signed=False)
        assert fo_ctx.mem.read_int(buf, size=4, signed=False) == 0xDEADBEEF

    def test_zero_length_operations(self, fo_ctx):
        buf = fo_ctx.malloc(4)
        assert fo_ctx.mem.read(buf, 0) == b""
        fo_ctx.mem.write(buf, b"")

    def test_read_unit_and_zero_unit(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf, b"12345678")
        fo_ctx.mem.zero_unit(buf.referent)
        assert fo_ctx.mem.read_unit(buf.referent) == b"\x00" * 8


class TestFailureObliviousSemantics:
    def test_out_of_bounds_write_discarded(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        neighbour = fo_ctx.malloc(8)
        fo_ctx.mem.write(neighbour, b"AAAAAAAA")
        fo_ctx.mem.write(buf + 8, b"ZZZZ")
        assert fo_ctx.mem.read(neighbour, 8) == b"AAAAAAAA"

    def test_partial_overflow_writes_in_bounds_prefix(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf + 4, b"abcdefgh")
        assert fo_ctx.mem.read(buf + 4, 4) == b"abcd"

    def test_out_of_bounds_read_manufactures_paper_sequence(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        assert fo_ctx.mem.read(buf + 8, 3) == bytes([0, 1, 2])

    def test_partial_out_of_bounds_read_mixes_real_and_manufactured(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf, b"ABCDEFGH")
        data = fo_ctx.mem.read(buf + 6, 4)
        assert data[:2] == b"GH"
        assert data[2:] == bytes([0, 1])

    def test_negative_offset_write_discarded(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf - 4, b"XY")
        assert len(fo_ctx.error_log) == 1

    def test_null_pointer_read_manufactured(self, fo_ctx):
        value = fo_ctx.mem.read(FatPointer.null(), 2)
        assert len(value) == 2
        assert fo_ctx.error_log.events()[0].kind is ErrorKind.NULL_DEREF

    def test_use_after_free_read_manufactured(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.free(buf)
        fo_ctx.mem.read(buf, 4)
        assert fo_ctx.error_log.events()[0].kind is ErrorKind.USE_AFTER_FREE

    def test_error_events_carry_site_and_request(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.set_site("test.site")
        fo_ctx.set_request(42)
        fo_ctx.mem.write(buf + 9, b"x")
        event = fo_ctx.error_log.events()[0]
        assert event.site == "test.site"
        assert event.request_id == 42

    def test_byte_fastpath_oob_write_discarded(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        other = fo_ctx.malloc(8)
        fo_ctx.mem.write_byte(buf + 8, 0x41)
        assert fo_ctx.mem.read_byte(other) != 0x41 or len(fo_ctx.error_log) == 1

    def test_byte_fastpath_oob_read_manufactured(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        assert fo_ctx.mem.read_byte(buf + 100) in range(256)
        assert len(fo_ctx.error_log) == 1

    def test_checks_counted(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        before = fo_ctx.policy.stats.checks_performed
        fo_ctx.mem.read(buf, 4)
        fo_ctx.mem.write(buf, b"ab")
        assert fo_ctx.policy.stats.checks_performed == before + 2


class TestBoundsCheckSemantics:
    def test_oob_write_raises(self, bc_ctx):
        buf = bc_ctx.malloc(8)
        with pytest.raises(BoundsCheckViolation):
            bc_ctx.mem.write(buf + 8, b"x")

    def test_oob_read_raises(self, bc_ctx):
        buf = bc_ctx.malloc(8)
        with pytest.raises(BoundsCheckViolation):
            bc_ctx.mem.read(buf + 20, 1)

    def test_partial_overflow_still_raises(self, bc_ctx):
        buf = bc_ctx.malloc(8)
        with pytest.raises(BoundsCheckViolation):
            bc_ctx.mem.write(buf + 4, b"abcdefgh")

    def test_use_after_free_raises(self, bc_ctx):
        buf = bc_ctx.malloc(8)
        bc_ctx.free(buf)
        with pytest.raises(UseAfterFree):
            bc_ctx.mem.read_byte(buf)

    def test_in_bounds_does_not_raise(self, bc_ctx):
        buf = bc_ctx.malloc(8)
        bc_ctx.mem.write(buf, b"12345678")
        assert bc_ctx.mem.read(buf, 8) == b"12345678"


class TestStandardSemantics:
    def test_oob_write_corrupts_neighbouring_allocation(self, std_ctx):
        buf = std_ctx.malloc(8)
        neighbour = std_ctx.malloc(8)
        std_ctx.mem.write(neighbour, b"AAAAAAAA")
        distance = neighbour.address - buf.address
        std_ctx.mem.write(buf + distance, b"ZZZZ")
        assert std_ctx.mem.read(neighbour, 4) == b"ZZZZ"

    def test_far_oob_write_faults(self, std_ctx):
        buf = std_ctx.malloc(8)
        with pytest.raises(SegmentationFault):
            std_ctx.mem.write(buf + 100 * 1024 * 1024, b"x")

    def test_no_checks_counted(self, std_ctx):
        buf = std_ctx.malloc(8)
        std_ctx.mem.read(buf, 4)
        assert std_ctx.policy.stats.checks_performed == 0

    def test_no_events_logged_for_silent_corruption(self, std_ctx):
        buf = std_ctx.malloc(8)
        std_ctx.malloc(8)
        std_ctx.mem.write(buf + 8, b"Z")
        assert len(std_ctx.error_log) == 0


class TestVariantSemantics:
    def test_boundless_out_of_bounds_round_trip(self):
        ctx = MemoryContext(BoundlessPolicy())
        buf = ctx.malloc(8)
        ctx.mem.write(buf + 20, b"remember me")
        assert ctx.mem.read(buf + 20, 11) == b"remember me"

    def test_boundless_does_not_corrupt_neighbours(self):
        ctx = MemoryContext(BoundlessPolicy())
        buf = ctx.malloc(8)
        neighbour = ctx.malloc(8)
        ctx.mem.write(neighbour, b"BBBBBBBB")
        ctx.mem.write(buf + (neighbour.address - buf.address), b"XXXX")
        assert ctx.mem.read(neighbour, 8) == b"BBBBBBBB"

    def test_redirect_wraps_into_unit(self):
        ctx = MemoryContext(RedirectPolicy())
        buf = ctx.malloc(8)
        ctx.mem.write(buf, b"01234567")
        ctx.mem.write_byte(buf + 9, ord("Z"))
        assert ctx.mem.read_byte(buf + 1) == ord("Z")

    def test_redirect_read_wraps(self):
        ctx = MemoryContext(RedirectPolicy())
        buf = ctx.malloc(8)
        ctx.mem.write(buf, b"01234567")
        assert ctx.mem.read_byte(buf + 8) == ord("0")


class TestDecisionCache:
    """The per-accessor referent cache: hits skip the table bisect but keep
    every observable counter — and the cache can never outlive its unit."""

    def test_repeat_access_charges_one_check_and_lookup_each(self, fo_ctx):
        buf = fo_ctx.malloc(16)
        fo_ctx.mem.read(buf, 4)  # fill the cache
        assert fo_ctx.mem._cached_unit is buf.referent
        lookups_before = fo_ctx.table.lookups
        checks_before = fo_ctx.policy.stats.checks_performed
        fo_ctx.mem.read(buf, 4)
        fo_ctx.mem.write(buf + 8, b"zz")
        fo_ctx.mem.read_byte(buf + 1)
        fo_ctx.mem.write_byte(buf + 2, 7)
        # One check and one lookup per access, exactly as without the cache.
        assert fo_ctx.policy.stats.checks_performed == checks_before + 4
        assert fo_ctx.table.lookups == lookups_before + 4

    def test_cache_hit_still_detects_out_of_bounds(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf, b"x")  # cache the unit
        neighbour = fo_ctx.malloc(8)
        canary = b"CANARY!!"
        fo_ctx.mem.write(neighbour, canary)
        fo_ctx.mem.write(buf + 8, b"overflow")  # cached unit, invalid offset
        assert fo_ctx.mem.read(neighbour, 8) == canary
        assert fo_ctx.error_log.total_recorded > 0

    def test_free_evicts_the_cached_unit(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf, b"live")
        fo_ctx.free(buf)
        # A use-after-free must be classified as such, not served from cache.
        fo_ctx.mem.write(buf, b"dead")
        events = list(fo_ctx.error_log.events())
        assert events and events[-1].kind is ErrorKind.USE_AFTER_FREE

    def test_restore_invalidates_the_cache(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf, b"pre")
        image = fo_ctx.checkpoint()
        fo_ctx.mem.write(buf, b"mid")
        fo_ctx.restore(image)
        assert fo_ctx.mem._cached_unit is None
        # Accesses after the restore behave exactly like a cold accessor.
        assert fo_ctx.mem.read(buf, 3) == b"pre"

    def test_cache_disabled_context_never_caches(self):
        from repro.core.policies import FailureObliviousPolicy

        ctx = MemoryContext(FailureObliviousPolicy(), decision_cache=False)
        buf = ctx.malloc(8)
        ctx.mem.write(buf, b"a")
        ctx.mem.read(buf, 1)
        assert ctx.mem._cached_unit is None

    def test_standard_policy_does_not_cache(self):
        from repro.core.policies import StandardPolicy

        ctx = MemoryContext(StandardPolicy())
        buf = ctx.malloc(8)
        ctx.mem.write(buf, b"a")
        assert ctx.mem._cached_unit is None
