"""Tests running the paper's Figure 1 source through the mini-C front end."""

import pytest

from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import BoundsCheckViolation, HeapCorruption, MemoryFault
from repro.minic import compile_program
from repro.minic.figure1 import FIGURE1_SOURCE
from repro.minic.interpreter import TypedPointer
from repro.servers.mutt import utf8_to_utf7
from repro.memory.context import MemoryContext
from repro.workloads.attacks import mutt_attack_folder_name


@pytest.fixture(scope="module")
def program():
    return compile_program(FIGURE1_SOURCE)


def convert(program, name: bytes, policy):
    instance = program.instantiate(policy)
    result = instance.call("utf8_to_utf7", name, len(name))
    if isinstance(result, TypedPointer):
        return instance, instance.read_string(result)
    return instance, None


class TestBenignConversion:
    def test_compiles_single_function(self, program):
        assert program.function_names() == ["utf8_to_utf7"]

    def test_ascii_identity(self, program):
        _, out = convert(program, b"INBOX", FailureObliviousPolicy())
        assert out == b"INBOX"

    def test_accented_name(self, program):
        _, out = convert(program, "café".encode("utf-8"), FailureObliviousPolicy())
        assert out == b"caf&AOk-"

    def test_invalid_utf8_returns_null(self, program):
        instance = program.instantiate(FailureObliviousPolicy())
        result = instance.call("utf8_to_utf7", b"\xc1\x80", 2)
        assert result == 0 or (isinstance(result, TypedPointer) and result.is_null)

    def test_minic_output_matches_python_port(self, program):
        """The interpreted C and the hand-ported Python must agree byte for byte."""
        for name in (b"INBOX", b"archive/2004", "déjà".encode("utf-8"), b"a&b"):
            _, minic_out = convert(program, name, FailureObliviousPolicy())
            ctx = MemoryContext(FailureObliviousPolicy())
            source = ctx.alloc_c_string(name)
            python_out = ctx.read_c_string(utf8_to_utf7(ctx, source, len(name)))
            assert minic_out == python_out, name


class TestAttackConversion:
    """The same source, three builds, three behaviours (paper §2)."""

    def test_failure_oblivious_survives_and_truncates(self, program):
        instance, out = convert(program, mutt_attack_folder_name(60), FailureObliviousPolicy())
        assert out is not None
        assert instance.ctx.error_log.count_writes() > 0
        instance.ctx.heap.verify_heap()  # heap metadata intact

    def test_bounds_check_terminates(self, program):
        with pytest.raises(BoundsCheckViolation):
            convert(program, mutt_attack_folder_name(60), BoundsCheckPolicy())

    def test_standard_corrupts_the_heap(self, program):
        with pytest.raises((HeapCorruption, MemoryFault)):
            instance, _ = convert(program, mutt_attack_folder_name(60), StandardPolicy())
            instance.ctx.heap.verify_heap()

    def test_error_log_attributes_to_the_buffer(self, program):
        instance, _ = convert(program, mutt_attack_folder_name(40), FailureObliviousPolicy())
        assert any("utf7_buf" in event.unit_name or "minic_malloc" in event.unit_name
                   for event in instance.ctx.error_log.events())
