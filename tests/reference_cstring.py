"""The pre-fast-path byte-at-a-time cstring loops, kept verbatim.

This is the single source of truth for "what the substrate did before the
span fast path" (PR 2).  Two consumers anchor themselves to it:

* ``tests/test_cstring_equivalence.py`` proves the shipped span
  implementations are observably identical to these loops under every policy;
* ``benchmarks/test_substrate_throughput.py`` measures the fast path's
  speedup against them (the trajectory committed in ``BENCH_substrate.json``).

Keeping one copy means the equivalence property and the benchmark baseline
can never drift apart.  Do not "improve" these functions — their value is
being frozen history.
"""

from __future__ import annotations

from repro.errors import InfiniteLoopGuard
from repro.memory import cstring


def ref_strlen(mem, s, limit=None):
    limit = cstring.SCAN_LIMIT if limit is None else limit
    length = 0
    ptr = s
    while True:
        if length > limit:
            raise InfiniteLoopGuard(f"strlen scanned {limit} bytes without finding NUL")
        if mem.read_byte(ptr) == 0:
            return length
        ptr = ptr + 1
        length += 1


def ref_strcpy(mem, dst, src):
    d, s = dst, src
    copied = 0
    while True:
        if copied > cstring.SCAN_LIMIT:
            raise InfiniteLoopGuard("strcpy copied too many bytes")
        byte = mem.read_byte(s)
        mem.write_byte(d, byte)
        if byte == 0:
            return dst
        d, s = d + 1, s + 1
        copied += 1


def ref_strncpy(mem, dst, src, n):
    s = src
    hit_nul = False
    for i in range(n):
        if hit_nul:
            mem.write_byte(dst + i, 0)
            continue
        byte = mem.read_byte(s)
        mem.write_byte(dst + i, byte)
        if byte == 0:
            hit_nul = True
        s = s + 1
    return dst


def ref_strchr(mem, s, ch, limit=None):
    limit = cstring.SCAN_LIMIT if limit is None else limit
    ptr = s
    for _ in range(limit):
        byte = mem.read_byte(ptr)
        if byte == (ch & 0xFF):
            return ptr
        if byte == 0:
            return None
        ptr = ptr + 1
    raise InfiniteLoopGuard(f"strchr scanned {limit} bytes")


def ref_strcmp(mem, a, b, limit=None):
    limit = cstring.SCAN_LIMIT if limit is None else limit
    pa, pb = a, b
    for _ in range(limit):
        ba = mem.read_byte(pa)
        bb = mem.read_byte(pb)
        if ba != bb:
            return -1 if ba < bb else 1
        if ba == 0:
            return 0
        pa, pb = pa + 1, pb + 1
    raise InfiniteLoopGuard(f"strcmp scanned {limit} bytes")


def ref_read_c_string(mem, src, limit=None):
    limit = cstring.SCAN_LIMIT if limit is None else limit
    out = bytearray()
    ptr = src
    for _ in range(limit):
        byte = mem.read_byte(ptr)
        if byte == 0:
            return bytes(out)
        out.append(byte)
        ptr = ptr + 1
    raise InfiniteLoopGuard(f"read_c_string scanned {limit} bytes without NUL")
