"""Tests for the C string routines over simulated memory."""

import pytest

from repro.errors import BoundsCheckViolation, InfiniteLoopGuard
from repro.memory import cstring


class TestStrlenStrcpy:
    def test_strlen(self, fo_ctx):
        s = fo_ctx.alloc_c_string(b"hello")
        assert cstring.strlen(fo_ctx.mem, s) == 5

    def test_strlen_empty(self, fo_ctx):
        s = fo_ctx.alloc_c_string(b"")
        assert cstring.strlen(fo_ctx.mem, s) == 0

    def test_strlen_guard_fires_before_scanning_forever(self, fo_ctx):
        s = fo_ctx.alloc_c_string(b"a" * 32)
        with pytest.raises(InfiniteLoopGuard):
            cstring.strlen(fo_ctx.mem, s, limit=8)

    def test_strcpy(self, fo_ctx):
        src = fo_ctx.alloc_c_string(b"copy me")
        dst = fo_ctx.malloc(16)
        cstring.strcpy(fo_ctx.mem, dst, src)
        assert fo_ctx.read_c_string(dst) == b"copy me"

    def test_strcpy_overflow_is_policy_governed(self, bc_ctx):
        src = bc_ctx.alloc_c_string(b"this string is too long")
        dst = bc_ctx.malloc(4)
        with pytest.raises(BoundsCheckViolation):
            cstring.strcpy(bc_ctx.mem, dst, src)

    def test_strcpy_overflow_truncated_under_fo(self, fo_ctx):
        src = fo_ctx.alloc_c_string(b"this string is too long")
        dst = fo_ctx.malloc(4)
        cstring.strcpy(fo_ctx.mem, dst, src)
        assert fo_ctx.mem.read(dst, 4) == b"this"
        assert fo_ctx.error_log.count_writes() > 0

    def test_strncpy_pads_with_nul(self, fo_ctx):
        src = fo_ctx.alloc_c_string(b"ab")
        dst = fo_ctx.malloc(8)
        fo_ctx.mem.write(dst, b"XXXXXXXX")
        cstring.strncpy(fo_ctx.mem, dst, src, 6)
        assert fo_ctx.mem.read(dst, 6) == b"ab\x00\x00\x00\x00"

    def test_strncpy_respects_limit(self, fo_ctx):
        src = fo_ctx.alloc_c_string(b"abcdef")
        dst = fo_ctx.malloc(8)
        cstring.strncpy(fo_ctx.mem, dst, src, 3)
        assert fo_ctx.mem.read(dst, 3) == b"abc"


class TestStrcatStrchrStrcmp:
    def test_strcat_appends(self, fo_ctx):
        dst = fo_ctx.malloc(32)
        fo_ctx.mem.write(dst, b"foo\x00")
        src = fo_ctx.alloc_c_string(b"bar")
        cstring.strcat(fo_ctx.mem, dst, src)
        assert fo_ctx.read_c_string(dst) == b"foobar"

    def test_strcat_accumulates_like_midnight_commander(self, fo_ctx):
        dst = fo_ctx.malloc(64)
        fo_ctx.mem.write_byte(dst, 0)
        for piece in (b"/usr", b"/lib", b"/x"):
            cstring.strcat(fo_ctx.mem, dst, fo_ctx.alloc_c_string(piece))
        assert fo_ctx.read_c_string(dst) == b"/usr/lib/x"

    def test_strchr_found(self, fo_ctx):
        s = fo_ctx.alloc_c_string(b"path/to/file")
        ptr = cstring.strchr(fo_ctx.mem, s, ord("/"))
        assert ptr is not None and ptr - s == 4

    def test_strchr_not_found_returns_none(self, fo_ctx):
        s = fo_ctx.alloc_c_string(b"nope")
        assert cstring.strchr(fo_ctx.mem, s, ord("/")) is None

    def test_strcmp_equal_and_ordering(self, fo_ctx):
        a = fo_ctx.alloc_c_string(b"abc")
        b = fo_ctx.alloc_c_string(b"abc")
        c = fo_ctx.alloc_c_string(b"abd")
        assert cstring.strcmp(fo_ctx.mem, a, b) == 0
        assert cstring.strcmp(fo_ctx.mem, a, c) == -1
        assert cstring.strcmp(fo_ctx.mem, c, a) == 1


class TestMemOps:
    def test_memcpy(self, fo_ctx):
        src = fo_ctx.malloc(16)
        dst = fo_ctx.malloc(16)
        fo_ctx.mem.write(src, b"0123456789abcdef")
        cstring.memcpy(fo_ctx.mem, dst, src, 16)
        assert fo_ctx.mem.read(dst, 16) == b"0123456789abcdef"

    def test_memset(self, fo_ctx):
        dst = fo_ctx.malloc(8)
        cstring.memset(fo_ctx.mem, dst, 0x55, 8)
        assert fo_ctx.mem.read(dst, 8) == b"\x55" * 8

    def test_memcpy_overflow_discarded_under_fo(self, fo_ctx):
        src = fo_ctx.malloc(16)
        dst = fo_ctx.malloc(8)
        fo_ctx.mem.write(src, b"0123456789abcdef")
        cstring.memcpy(fo_ctx.mem, dst, src, 16)
        assert fo_ctx.mem.read(dst, 8) == b"01234567"
        assert fo_ctx.error_log.count_writes() == 1

    def test_write_and_read_c_string_round_trip(self, fo_ctx):
        buf = fo_ctx.malloc(32)
        cstring.write_c_string(fo_ctx.mem, buf, b"round trip")
        assert cstring.read_c_string(fo_ctx.mem, buf) == b"round trip"

    def test_read_fixed(self, fo_ctx):
        buf = fo_ctx.malloc(8)
        fo_ctx.mem.write(buf, b"AB\x00CD\x00EF")
        assert cstring.read_fixed(fo_ctx.mem, buf, 7) == b"AB\x00CD\x00E"
