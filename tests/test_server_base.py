"""Tests for the shared server lifecycle (boot, process, classify, restart)."""


from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import RequestOutcome
from repro.servers.base import Request, Response, Server, ServerError


class EchoServer(Server):
    """A minimal concrete server used to exercise the base class."""

    name = "echo"

    def startup(self) -> None:
        self.booted = True
        if self.config.get("fail_boot"):
            buf = self.ctx.malloc(4, name="boot_buf")
            self.ctx.mem.write(buf + 4, b"overflow!")

    def handle(self, request: Request) -> Response:
        if request.kind == "echo":
            return Response.ok(body=bytes(request.payload.get("data", b"")))
        if request.kind == "reject":
            raise ServerError("anticipated error")
        if request.kind == "overflow":
            buf = self.ctx.malloc(4, name="req_buf")
            self.ctx.mem.write(buf, b"X" * 64)
            return Response.ok()
        raise ServerError(f"unknown kind {request.kind}")


class TestLifecycle:
    def test_start_then_process(self):
        server = EchoServer(FailureObliviousPolicy)
        boot = server.start()
        assert boot.outcome is RequestOutcome.SERVED
        result = server.process(Request(kind="echo", payload={"data": b"hi"}))
        assert result.outcome is RequestOutcome.SERVED
        assert result.response.body == b"hi"

    def test_anticipated_error_keeps_server_alive(self):
        server = EchoServer(FailureObliviousPolicy)
        server.start()
        result = server.process(Request(kind="reject"))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING
        assert server.alive
        assert result.acceptable

    def test_unknown_kind_is_rejected_not_fatal(self):
        server = EchoServer(FailureObliviousPolicy)
        server.start()
        result = server.process(Request(kind="bogus"))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_boot_failure_under_bounds_check(self):
        server = EchoServer(BoundsCheckPolicy, config={"fail_boot": True})
        boot = server.start()
        assert boot.outcome is RequestOutcome.TERMINATED_BY_CHECK
        assert not server.alive
        assert not server.started

    def test_boot_survives_under_failure_oblivious(self):
        server = EchoServer(FailureObliviousPolicy, config={"fail_boot": True})
        boot = server.start()
        assert boot.outcome is RequestOutcome.SERVED
        assert server.alive

    def test_overflow_request_classification_per_policy(self):
        fo = EchoServer(FailureObliviousPolicy)
        fo.start()
        assert fo.process(Request(kind="overflow")).outcome is RequestOutcome.SERVED

        bc = EchoServer(BoundsCheckPolicy)
        bc.start()
        assert bc.process(Request(kind="overflow")).outcome is RequestOutcome.TERMINATED_BY_CHECK

        std = EchoServer(StandardPolicy)
        std.start()
        assert std.process(Request(kind="overflow")).outcome is RequestOutcome.CRASHED

    def test_dead_server_refuses_requests(self):
        server = EchoServer(BoundsCheckPolicy)
        server.start()
        server.process(Request(kind="overflow"))
        result = server.process(Request(kind="echo"))
        assert result.outcome is RequestOutcome.CRASHED
        assert result.fatal

    def test_restart_revives_server(self):
        server = EchoServer(BoundsCheckPolicy)
        server.start()
        server.process(Request(kind="overflow"))
        assert not server.alive
        boot = server.restart()
        assert server.alive
        assert boot.outcome is RequestOutcome.SERVED
        assert server.restarts == 1

    def test_restart_resets_error_log(self):
        server = EchoServer(FailureObliviousPolicy, config={"fail_boot": True})
        server.start()
        assert server.memory_error_count() > 0
        server.restart()
        # fresh policy, fresh log; only the new boot's errors remain
        assert server.memory_error_count() == server.ctx.error_log.total_recorded

    def test_history_and_counters(self):
        server = EchoServer(FailureObliviousPolicy)
        server.start()
        server.process(Request(kind="echo"))
        server.process(Request(kind="reject"))
        assert server.requests_processed == 2
        assert len(server.history) == 2

    def test_memory_errors_attached_to_result(self):
        server = EchoServer(FailureObliviousPolicy)
        server.start()
        result = server.process(Request(kind="overflow"))
        assert len(result.memory_errors) == 1

    def test_elapsed_time_recorded(self):
        server = EchoServer(FailureObliviousPolicy)
        server.start()
        result = server.process(Request(kind="echo"))
        assert result.elapsed_seconds > 0

    def test_describe_mentions_policy(self):
        server = EchoServer(FailureObliviousPolicy)
        assert "failure-oblivious" in server.describe()


class TestHistoryBounding:
    """Regression for the soak memory leak: history grew one RequestResult
    per request forever; it is now a deque, cappable for long runs."""

    def test_unbounded_by_default(self):
        server = EchoServer(FailureObliviousPolicy)
        server.start()
        for _ in range(10):
            server.process(Request(kind="echo"))
        assert len(server.history) == 10
        assert server.history.maxlen is None

    def test_constructor_limit_caps_history(self):
        server = EchoServer(FailureObliviousPolicy, history_limit=4)
        server.start()
        for index in range(10):
            server.process(Request(kind="echo", payload={"data": bytes([index])}))
        assert len(server.history) == 4
        # The newest results are the ones retained.
        assert [result.response.body for result in server.history] == [
            bytes([6]), bytes([7]), bytes([8]), bytes([9])
        ]
        assert server.requests_processed == 10  # counters keep counting

    def test_limit_history_preserves_newest_tail(self):
        server = EchoServer(FailureObliviousPolicy)
        server.start()
        for index in range(6):
            server.process(Request(kind="echo", payload={"data": bytes([index])}))
        server.limit_history(2)
        assert [result.response.body for result in server.history] == [
            bytes([4]), bytes([5])
        ]
        server.limit_history(None)
        server.process(Request(kind="echo"))
        assert len(server.history) == 3

    def test_history_survives_checkpoint_restart(self):
        server = EchoServer(FailureObliviousPolicy, history_limit=8)
        server.start()
        server.process(Request(kind="echo"))
        server.restart()
        # History is server-lifetime bookkeeping, not process-image state.
        assert len(server.history) == 1


class TestRequestResponse:
    def test_request_ids_unique(self):
        a = Request(kind="x")
        b = Request(kind="x")
        assert a.request_id != b.request_id

    def test_request_describe_marks_attacks(self):
        assert "[attack]" in Request(kind="x", is_attack=True).describe()

    def test_response_constructors(self):
        assert Response.ok(b"body").is_ok
        assert not Response.error("nope").is_ok
