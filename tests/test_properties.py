"""Property-based tests (hypothesis) for substrate invariants.

The invariants checked here are the ones the paper's mechanism relies on:

* failure-oblivious execution never lets an out-of-bounds access touch any
  byte outside the intended data unit;
* the bounds-check build never silently tolerates an invalid access;
* in-bounds behaviour is identical across all build variants;
* the manufactured value sequence is deterministic and byte-valued;
* the allocator never hands out overlapping data units.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.manufacture import ManufacturedValueSequence
from repro.core.policies import (
    BoundsCheckPolicy,
    FailureObliviousPolicy,
    StandardPolicy,
)
from repro.errors import BoundsCheckViolation, UseAfterFree
from repro.memory.context import MemoryContext

small_sizes = st.integers(min_value=1, max_value=64)
offsets = st.integers(min_value=-32, max_value=160)
payloads = st.binary(min_size=1, max_size=64)


class TestFailureObliviousIsolation:
    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, offset=offsets, data=payloads)
    def test_oob_writes_never_touch_other_units(self, size, offset, data):
        ctx = MemoryContext(FailureObliviousPolicy())
        target = ctx.malloc(size, name="target")
        sentinel = ctx.malloc(64, name="sentinel")
        canary = bytes((i * 7 + 3) % 256 for i in range(64))
        ctx.mem.write(sentinel, canary)
        ctx.mem.write(target + offset, data)
        assert ctx.mem.read(sentinel, 64) == canary

    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, offset=offsets, length=st.integers(min_value=1, max_value=32))
    def test_oob_reads_never_fault_and_have_requested_length(self, size, offset, length):
        ctx = MemoryContext(FailureObliviousPolicy())
        target = ctx.malloc(size, name="target")
        data = ctx.mem.read(target + offset, length)
        assert len(data) == length

    @settings(max_examples=40, deadline=None)
    @given(size=small_sizes, data=payloads)
    def test_heap_metadata_survives_any_single_overflow(self, size, data):
        ctx = MemoryContext(FailureObliviousPolicy())
        buf = ctx.malloc(size)
        ctx.mem.write(buf + size, data)
        ctx.heap.verify_heap()  # must not raise

    @settings(max_examples=40, deadline=None)
    @given(size=small_sizes, data=payloads)
    def test_return_slot_survives_any_single_overflow(self, size, data):
        ctx = MemoryContext(FailureObliviousPolicy())
        with ctx.stack_frame("victim"):
            buf = ctx.stack_buffer("buf", size)
            ctx.seal_frame()
            ctx.mem.write(buf + size, data)
        # Exiting the with block verifies the return slot; no exception means intact.


class TestBoundsCheckNeverSilent:
    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, offset=offsets, data=payloads)
    def test_every_invalid_write_raises(self, size, offset, data):
        ctx = MemoryContext(BoundsCheckPolicy())
        buf = ctx.malloc(size)
        invalid = offset < 0 or offset + len(data) > size
        try:
            ctx.mem.write(buf + offset, data)
            raised = False
        except (BoundsCheckViolation, UseAfterFree):
            raised = True
        assert raised == invalid


class TestPolicyEquivalenceInBounds:
    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, data=payloads)
    def test_in_bounds_writes_read_back_identically(self, size, data):
        data = data[:size]
        images = []
        for policy_cls in (StandardPolicy, BoundsCheckPolicy, FailureObliviousPolicy):
            ctx = MemoryContext(policy_cls())
            buf = ctx.malloc(size)
            ctx.mem.write(buf, data)
            images.append(ctx.mem.read(buf, len(data)))
        assert images[0] == images[1] == images[2] == data


class TestManufactureProperties:
    @settings(max_examples=40, deadline=None)
    @given(count=st.integers(min_value=1, max_value=512))
    def test_sequence_is_deterministic(self, count):
        first = ManufacturedValueSequence()
        second = ManufacturedValueSequence()
        assert [first.next_value() for _ in range(count)] == [
            second.next_value() for _ in range(count)
        ]

    @settings(max_examples=40, deadline=None)
    @given(count=st.integers(min_value=1, max_value=512))
    def test_values_are_bytes(self, count):
        seq = ManufacturedValueSequence()
        assert all(0 <= seq.next_byte() <= 255 for _ in range(count))


class TestAllocatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=128), min_size=1, max_size=40))
    def test_live_allocations_never_overlap(self, sizes):
        ctx = MemoryContext(FailureObliviousPolicy())
        units = [ctx.malloc(size).referent for size in sizes]
        spans = sorted((unit.base, unit.end) for unit in units)
        for (base_a, end_a), (base_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= base_b

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=2, max_size=20),
        free_every=st.integers(min_value=2, max_value=5),
    )
    def test_malloc_free_cycles_keep_heap_consistent(self, sizes, free_every):
        ctx = MemoryContext(FailureObliviousPolicy())
        live = []
        for index, size in enumerate(sizes):
            live.append(ctx.malloc(size))
            if index % free_every == 0 and live:
                ctx.free(live.pop(0))
        ctx.heap.verify_heap()
        spans = sorted((p.referent.base, p.referent.end) for p in live)
        for (base_a, end_a), (base_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= base_b


# -- decision-cache equivalence --------------------------------------------------

_cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=32)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("realloc"), st.integers(min_value=0, max_value=7),
                  st.integers(min_value=1, max_value=32)),
        st.tuples(st.just("write"), st.integers(min_value=0, max_value=7),
                  st.integers(min_value=-8, max_value=40),
                  st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("read"), st.integers(min_value=0, max_value=7),
                  st.integers(min_value=-8, max_value=40),
                  st.integers(min_value=1, max_value=16)),
        st.tuples(st.just("checkpoint")),
        st.tuples(st.just("restore")),
    ),
    min_size=1,
    max_size=25,
)


class TestDecisionCacheEquivalence:
    """The accessor's referent cache is purely an optimization.

    Cached and uncached contexts must produce identical telemetry streams,
    error-log answers, policy statistics (``checks_performed`` included — the
    cache still notes one check per access) and table lookup counts, across
    free / realloc / checkpoint / restore cycles — exactly the edges where a
    stale cache entry would diverge.
    """

    @settings(max_examples=30, deadline=None)
    @given(policy_name=st.sampled_from(["standard", "bounds-check",
                                        "failure-oblivious", "boundless", "redirect"]),
           ops=_cache_ops)
    def test_cached_equals_uncached(self, policy_name, ops):
        from tests.conftest import POLICY_CLASSES
        from repro.telemetry.sinks import CounterSink

        observations = []
        for cached in (False, True):
            ctx = MemoryContext(POLICY_CLASSES[policy_name](), decision_cache=cached,
                                heap_size=32 * 1024, stack_size=8 * 1024,
                                globals_size=4 * 1024)
            counters = ctx.bus.attach(CounterSink())
            slots = [ctx.malloc(16, name="seed")]
            image = ctx.checkpoint()
            trace = []
            for op in ops:
                kind = op[0]
                try:
                    if kind == "malloc":
                        slots.append(ctx.malloc(op[1], name="unit"))
                        trace.append("malloc")
                    elif kind == "free":
                        ctx.free(slots[op[1] % len(slots)])
                        trace.append("free")
                    elif kind == "realloc":
                        index = op[1] % len(slots)
                        slots[index] = ctx.realloc(slots[index], op[2])
                        trace.append("realloc")
                    elif kind == "write":
                        ctx.mem.write(slots[op[1] % len(slots)] + op[2], op[3])
                        trace.append("write")
                    elif kind == "read":
                        trace.append(bytes(ctx.mem.read(
                            slots[op[1] % len(slots)] + op[2], op[3])))
                    elif kind == "checkpoint":
                        image = ctx.checkpoint()
                        trace.append("checkpoint")
                    else:
                        ctx.restore(image)
                        trace.append("restore")
                except Exception as exc:  # every divergence shows up in the trace
                    trace.append(("raised", type(exc).__name__))
            log = ctx.error_log
            observations.append({
                "trace": trace,
                "heap": bytes(ctx.space.heap.data),
                "stats": ctx.policy.stats.as_dict(),
                "lookups": ctx.table.lookups,
                "raw_reads": ctx.space.raw_reads,
                "raw_writes": ctx.space.raw_writes,
                "log_total": log.total_recorded,
                "log_by_site": log.count_by_site(),
                "log_by_kind": log.count_by_kind(),
                "log_reads": log.count_reads(),
                "log_writes": log.count_writes(),
                "log_summary": log.summary(),
                "counters": {
                    "by_type": counters.by_type,
                    "invalid_total": counters.invalid_total,
                    "invalid_by_kind": counters.invalid_by_kind,
                    "manufactured_bytes": counters.manufactured_bytes,
                    "discarded_bytes": counters.discarded_bytes,
                    "stored_bytes": counters.stored_bytes,
                    "redirected_accesses": counters.redirected_accesses,
                },
            })
        assert observations[0] == observations[1]
