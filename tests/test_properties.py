"""Property-based tests (hypothesis) for substrate invariants.

The invariants checked here are the ones the paper's mechanism relies on:

* failure-oblivious execution never lets an out-of-bounds access touch any
  byte outside the intended data unit;
* the bounds-check build never silently tolerates an invalid access;
* in-bounds behaviour is identical across all build variants;
* the manufactured value sequence is deterministic and byte-valued;
* the allocator never hands out overlapping data units.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.manufacture import ManufacturedValueSequence
from repro.core.policies import (
    BoundsCheckPolicy,
    FailureObliviousPolicy,
    StandardPolicy,
)
from repro.errors import BoundsCheckViolation, UseAfterFree
from repro.memory.context import MemoryContext

small_sizes = st.integers(min_value=1, max_value=64)
offsets = st.integers(min_value=-32, max_value=160)
payloads = st.binary(min_size=1, max_size=64)


class TestFailureObliviousIsolation:
    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, offset=offsets, data=payloads)
    def test_oob_writes_never_touch_other_units(self, size, offset, data):
        ctx = MemoryContext(FailureObliviousPolicy())
        target = ctx.malloc(size, name="target")
        sentinel = ctx.malloc(64, name="sentinel")
        canary = bytes((i * 7 + 3) % 256 for i in range(64))
        ctx.mem.write(sentinel, canary)
        ctx.mem.write(target + offset, data)
        assert ctx.mem.read(sentinel, 64) == canary

    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, offset=offsets, length=st.integers(min_value=1, max_value=32))
    def test_oob_reads_never_fault_and_have_requested_length(self, size, offset, length):
        ctx = MemoryContext(FailureObliviousPolicy())
        target = ctx.malloc(size, name="target")
        data = ctx.mem.read(target + offset, length)
        assert len(data) == length

    @settings(max_examples=40, deadline=None)
    @given(size=small_sizes, data=payloads)
    def test_heap_metadata_survives_any_single_overflow(self, size, data):
        ctx = MemoryContext(FailureObliviousPolicy())
        buf = ctx.malloc(size)
        ctx.mem.write(buf + size, data)
        ctx.heap.verify_heap()  # must not raise

    @settings(max_examples=40, deadline=None)
    @given(size=small_sizes, data=payloads)
    def test_return_slot_survives_any_single_overflow(self, size, data):
        ctx = MemoryContext(FailureObliviousPolicy())
        with ctx.stack_frame("victim"):
            buf = ctx.stack_buffer("buf", size)
            ctx.seal_frame()
            ctx.mem.write(buf + size, data)
        # Exiting the with block verifies the return slot; no exception means intact.


class TestBoundsCheckNeverSilent:
    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, offset=offsets, data=payloads)
    def test_every_invalid_write_raises(self, size, offset, data):
        ctx = MemoryContext(BoundsCheckPolicy())
        buf = ctx.malloc(size)
        invalid = offset < 0 or offset + len(data) > size
        try:
            ctx.mem.write(buf + offset, data)
            raised = False
        except (BoundsCheckViolation, UseAfterFree):
            raised = True
        assert raised == invalid


class TestPolicyEquivalenceInBounds:
    @settings(max_examples=60, deadline=None)
    @given(size=small_sizes, data=payloads)
    def test_in_bounds_writes_read_back_identically(self, size, data):
        data = data[:size]
        images = []
        for policy_cls in (StandardPolicy, BoundsCheckPolicy, FailureObliviousPolicy):
            ctx = MemoryContext(policy_cls())
            buf = ctx.malloc(size)
            ctx.mem.write(buf, data)
            images.append(ctx.mem.read(buf, len(data)))
        assert images[0] == images[1] == images[2] == data


class TestManufactureProperties:
    @settings(max_examples=40, deadline=None)
    @given(count=st.integers(min_value=1, max_value=512))
    def test_sequence_is_deterministic(self, count):
        first = ManufacturedValueSequence()
        second = ManufacturedValueSequence()
        assert [first.next_value() for _ in range(count)] == [
            second.next_value() for _ in range(count)
        ]

    @settings(max_examples=40, deadline=None)
    @given(count=st.integers(min_value=1, max_value=512))
    def test_values_are_bytes(self, count):
        seq = ManufacturedValueSequence()
        assert all(0 <= seq.next_byte() <= 255 for _ in range(count))


class TestAllocatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=128), min_size=1, max_size=40))
    def test_live_allocations_never_overlap(self, sizes):
        ctx = MemoryContext(FailureObliviousPolicy())
        units = [ctx.malloc(size).referent for size in sizes]
        spans = sorted((unit.base, unit.end) for unit in units)
        for (base_a, end_a), (base_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= base_b

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=2, max_size=20),
        free_every=st.integers(min_value=2, max_value=5),
    )
    def test_malloc_free_cycles_keep_heap_consistent(self, sizes, free_every):
        ctx = MemoryContext(FailureObliviousPolicy())
        live = []
        for index, size in enumerate(sizes):
            live.append(ctx.malloc(size))
            if index % free_every == 0 and live:
                ctx.free(live.pop(0))
        ctx.heap.verify_heap()
        spans = sorted((p.referent.base, p.referent.end) for p in live)
        for (base_a, end_a), (base_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= base_b
