"""Tests for the benign workload and attack payload generators."""

import pytest

from repro.servers import SERVER_CLASSES
from repro.servers.base import Request
from repro.workloads.attacks import (
    attack_config_for,
    attack_request_for,
    midnight_commander_attack_archive,
    mutt_attack_folder_name,
    pine_attack_message,
    sendmail_attack_address,
)
from repro.workloads.benign import (
    FIGURE_ROWS,
    benign_requests_for,
    midnight_commander_vfs_files,
    mutt_benchmark_folders,
    pine_benchmark_mailbox,
)


class TestBenignGenerators:
    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_every_server_has_figure_rows(self, server_name):
        assert FIGURE_ROWS[server_name], server_name

    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_generators_produce_requested_count(self, server_name):
        for kind in FIGURE_ROWS[server_name]:
            requests = benign_requests_for(server_name, kind, 3)
            assert len(requests) == 3
            assert all(isinstance(request, Request) for request in requests)
            assert not any(request.is_attack for request in requests)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            benign_requests_for("pine", "frobnicate")

    def test_unknown_server_rejected(self):
        with pytest.raises(KeyError):
            benign_requests_for("nginx", "small")

    def test_figure_rows_match_paper(self):
        assert FIGURE_ROWS["pine"] == ["read", "compose", "move"]
        assert FIGURE_ROWS["apache"] == ["small", "large"]
        assert FIGURE_ROWS["sendmail"] == ["recv_small", "recv_large", "send_small", "send_large"]
        assert FIGURE_ROWS["midnight-commander"] == ["copy", "move", "mkdir", "delete"]
        assert FIGURE_ROWS["mutt"] == ["read", "move"]

    def test_sendmail_body_sizes_match_paper(self):
        small = benign_requests_for("sendmail", "recv_small", 1)[0]
        large = benign_requests_for("sendmail", "recv_large", 1)[0]
        assert len(small.payload["body"]) == 4
        assert len(large.payload["body"]) == 4096

    def test_mc_move_requests_alternate_direction(self):
        requests = benign_requests_for("midnight-commander", "move", 2)
        assert requests[0].payload["source"] != requests[1].payload["source"]

    def test_mc_vfs_files_sizes(self):
        files = midnight_commander_vfs_files(directory_bytes=1024, file_count=4,
                                             delete_file_bytes=256)
        data_files = [p for p in files if "/data/" in p]
        assert len(data_files) == 4
        assert len(files["/home/user/big-download.iso"]) == 256

    def test_benchmark_mailboxes_sized_for_repetitions(self):
        assert len(pine_benchmark_mailbox(40)) == 40
        assert len(mutt_benchmark_folders(40)[b"INBOX"]) == 40


class TestAttackGenerators:
    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_attack_request_defined_for_every_server(self, server_name):
        request = attack_request_for(server_name)
        assert request.is_attack

    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_attack_config_defined_for_every_server(self, server_name):
        assert isinstance(attack_config_for(server_name), dict)

    def test_unknown_server_attack_rejected(self):
        with pytest.raises(KeyError):
            attack_request_for("nginx")
        with pytest.raises(KeyError):
            attack_config_for("nginx")

    def test_pine_attack_from_field_has_quoted_characters(self):
        message = pine_attack_message(quoted_characters=10)
        assert message["from"].count(b'"') == 10

    def test_sendmail_attack_alternates_ff_and_backslash(self):
        address = sendmail_attack_address(pairs=3)
        assert address[:6] == b"\xff\\\xff\\\xff\\"

    def test_mutt_attack_name_is_control_characters(self):
        name = mutt_attack_folder_name(10)
        assert len(name) == 10 and set(name) == {1}

    def test_mc_attack_archive_has_absolute_symlinks(self):
        entries = midnight_commander_attack_archive(links=4)
        symlinks = [entry for entry in entries if entry.is_symlink]
        assert len(symlinks) == 4
        assert all(entry.target.startswith("/") for entry in symlinks)

    def test_apache_attack_url_matches_vulnerable_rule(self):
        import re

        from repro.servers.apache import VULNERABLE_RULE

        request = attack_request_for("apache")
        assert re.match(VULNERABLE_RULE.pattern, request.payload["url"])
