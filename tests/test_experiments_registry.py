"""Tests for the experiment registry (one entry per paper table/figure)."""

import pytest

from repro.harness.experiments import EXPERIMENTS, ExperimentOutput, run_experiment


EXPECTED_IDS = {
    "fig2", "fig3", "fig4", "fig5", "fig6",
    "tab-security", "exp-throughput", "exp-stability", "exp-soak",
    "exp-fleet", "exp-variants", "exp-propagation",
}


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    @pytest.mark.parametrize("figure_id", ["fig2", "fig3", "fig4", "fig5", "fig6"])
    def test_figures_run_and_produce_tables(self, figure_id):
        output = run_experiment(figure_id, repetitions=3, scale=0.1)
        assert isinstance(output, ExperimentOutput)
        assert "Slowdown" in output.table
        assert output.data  # FigureRow list

    def test_security_experiment(self):
        output = run_experiment("tab-security", scale=0.1)
        assert "failure-oblivious" in output.table
        assert len(output.data["cells"]) == 15  # 5 servers x 3 builds

    def test_throughput_experiment(self):
        output = run_experiment("exp-throughput", total_requests=60, pool_size=2)
        assert output.data["fo_over_bc"] > 1.0
        assert output.data["fo_over_std"] > 1.0

    def test_stability_experiment(self):
        output = run_experiment("exp-stability", total_requests=30, attack_every=10, scale=0.1)
        assert all(result.flawless for result in output.data.values())

    def test_variants_experiment(self):
        output = run_experiment("exp-variants", scale=0.1)
        assert output.data["survived"]["boundless"]
        assert output.data["survived"]["redirect"]

    def test_propagation_experiment(self):
        output = run_experiment("exp-propagation", total_requests=16, attack_every=8, scale=0.1)
        assert all(report.short_propagation for report in output.data.values())

    def test_output_str_includes_notes(self):
        output = run_experiment("fig3", repetitions=3, scale=0.1)
        assert "Slowdown" in str(output)
