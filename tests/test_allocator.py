"""Tests for the heap allocator and its smashable metadata."""

import pytest

from repro.errors import DoubleFree, HeapCorruption
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import HEADER_SIZE, HeapAllocator
from repro.memory.object_table import ObjectTable


@pytest.fixture
def heap():
    space = AddressSpace(heap_size=64 * 1024)
    table = ObjectTable()
    return space, table, HeapAllocator(space, table)


class TestAllocation:
    def test_malloc_registers_unit(self, heap):
        space, table, allocator = heap
        unit = allocator.malloc(32, name="buf")
        assert table.find(unit.base) is unit
        assert unit.size == 32

    def test_allocations_do_not_overlap(self, heap):
        _, _, allocator = heap
        units = [allocator.malloc(24) for _ in range(20)]
        ranges = sorted((u.base, u.end) for u in units)
        for (base_a, end_a), (base_b, _end_b) in zip(ranges, ranges[1:]):
            assert end_a <= base_b

    def test_user_data_does_not_overlap_headers(self, heap):
        _, _, allocator = heap
        a = allocator.malloc(16)
        b = allocator.malloc(16)
        assert b.base - a.end >= HEADER_SIZE

    def test_calloc_zeroes_recycled_memory(self, heap):
        space, _, allocator = heap
        dirty = allocator.malloc(32)
        space.fill(dirty.base, 0xFF, 32)
        allocator.free(dirty)
        unit = allocator.calloc(4, 8)
        assert unit.base == dirty.base  # recycled the dirty chunk
        assert space.read(unit.base, 32) == b"\x00" * 32

    def test_zero_byte_malloc(self, heap):
        _, _, allocator = heap
        unit = allocator.malloc(0)
        assert unit.size > 0

    def test_negative_malloc_rejected(self, heap):
        _, _, allocator = heap
        with pytest.raises(ValueError):
            allocator.malloc(-1)

    def test_heap_exhaustion(self):
        space = AddressSpace(heap_size=256)
        allocator = HeapAllocator(space, ObjectTable())
        with pytest.raises(MemoryError):
            for _ in range(100):
                allocator.malloc(64)

    def test_counters(self, heap):
        _, _, allocator = heap
        unit = allocator.malloc(8)
        allocator.free(unit)
        assert allocator.allocations == 1
        assert allocator.frees == 1


class TestFree:
    def test_free_unregisters(self, heap):
        _, table, allocator = heap
        unit = allocator.malloc(16)
        allocator.free(unit)
        assert table.find(unit.base) is None
        assert not unit.alive

    def test_double_free_detected(self, heap):
        _, _, allocator = heap
        unit = allocator.malloc(16)
        allocator.free(unit)
        with pytest.raises(DoubleFree):
            allocator.free(unit)

    def test_freed_chunk_is_reused(self, heap):
        _, _, allocator = heap
        unit = allocator.malloc(16)
        base = unit.base
        allocator.free(unit)
        again = allocator.malloc(12)
        assert again.base == base

    def test_free_non_heap_unit_rejected(self, heap):
        _, _, allocator = heap
        from repro.memory.data_unit import UnitKind, make_unit

        stack_unit = make_unit(name="local", base=0x7000_0000, size=8, kind=UnitKind.STACK)
        with pytest.raises(ValueError):
            allocator.free(stack_unit)

    def test_live_allocation_tracking(self, heap):
        _, _, allocator = heap
        a = allocator.malloc(8)
        allocator.malloc(8)
        allocator.free(a)
        assert len(allocator.live_allocations()) == 1
        assert allocator.live_bytes() == 8


class TestRealloc:
    def test_realloc_grows_and_copies(self, heap):
        space, _, allocator = heap
        unit = allocator.malloc(8)
        space.write(unit.base, b"ABCDEFGH")
        bigger = allocator.realloc(unit, 32)
        assert space.read(bigger.base, 8) == b"ABCDEFGH"
        assert bigger.size == 32
        assert not unit.alive

    def test_realloc_shrinks(self, heap):
        space, _, allocator = heap
        unit = allocator.malloc(16)
        space.write(unit.base, b"0123456789abcdef")
        smaller = allocator.realloc(unit, 4)
        assert space.read(smaller.base, 4) == b"0123"

    def test_realloc_none_behaves_like_malloc(self, heap):
        _, _, allocator = heap
        unit = allocator.realloc(None, 24)
        assert unit.size == 24


class TestCorruptionDetection:
    def test_overflow_into_next_header_detected_on_free(self, heap):
        space, _, allocator = heap
        victim = allocator.malloc(16)
        neighbour = allocator.malloc(16)
        # Unchecked overflow: smash the neighbour's header directly.
        space.write(victim.end, b"A" * HEADER_SIZE)
        with pytest.raises(HeapCorruption):
            allocator.free(neighbour)

    def test_overflow_into_top_chunk_detected_by_next_malloc(self, heap):
        space, _, allocator = heap
        last = allocator.malloc(16)
        space.write(last.end, b"B" * HEADER_SIZE)
        with pytest.raises(HeapCorruption):
            allocator.malloc(16)

    def test_verify_heap_walks_all_chunks(self, heap):
        space, _, allocator = heap
        a = allocator.malloc(16)
        allocator.malloc(16)
        space.write(a.end, b"C" * 4)
        with pytest.raises(HeapCorruption):
            allocator.verify_heap()

    def test_verify_heap_clean(self, heap):
        _, _, allocator = heap
        allocator.malloc(16)
        allocator.malloc(32)
        allocator.verify_heap()  # must not raise
