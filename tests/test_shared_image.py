"""Shared-memory image lifecycle: sharing is invisible, cleanup is guaranteed.

The fleet scheduler and the Apache pre-fork pool place template checkpoint
payloads in ``multiprocessing.shared_memory`` so clones restore from one
shared copy.  Two things must hold:

* sharing never changes what a restore produces (bit-identical payloads); and
* the ``/dev/shm`` segments are always released — on normal completion, on
  an exception mid-run, and even when a pool worker is killed outright.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.policies import FailureObliviousPolicy
from repro.fleet import scheduler
from repro.fleet.scheduler import InstanceSpec, run_fleet
from repro.memory.context import MemoryContext
from repro.memory.shared_image import SharedImageStore
from repro.servers.apache import ChildProcessPool
from repro.workloads.attacks import apache_vulnerable_config

SHM_DIR = "/dev/shm"


def _shm_entries() -> set:
    """Current /dev/shm entries (empty set when the platform has none)."""
    try:
        return set(os.listdir(SHM_DIR))
    except OSError:
        return set()


def _supports_shm() -> bool:
    return os.path.isdir(SHM_DIR)


class TestSharedImageStore:
    def test_shared_restore_is_bit_identical(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        buf = ctx.malloc(64)
        ctx.mem.write(buf, b"template state, to be cloned")
        image = ctx.checkpoint()
        with SharedImageStore() as store:
            shared = store.share_image(image)
            ctx.mem.write(buf, b"scribbled over by the clone!")
            ctx.restore(shared)
            assert ctx.mem.read(buf, 28) == b"template state, to be cloned"

    def test_share_space_payloads_equal_original(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        buf = ctx.malloc(32)
        ctx.mem.write(buf, b"payload bytes")
        cp = ctx.space.checkpoint()
        with SharedImageStore() as store:
            shared = store.share_space(cp)
            for (name, base, contents), (sname, sbase, scontents) in zip(
                cp.segments, shared.segments
            ):
                assert (name, base) == (sname, sbase)
                assert bytes(scontents) == bytes(contents)
                assert isinstance(scontents, memoryview) and scontents.readonly

    @pytest.mark.skipif(not os.path.isdir(SHM_DIR), reason="no /dev/shm")
    def test_close_unlinks_the_segment(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        ctx.malloc(32)
        store = SharedImageStore()
        store.share_image(ctx.checkpoint())
        names = list(store.names)
        assert names and all(
            os.path.exists(os.path.join(SHM_DIR, name)) for name in names
        )
        store.close()
        assert store.closed and not store.active
        for name in names:
            assert not os.path.exists(os.path.join(SHM_DIR, name))
        store.close()  # idempotent

    def test_sharing_an_already_shared_image_passes_through(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        ctx.malloc(16)
        image = ctx.checkpoint()
        with SharedImageStore() as store:
            shared = store.share_image(image)
            assert store.share_image(shared) is shared

    def test_closed_store_passes_images_through(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        image = ctx.checkpoint()
        store = SharedImageStore()
        store.close()
        assert store.share_image(image) is image


class TestPoolAndSchedulerCleanup:
    def test_child_pool_close_releases_template(self):
        before = _shm_entries()
        pool = ChildProcessPool(
            FailureObliviousPolicy, pool_size=2, config=apache_vulnerable_config()
        )
        from repro.servers.base import Request

        pool.dispatch(Request(kind="GET", payload=b"/index.html"))
        pool.close()
        assert _shm_entries() <= before
        # A dispatch after close re-forks through the closed store and still
        # serves; it simply no longer uses shared memory.
        pool.dispatch(Request(kind="GET", payload=b"/index.html"))
        pool.close()
        assert _shm_entries() <= before

    def test_run_fleet_closes_its_store(self):
        before = _shm_entries()
        result = run_fleet(
            [InstanceSpec("apache", "failure-oblivious", count=2)],
            total_requests=40,
            seed=5,
            workers=0,
        )
        assert result.instances
        store = scheduler._LAST_IMAGE_STORE
        assert store is not None and store.closed
        assert _shm_entries() <= before

    @pytest.mark.skipif(not _supports_shm(), reason="no /dev/shm")
    def test_worker_killed_mid_run_leaks_nothing(self, monkeypatch):
        """SIGKILL a pool worker mid-shard: run_fleet raises, /dev/shm stays clean."""
        from concurrent.futures.process import BrokenProcessPool

        def _die(run, shard_index):
            # Runs inside the forked worker (the fork inherits the patched
            # module), so only the pool child dies — never the test process.
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(scheduler, "_run_fleet_shard", _die)
        before = _shm_entries()
        with pytest.raises(BrokenProcessPool):
            run_fleet(
                [InstanceSpec("apache", "failure-oblivious", count=2)],
                total_requests=40,
                seed=5,
                workers=2,
                shards=2,
            )
        store = scheduler._LAST_IMAGE_STORE
        assert store is not None and store.closed
        assert _shm_entries() <= before
