"""Self-healing servers: supervisor semantics, fault injection, forensics.

Covers the recovery subsystem end to end:

* :class:`RecoverySupervisor` unit semantics — snapshot cadence, transient
  retry, poison quarantine, rollback-loop degradation to the boot image,
  virtual-time backoff, and the tally invariant (every fatal attempt's
  ``RequestEnd`` is followed by exactly one ``RollbackPerformed`` carrying
  that request id);
* :class:`FaultInjector` determinism and the retries-never-fault rule;
* shared-memory delta chains readable zero-copy from a forked child;
* the forensics snapshot format (save/load/diff round trip, dirtied blocks
  of a known attack) and its CLI;
* the acceptance soak: a fault-injected fleet of ≥10k requests across two
  servers (one of them a compiled mini-C program) × two policies with full
  availability for legitimate traffic and
  worker-invariant tallies.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main as cli_main
from repro.fleet.scheduler import InstanceSpec, run_fleet
from repro.harness.engine import ENGINE
from repro.recovery import (
    FAULT_KINDS,
    FaultInjector,
    RecoveryPolicy,
    RecoverySupervisor,
    diff_snapshots,
    load_snapshot,
    save_snapshot,
)
from repro.telemetry.events import (
    RequestEnd,
    RequestQuarantined,
    RollbackPerformed,
    SnapshotTaken,
)
from repro.telemetry.sinks import ListSink


def _supervised(server_name, policy_name, *, recovery=None, injector=None,
                plant_attack=False):
    server = ENGINE.build_server(
        server_name, policy_name, plant_attack=plant_attack, scale=0.25
    )
    boot = server.start()
    assert not boot.fatal, f"{server_name}/{policy_name} must boot for this test"
    recorder = server.ctx.bus.attach(ListSink())
    supervisor = RecoverySupervisor(server, recovery, injector=injector)
    return server, supervisor, recorder


def _benign(profile, index):
    return profile.make_request(profile.figure_rows[0], index=index)


class TestSupervisorSemantics:
    def test_snapshot_cadence_counts_successes_only(self):
        server, sup, recorder = _supervised(
            "apache", "failure-oblivious",
            recovery=RecoveryPolicy(snapshot_every=4),
        )
        profile = ENGINE.profile("apache")
        for i in range(9):
            result = sup.submit(_benign(profile, i))
            assert result.acceptable
        assert sup.snapshots_taken == 2
        taken = [e for e in recorder.events if isinstance(e, SnapshotTaken)]
        assert [e.index for e in taken] == [1, 2]
        # Snapshots are deltas: each carries only the blocks dirtied since
        # the previous one, never the whole address space.
        total = sum(len(s.data) for s in server.ctx.space.segments())
        assert all(0 < e.delta_bytes < total for e in taken)

    def test_transient_fault_is_retried_and_served(self):
        """An abort on the first attempt rolls back and the retry (never
        faulted) serves the request — no quarantine, no lost work."""
        injector = FaultInjector(seed=7, every=1, kinds=("abort",))
        server, sup, recorder = _supervised(
            "apache", "failure-oblivious",
            recovery=RecoveryPolicy(snapshot_every=100),
            injector=injector,
        )
        profile = ENGINE.profile("apache")
        for i in range(5):
            result = sup.submit(_benign(profile, i))
            assert result.acceptable and not result.fatal
        assert injector.injected == 5
        assert sup.rollbacks == 5
        assert sup.retried_ok == 5
        assert sup.quarantined == 0
        assert server.alive

    def test_poison_request_is_quarantined_and_server_keeps_serving(self):
        """A deterministically fatal request (a bounds-check attack) burns its
        retry budget and is quarantined; the server survives it."""
        server, sup, recorder = _supervised(
            "apache", "bounds-check",
            recovery=RecoveryPolicy(snapshot_every=8, retry_budget=1),
            plant_attack=True,
        )
        profile = ENGINE.profile("apache")
        for i in range(4):
            assert sup.submit(_benign(profile, i)).acceptable
        result = sup.submit(profile.make_attack_request())
        assert result.fatal  # the last attempt's result is returned verbatim
        assert sup.quarantined == 1
        assert sup.rollbacks == 2  # one per fatal attempt
        quarantines = [e for e in recorder.events
                       if isinstance(e, RequestQuarantined)]
        assert len(quarantines) == 1 and quarantines[0].attempts == 2
        assert quarantines[0].is_attack
        # The rollback restored pre-attack state: service continues.
        assert server.alive
        for i in range(4):
            assert sup.submit(_benign(profile, i)).acceptable

    def test_rollback_loop_degrades_to_boot_image(self):
        """Enough consecutive recoveries without progress abandon the
        snapshot chain (it may have captured poisoned state) and restart
        from the boot image with a fresh stream."""
        server, sup, recorder = _supervised(
            "apache", "bounds-check",
            recovery=RecoveryPolicy(snapshot_every=8, retry_budget=5,
                                    loop_threshold=3),
            plant_attack=True,
        )
        old_stream = sup.stream
        profile = ENGINE.profile("apache")
        result = sup.submit(profile.make_attack_request())
        assert result.fatal and sup.quarantined == 1
        # 6 fatal attempts with loop_threshold=3: recoveries 3 and 6 degrade.
        assert sup.boot_restarts == 2
        assert sup.rollbacks == 4
        assert sup.stream is not old_stream and len(sup.stream) == 1
        boot_events = [e for e in recorder.events
                       if isinstance(e, RollbackPerformed) and e.to_boot_image]
        assert len(boot_events) == 2
        assert all(e.snapshot_index == 0 for e in boot_events)
        assert sup.submit(_benign(profile, 0)).acceptable

    def test_every_fatal_attempt_emits_one_rollback_with_its_request_id(self):
        """The tally invariant ``fleet report`` depends on: fatal RequestEnd
        events and RollbackPerformed events pair up 1:1 by request id."""
        injector = FaultInjector(seed=11, every=3)
        server, sup, recorder = _supervised(
            "apache", "failure-oblivious",
            recovery=RecoveryPolicy(snapshot_every=6),
            injector=injector,
        )
        profile = ENGINE.profile("apache")
        for i in range(24):
            sup.submit(_benign(profile, i))
        from repro.errors import FATAL_OUTCOMES

        fatal = {outcome.value for outcome in FATAL_OUTCOMES}
        fatal_ends = [e for e in recorder.events
                      if isinstance(e, RequestEnd) and e.outcome in fatal]
        rollbacks = [e for e in recorder.events
                     if isinstance(e, RollbackPerformed)]
        assert fatal_ends, "expected the injector to kill some attempts"
        assert sorted(e.request_id for e in fatal_ends) == sorted(
            e.request_id for e in rollbacks
        )
        # And pairing is positional too: each fatal end's next recovery
        # event carries its id.
        stream = [e for e in recorder.events
                  if isinstance(e, (RequestEnd, RollbackPerformed))]
        for pos, event in enumerate(stream):
            if isinstance(event, RequestEnd) and event.outcome in fatal:
                follower = stream[pos + 1]
                assert isinstance(follower, RollbackPerformed)
                assert follower.request_id == event.request_id

    def test_virtual_backoff_is_exponential_and_never_sleeps(self):
        server, sup, _ = _supervised(
            "apache", "bounds-check",
            recovery=RecoveryPolicy(snapshot_every=8, retry_budget=2,
                                    backoff_base=0.5, backoff_factor=3.0),
            plant_attack=True,
        )
        profile = ENGINE.profile("apache")
        sup.submit(profile.make_attack_request())
        # Attempts 1..3 fatal: 0.5 + 1.5 + 4.5 virtual seconds, no wall time.
        assert sup.virtual_backoff_seconds == pytest.approx(6.5)

    def test_supervision_requires_a_started_live_server(self):
        server = ENGINE.build_server("apache", "failure-oblivious")
        with pytest.raises(ValueError, match="started, live"):
            RecoverySupervisor(server)

    def test_processing_behind_the_supervisors_back_is_detected(self):
        server, sup, _ = _supervised(
            "apache", "failure-oblivious",
            recovery=RecoveryPolicy(snapshot_every=1),
        )
        profile = ENGINE.profile("apache")
        server.ctx.checkpoint()  # desynchronizes the delta chain
        with pytest.raises(ValueError, match="behind the stream's back"):
            sup.submit(_benign(profile, 0))


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(seed=42, rate=0.3)
        b = FaultInjector(seed=42, rate=0.3)
        for injector in (a, b):
            server, sup, _ = _supervised(
                "apache", "failure-oblivious",
                recovery=RecoveryPolicy(snapshot_every=50),
                injector=injector,
            )
            profile = ENGINE.profile("apache")
            for i in range(30):
                sup.submit(_benign(profile, i))
        assert a.decisions == b.decisions == 30
        assert a.injected == b.injected > 0

    def test_alloc_fail_faults_are_fatal_then_recovered(self):
        injector = FaultInjector(seed=3, every=4, kinds=("alloc-fail",))
        server, sup, _ = _supervised(
            "apache", "failure-oblivious",
            recovery=RecoveryPolicy(snapshot_every=50),
            injector=injector,
        )
        profile = ENGINE.profile("apache")
        for i in range(12):
            assert sup.submit(_benign(profile, i)).acceptable
        assert injector.injected == 3
        assert sup.rollbacks == 3

    def test_corrupt_faults_are_caught_by_the_heap_walk(self):
        injector = FaultInjector(seed=5, every=4, kinds=("corrupt",))
        server, sup, _ = _supervised(
            "apache", "failure-oblivious",
            recovery=RecoveryPolicy(snapshot_every=50),
            injector=injector,
        )
        profile = ENGINE.profile("apache")
        for i in range(12):
            assert sup.submit(_benign(profile, i)).acceptable
        assert injector.injected == 3
        assert sup.rollbacks > 0

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultInjector(seed=0, kinds=("segfault",))
        assert set(FAULT_KINDS) == {"abort", "alloc-fail", "corrupt"}


class TestSharedStreamAcrossFork:
    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_forked_child_reads_delta_payloads_zero_copy(self):
        """A delta chain whose payloads live in a SharedImageStore is
        readable from a forked child through the inherited mapping — the
        forensics workflow for live fleets."""
        from repro.core.policies import FailureObliviousPolicy
        from repro.memory.checkpoint_stream import CheckpointStream
        from repro.memory.context import MemoryContext
        from repro.memory.shared_image import SharedImageStore

        ctx = MemoryContext(FailureObliviousPolicy())
        with SharedImageStore() as store:
            stream = CheckpointStream(ctx, store=store)
            buf = ctx.malloc(64, name="shared")
            ctx.mem.write(buf, b"written before snapshot one!")
            stream.snapshot()
            expected = {
                name: contents
                for name, _base, contents in stream.space_checkpoint(1).segments
            }
            # Shared payloads arrive as readonly shm-backed memoryviews.
            assert any(
                isinstance(payload, memoryview)
                for _name, entries in stream.deltas[0].space.blocks
                for _block, payload in entries
            )
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:  # child
                try:
                    os.close(read_fd)
                    materialized = {
                        name: contents
                        for name, _base, contents in
                        stream.space_checkpoint(1).segments
                    }
                    ok = all(
                        bytes(materialized[name]) == bytes(expected[name])
                        for name in expected
                    )
                    os.write(write_fd, b"ok" if ok else b"no")
                finally:
                    os._exit(0)
            os.close(write_fd)
            try:
                verdict = os.read(read_fd, 2)
            finally:
                os.close(read_fd)
                os.waitpid(pid, 0)
            assert verdict == b"ok"


class TestForensics:
    def _attack_snapshots(self, tmp_path):
        server = ENGINE.build_server(
            "pine", "failure-oblivious", plant_attack=True, scale=0.25
        )
        assert not server.start().fatal
        profile = ENGINE.profile("pine")
        for request in profile.make_follow_ups():
            server.process(request)
        before = tmp_path / "before.snap"
        after = tmp_path / "after.snap"
        save_snapshot(str(before), server.ctx.space.checkpoint(),
                      label="pine pre-attack")
        server.process(profile.make_attack_request())
        save_snapshot(str(after), server.ctx.space.checkpoint(),
                      label="pine post-attack")
        return before, after

    def test_save_load_round_trip(self, tmp_path):
        before, _after = self._attack_snapshots(tmp_path)
        checkpoint, label = load_snapshot(str(before))
        assert label == "pine pre-attack"
        names = {name for name, _base, _data in checkpoint.segments}
        assert {"globals", "heap", "stack"} <= names

    def test_diff_reports_the_attacks_dirtied_blocks(self, tmp_path):
        """Acceptance: the forensics diff of pre/post-attack snapshots
        pinpoints the heap blocks the overflow dirtied."""
        before, after = self._attack_snapshots(tmp_path)
        cp_a, _ = load_snapshot(str(before))
        cp_b, _ = load_snapshot(str(after))
        diff = diff_snapshots(cp_a, cp_b)
        assert diff.changed_blocks > 0
        assert diff.changed_bytes > 0
        assert any(name == "heap" and blocks
                   for name, _base, blocks in diff.segments)

    def test_identical_snapshots_diff_empty(self, tmp_path):
        before, _after = self._attack_snapshots(tmp_path)
        cp, _ = load_snapshot(str(before))
        diff = diff_snapshots(cp, cp)
        assert diff.changed_blocks == 0 and diff.changed_bytes == 0

    def test_forensics_cli_capture_then_diff(self, tmp_path, capsys):
        before = tmp_path / "b.snap"
        after = tmp_path / "a.snap"
        rc = cli_main([
            "forensics", "capture", "pine",
            "--before", str(before), "--after", str(after),
        ])
        assert rc == 0
        assert before.exists() and after.exists()
        capsys.readouterr()
        rc = cli_main(["forensics", "diff", str(before), str(after)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "heap" in out
        assert "block" in out

    def test_forensics_diff_rejects_non_snapshot_files(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-snapshot.bin"
        bogus.write_bytes(b"definitely not repro-snapshot/v1")
        rc = cli_main(["forensics", "diff", str(bogus), str(bogus)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


SOAK_SPECS = [
    InstanceSpec("apache", "failure-oblivious", attack_every=25),
    InstanceSpec("apache", "bounds-check", attack_every=25),
    InstanceSpec("minic-sendmail", "failure-oblivious", attack_every=25),
    InstanceSpec("minic-sendmail", "bounds-check", attack_every=25),
]
SOAK_KW = dict(
    total_requests=10_000,
    seed=13,
    recovery=RecoveryPolicy(snapshot_every=64, retry_budget=1),
    fault_every=101,
)


class TestSelfHealingSoak:
    """The PR's acceptance soak: ≥10k requests, 2 servers × 2 policies,
    faults injected, legitimate availability 1.0, worker-invariant."""

    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_fleet(SOAK_SPECS, workers=0, **SOAK_KW)

    def test_full_availability_for_legitimate_traffic(self, serial_result):
        result = serial_result
        assert result.total_requests >= 10_000
        assert result.faults_injected > 0
        assert result.rollbacks > 0
        for tally in result.instances:
            assert tally.legitimate_served == (
                tally.legitimate_requests - tally.quarantined
            ), (tally.server, tally.policy, tally.index)
            assert tally.availability == 1.0, (tally.server, tally.policy, tally.index)

    def test_bounds_check_quarantines_attacks_and_survives(self, serial_result):
        for server in ("apache", "minic-sendmail"):
            bc = next(t for t in serial_result.instances
                      if t.server == server and t.policy == "bounds-check")
            fo = next(t for t in serial_result.instances
                      if t.server == server and t.policy == "failure-oblivious")
            # Bounds-check turns every attack into quarantined poison...
            assert bc.quarantined_attacks > 0
            assert bc.attacks_survived == 0
            # ...while failure-oblivious absorbs them and keeps going.
            assert fo.attacks_survived > 0
            assert fo.quarantined_attacks == 0

    def test_snapshots_follow_the_cadence(self, serial_result):
        for tally in serial_result.instances:
            assert tally.snapshots > 0, (tally.server, tally.policy, tally.index)

    def test_pooled_soak_is_bit_identical_to_serial(self, serial_result):
        pooled = run_fleet(SOAK_SPECS, workers=4, **SOAK_KW)
        assert [t.as_dict() for t in pooled.instances] == [
            t.as_dict() for t in serial_result.instances
        ]
