"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.harness.experiments import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(EXPERIMENTS)


class TestRun:
    def test_runs_a_figure(self, capsys):
        assert main(["run", "fig3", "--repetitions", "3"]) == 0
        out = capsys.readouterr().out
        assert "Slowdown" in out

    def test_runs_the_security_matrix(self, capsys):
        assert main(["run", "tab-security"]) == 0
        out = capsys.readouterr().out
        assert "failure-oblivious" in out

    def test_unknown_experiment_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])


class TestAttack:
    def test_failure_oblivious_attack_scenario_succeeds(self, capsys):
        assert main(["attack", "apache", "--policy", "failure-oblivious"]) == 0
        out = capsys.readouterr().out
        assert "continued service : yes" in out

    def test_standard_attack_scenario_reports_failure(self, capsys):
        assert main(["attack", "apache", "--policy", "standard"]) == 0
        out = capsys.readouterr().out
        assert "survived attack   : no" in out

    def test_unknown_server_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "nginx"])
