"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.harness.experiments import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(EXPERIMENTS)


class TestRun:
    def test_runs_a_figure(self, capsys):
        assert main(["run", "fig3", "--repetitions", "3"]) == 0
        out = capsys.readouterr().out
        assert "Slowdown" in out

    def test_runs_the_security_matrix(self, capsys):
        assert main(["run", "tab-security"]) == 0
        out = capsys.readouterr().out
        assert "failure-oblivious" in out

    def test_unknown_experiment_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])


class TestAttack:
    def test_failure_oblivious_attack_scenario_succeeds(self, capsys):
        assert main(["attack", "apache", "--policy", "failure-oblivious"]) == 0
        out = capsys.readouterr().out
        assert "continued service : yes" in out

    def test_standard_attack_scenario_reports_failure(self, capsys):
        assert main(["attack", "apache", "--policy", "standard"]) == 0
        out = capsys.readouterr().out
        assert "survived attack   : no" in out

    def test_unknown_server_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "nginx"])


MINIC_DEMO = """
char buf[16];

int copy(char *src) {
    char *d;
    char *s;
    d = buf;
    s = src;
    while ((*d++ = *s++) != 0) { }
    return d - buf;
}

int main() {
    return copy("a deliberately over-long folder name payload");
}
"""


class TestMinicRun:
    """`repro minic run FILE.c` — compile-and-run with an error-log summary."""

    @staticmethod
    def write_demo(tmp_path):
        path = tmp_path / "demo.c"
        path.write_text(MINIC_DEMO)
        return str(path)

    def test_failure_oblivious_run_summarizes_the_overflow(self, tmp_path, capsys):
        assert main(["minic", "run", self.write_demo(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "build             : failure-oblivious" in out
        assert "span-lowered" in out
        assert "out-of-bounds" in out
        assert "site demo.c:main" in out
        assert "bounds checks" in out

    def test_bounds_check_fault_exits_nonzero(self, tmp_path, capsys):
        code = main(["minic", "run", self.write_demo(tmp_path),
                     "--policy", "bounds-check"])
        assert code == 1
        out = capsys.readouterr().out
        assert "BoundsCheckViolation" in out

    def test_call_with_arguments_and_tree_walk(self, tmp_path, capsys):
        code = main(["minic", "run", self.write_demo(tmp_path),
                     "--policy", "standard", "--call", "copy",
                     "--arg", "short", "--no-lower"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tree-walk (lower=False)" in out
        assert "copy(short) -> 6" in out

    def test_trace_exports_telemetry(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        assert main(["minic", "run", self.write_demo(tmp_path),
                     "--trace", str(trace)]) == 0
        assert trace.exists()
        assert trace.read_text().strip()

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["minic", "run", str(tmp_path / "nope.c")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_compile_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        assert main(["minic", "run", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "compile error" in err
