"""Tests for the propagation, availability, and security analyses."""

import pytest

from repro.analysis.availability import compare_availability
from repro.analysis.propagation import measure_propagation
from repro.analysis.security import assess_security, summarize_by_policy
from repro.harness.runner import run_security_matrix
from repro.workloads.streams import mixed_stream


class TestPropagation:
    def test_failure_oblivious_apache_has_short_propagation(self):
        stream = list(mixed_stream("apache", total_requests=24, attack_every=6))
        report = measure_propagation("apache", "failure-oblivious", stream, scale=0.1)
        assert report.error_requests > 0
        assert report.short_propagation
        assert report.max_control_distance == 0
        assert report.max_data_distance == 0

    def test_failure_oblivious_sendmail_has_short_propagation(self):
        stream = list(mixed_stream("sendmail", total_requests=24, attack_every=6))
        report = measure_propagation("sendmail", "failure-oblivious", stream, scale=0.1)
        assert report.error_requests > 0
        assert report.short_propagation

    def test_standard_apache_has_infinite_control_distance(self):
        stream = list(mixed_stream("apache", total_requests=24, attack_every=6))
        report = measure_propagation("apache", "standard", stream, scale=0.1)
        assert report.error_requests == 0 or report.max_control_distance == float("inf") \
            or report.max_control_distance == 0
        # The Standard build dies at the attack, so either it never logged an
        # error (unchecked builds do not log) or the run ended there.

    def test_report_defaults(self):
        stream = list(mixed_stream("mutt", total_requests=12, attack_every=0))
        report = measure_propagation("mutt", "failure-oblivious", stream, scale=0.1)
        assert report.max_control_distance == 0.0
        assert report.max_data_distance == 0.0


class TestAvailability:
    @pytest.fixture(scope="class")
    def report(self):
        return compare_availability(
            "apache", total_requests=40, attack_every=8, scale=0.1
        )

    def test_failure_oblivious_has_best_availability(self, report):
        assert report.best_policy() == "failure-oblivious"
        assert report.service_rate("failure-oblivious") == 1.0
        assert report.results["failure-oblivious"].server_deaths == 0
        # Apache's regenerating child pool keeps the other builds serving too,
        # but only at the cost of repeated process deaths (§4.3.2, §4.7).
        assert report.results["standard"].server_deaths > 0

    def test_improvement_ratios(self, report):
        assert report.improvement_over("standard") >= 1.0
        assert report.improvement_over("bounds-check") >= 1.0

    def test_summary_rows_one_per_policy(self, report):
        assert len(report.summary_rows()) == 3

    def test_pine_restart_does_not_help(self):
        """Restarting Pine re-reads the poisoned mailbox and dies again (§4.7)."""
        report = compare_availability("pine", policies=("standard", "failure-oblivious"),
                                      total_requests=20, attack_every=5, scale=0.1)
        assert report.service_rate("standard") == 0.0
        assert report.service_rate("failure-oblivious") == 1.0
        assert report.improvement_over("standard") == float("inf")


class TestSecurityAssessment:
    @pytest.fixture(scope="class")
    def assessments(self):
        cells = run_security_matrix(scale=0.1)
        return assess_security(cells=cells)

    def test_failure_oblivious_is_always_invulnerable(self, assessments):
        fo = [a for a in assessments if a.policy == "failure-oblivious"]
        assert len(fo) == 5
        assert all(a.invulnerable and a.continued_service for a in fo)

    def test_standard_is_never_invulnerable(self, assessments):
        std = [a for a in assessments if a.policy == "standard"]
        assert all(not a.invulnerable for a in std)

    def test_bounds_check_denies_service(self, assessments):
        bc = [a for a in assessments if a.policy == "bounds-check"]
        assert all(a.denial_of_service for a in bc)
        assert all(not a.code_execution for a in bc)

    def test_verdict_labels(self, assessments):
        labels = {a.verdict() for a in assessments}
        assert "invulnerable, keeps serving" in labels
        assert "denial of service" in labels

    def test_summary_by_policy(self, assessments):
        summary = summarize_by_policy(assessments)
        assert summary["failure-oblivious"]["invulnerable"] == 5
        assert summary["failure-oblivious"]["continued_service"] == 5
        assert summary["standard"]["denial_of_service"] == 5

    def test_assess_security_can_run_its_own_matrix(self):
        assessments = assess_security(servers=["apache"], policies=("failure-oblivious",), scale=0.1)
        assert len(assessments) == 1
