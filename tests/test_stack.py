"""Tests for the simulated call stack and return-slot corruption detection."""

import pytest

from repro.errors import ControlFlowHijack, SegmentationFault
from repro.memory.address_space import AddressSpace
from repro.memory.object_table import ObjectTable
from repro.memory.stack import CallStack, RETURN_SLOT_SIZE


@pytest.fixture
def stack():
    space = AddressSpace(stack_size=4096)
    table = ObjectTable()
    return space, table, CallStack(space, table)


class TestFrames:
    def test_push_pop(self, stack):
        _, _, call_stack = stack
        call_stack.push_frame("f")
        assert call_stack.depth == 1
        call_stack.pop_frame()
        assert call_stack.depth == 0

    def test_alloc_local_registers_unit(self, stack):
        _, table, call_stack = stack
        call_stack.push_frame("f")
        unit = call_stack.alloc_local("buf", 32)
        assert table.find(unit.base) is unit
        call_stack.pop_frame()
        assert table.find(unit.base) is None
        assert not unit.alive

    def test_locals_are_laid_out_consecutively(self, stack):
        _, _, call_stack = stack
        call_stack.push_frame("f")
        a = call_stack.alloc_local("a", 16)
        b = call_stack.alloc_local("b", 8)
        assert b.base == a.end

    def test_return_slot_placed_after_locals(self, stack):
        _, _, call_stack = stack
        frame = call_stack.push_frame("f")
        buf = call_stack.alloc_local("buf", 16)
        call_stack.seal_frame()
        assert frame.return_slot_addr == buf.end

    def test_cannot_alloc_after_seal(self, stack):
        _, _, call_stack = stack
        call_stack.push_frame("f")
        call_stack.seal_frame()
        with pytest.raises(RuntimeError):
            call_stack.alloc_local("late", 8)

    def test_nested_frames_stack_upwards(self, stack):
        _, _, call_stack = stack
        call_stack.push_frame("outer")
        call_stack.alloc_local("a", 16)
        call_stack.seal_frame()
        inner = call_stack.push_frame("inner")
        b = call_stack.alloc_local("b", 8)
        assert b.base >= inner.base
        call_stack.pop_frame()
        call_stack.pop_frame()

    def test_stack_memory_not_cleared_between_frames(self, stack):
        """Uninitialized locals expose stale data — the Midnight Commander bug."""
        space, _, call_stack = stack
        call_stack.push_frame("first")
        a = call_stack.alloc_local("a", 16)
        space.write(a.base, b"STALESTALESTALE!")
        call_stack.pop_frame()
        call_stack.push_frame("second")
        b = call_stack.alloc_local("b", 16)
        assert space.read(b.base, 16) == b"STALESTALESTALE!"
        call_stack.pop_frame()

    def test_stack_exhaustion(self):
        space = AddressSpace(stack_size=128)
        call_stack = CallStack(space, ObjectTable())
        call_stack.push_frame("f")
        with pytest.raises(SegmentationFault):
            call_stack.alloc_local("huge", 4096)

    def test_current_frame_requires_live_frame(self, stack):
        _, _, call_stack = stack
        with pytest.raises(RuntimeError):
            call_stack.current_frame()

    def test_frame_for_unit_and_local_named(self, stack):
        _, _, call_stack = stack
        frame = call_stack.push_frame("f")
        unit = call_stack.alloc_local("buf", 8)
        assert call_stack.frame_for_unit(unit) is frame
        assert frame.local_named("buf") is unit
        assert frame.local_named("missing") is None
        call_stack.pop_frame()


class TestReturnSlotCorruption:
    def test_intact_return_slot_pops_cleanly(self, stack):
        _, _, call_stack = stack
        call_stack.push_frame("f")
        call_stack.alloc_local("buf", 16)
        call_stack.seal_frame()
        call_stack.pop_frame()  # must not raise

    def test_overflow_with_plain_data_causes_segfault(self, stack):
        space, _, call_stack = stack
        call_stack.push_frame("f")
        buf = call_stack.alloc_local("buf", 16)
        call_stack.seal_frame()
        space.write(buf.base, b"\\" * (16 + RETURN_SLOT_SIZE))
        with pytest.raises(SegmentationFault):
            call_stack.pop_frame()

    def test_overflow_with_attack_marker_is_hijack(self, stack):
        space, _, call_stack = stack
        call_stack.push_frame("f")
        buf = call_stack.alloc_local("buf", 16)
        call_stack.seal_frame()
        space.write(buf.base, b"A" * (16 + RETURN_SLOT_SIZE))
        with pytest.raises(ControlFlowHijack):
            call_stack.pop_frame()

    def test_return_slot_intact_helper(self, stack):
        space, _, call_stack = stack
        frame = call_stack.push_frame("f")
        buf = call_stack.alloc_local("buf", 8)
        call_stack.seal_frame()
        assert call_stack.return_slot_intact(frame)
        space.write(buf.end, b"XXXXXXXX")
        assert not call_stack.return_slot_intact(frame)
        with pytest.raises(SegmentationFault):
            call_stack.pop_frame()

    def test_corrupted_frame_still_unwinds(self, stack):
        """Even when pop raises, the frame must be gone so the process can die cleanly."""
        space, _, call_stack = stack
        call_stack.push_frame("f")
        buf = call_stack.alloc_local("buf", 8)
        call_stack.seal_frame()
        space.write(buf.end, b"A" * 8)
        with pytest.raises(ControlFlowHijack):
            call_stack.pop_frame()
        assert call_stack.depth == 0

    def test_unsealed_frame_has_no_return_slot_check(self, stack):
        _, _, call_stack = stack
        call_stack.push_frame("f")
        call_stack.alloc_local("buf", 8)
        call_stack.pop_frame()  # no seal, no check, no exception
