"""Tests for the build-variant policies (the paper's core contribution)."""

import pytest

from repro.core.manufacture import ZeroValueSequence
from repro.core.policies import (
    BoundlessPolicy,
    BoundsCheckPolicy,
    FailureObliviousPolicy,
    POLICY_NAMES,
    RedirectPolicy,
    StandardPolicy,
    make_policy,
)
from repro.core.policy import AccessDecision, DecisionAction
from repro.errors import (
    AccessKind,
    BoundsCheckViolation,
    ErrorKind,
    MemoryErrorEvent,
    UseAfterFree,
)


def oob_event(offset=10, access=AccessKind.WRITE, kind=ErrorKind.OUT_OF_BOUNDS):
    return MemoryErrorEvent(
        kind=kind, access=access, unit_name="u#1", unit_size=8, offset=offset, length=2
    )


class TestStandardPolicy:
    def test_does_not_perform_checks(self):
        assert StandardPolicy().performs_checks is False

    def test_invalid_hooks_pass_through_raw(self):
        policy = StandardPolicy()
        assert policy.on_invalid_write(oob_event(), b"xy").action is DecisionAction.PERFORM_RAW
        assert policy.on_invalid_read(oob_event(access=AccessKind.READ), 2).action is DecisionAction.PERFORM_RAW


class TestBoundsCheckPolicy:
    def test_raises_on_invalid_write(self):
        decision = BoundsCheckPolicy().on_invalid_write(oob_event(), b"xy")
        assert decision.action is DecisionAction.RAISE
        assert isinstance(decision.exception, BoundsCheckViolation)

    def test_raises_on_invalid_read(self):
        decision = BoundsCheckPolicy().on_invalid_read(oob_event(access=AccessKind.READ), 2)
        assert isinstance(decision.exception, BoundsCheckViolation)

    def test_use_after_free_gets_specific_exception(self):
        decision = BoundsCheckPolicy().on_invalid_read(
            oob_event(access=AccessKind.READ, kind=ErrorKind.USE_AFTER_FREE), 1
        )
        assert isinstance(decision.exception, UseAfterFree)

    def test_records_event_in_log(self):
        policy = BoundsCheckPolicy()
        policy.on_invalid_write(oob_event(), b"x")
        assert policy.error_log.total_recorded == 1


class TestFailureObliviousPolicy:
    def test_discards_invalid_writes(self):
        policy = FailureObliviousPolicy()
        decision = policy.on_invalid_write(oob_event(), b"abc")
        assert decision.action is DecisionAction.DISCARD
        assert policy.stats.discarded_bytes == 3

    def test_manufactures_values_for_invalid_reads(self):
        policy = FailureObliviousPolicy()
        decision = policy.on_invalid_read(oob_event(access=AccessKind.READ), 4)
        assert decision.action is DecisionAction.SUPPLY
        assert decision.data == bytes([0, 1, 2, 0])

    def test_manufactured_values_follow_the_paper_sequence(self):
        policy = FailureObliviousPolicy()
        first = policy.on_invalid_read(oob_event(access=AccessKind.READ), 3).data
        second = policy.on_invalid_read(oob_event(access=AccessKind.READ), 3).data
        assert first == bytes([0, 1, 2])
        assert second == bytes([0, 1, 3])

    def test_custom_sequence_is_honoured(self):
        policy = FailureObliviousPolicy(sequence=ZeroValueSequence())
        data = policy.on_invalid_read(oob_event(access=AccessKind.READ), 5).data
        assert data == b"\x00" * 5

    def test_counters_track_reads_and_writes(self):
        policy = FailureObliviousPolicy()
        policy.on_invalid_write(oob_event(), b"ab")
        policy.on_invalid_read(oob_event(access=AccessKind.READ), 1)
        assert policy.stats.invalid_writes == 1
        assert policy.stats.invalid_reads == 1

    def test_events_logged(self):
        policy = FailureObliviousPolicy()
        policy.on_invalid_write(oob_event(), b"ab")
        assert policy.error_log.total_recorded == 1


class TestBoundlessPolicy:
    def test_stored_writes_are_returned_by_reads(self):
        policy = BoundlessPolicy()
        policy.on_invalid_write(oob_event(offset=10), b"XY")
        decision = policy.on_invalid_read(oob_event(offset=10, access=AccessKind.READ), 2)
        assert decision.data == b"XY"

    def test_unwritten_bytes_are_manufactured(self):
        policy = BoundlessPolicy()
        decision = policy.on_invalid_read(oob_event(offset=40, access=AccessKind.READ), 2)
        assert decision.data == bytes([0, 1])

    def test_partial_overlap_mixes_stored_and_manufactured(self):
        policy = BoundlessPolicy()
        policy.on_invalid_write(oob_event(offset=10), b"Z")
        decision = policy.on_invalid_read(oob_event(offset=10, access=AccessKind.READ), 2)
        assert decision.data[0:1] == b"Z"

    def test_stored_bytes_counter(self):
        policy = BoundlessPolicy()
        policy.on_invalid_write(oob_event(offset=10), b"hello")
        assert policy.stored_bytes() == 5

    def test_store_capacity_degrades_to_discard(self):
        policy = BoundlessPolicy(max_stored_bytes=4)
        policy.on_invalid_write(oob_event(offset=0), b"abcd")
        policy.on_invalid_write(oob_event(offset=100), b"efgh")
        # Second write exceeded the cap and was discarded rather than stored.
        read = policy.on_invalid_read(oob_event(offset=100, access=AccessKind.READ), 1)
        assert read.data != b"e"

    def test_overwriting_stored_offsets_consumes_no_extra_capacity(self):
        policy = BoundlessPolicy(max_stored_bytes=4)
        for _ in range(10):
            policy.on_invalid_write(oob_event(offset=0), b"abcd")
        # Ten overwrites of the same four offsets still fit in a 4-byte store.
        policy.on_invalid_write(oob_event(offset=0), b"WXYZ")
        read = policy.on_invalid_read(oob_event(offset=0, access=AccessKind.READ), 4)
        assert read.data == b"WXYZ"
        assert policy.stored_bytes() == 4

    def test_overwrites_do_not_double_count_stored_bytes_stat(self):
        policy = BoundlessPolicy()
        policy.on_invalid_write(oob_event(offset=0), b"abcd")
        policy.on_invalid_write(oob_event(offset=0), b"WXYZ")
        policy.on_invalid_write(oob_event(offset=2), b"1234")
        # 4 fresh offsets, then 0 fresh, then 2 fresh (offsets 4 and 5).
        assert policy.stats.stored_out_of_bounds_bytes == 6
        assert policy.stored_bytes() == 6


class TestRedirectPolicy:
    def test_redirects_out_of_bounds_offsets_into_unit(self):
        policy = RedirectPolicy()
        decision = policy.on_invalid_write(oob_event(offset=10), b"x")
        assert decision.action is DecisionAction.REDIRECT
        assert decision.redirect_offset == 10 % 8

    def test_redirect_read(self):
        policy = RedirectPolicy()
        decision = policy.on_invalid_read(oob_event(offset=9, access=AccessKind.READ), 1)
        assert decision.redirect_offset == 1

    def test_use_after_free_falls_back_to_oblivious(self):
        policy = RedirectPolicy()
        decision = policy.on_invalid_read(
            oob_event(access=AccessKind.READ, kind=ErrorKind.USE_AFTER_FREE), 2
        )
        assert decision.action is DecisionAction.SUPPLY


class TestRegistry:
    def test_registry_contains_all_five_policies(self):
        assert set(POLICY_NAMES) == {
            "standard", "bounds-check", "failure-oblivious", "boundless", "redirect"
        }

    @pytest.mark.parametrize("name", sorted(POLICY_NAMES))
    def test_make_policy_instantiates(self, name):
        policy = make_policy(name)
        assert policy.name == name

    def test_make_policy_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("no-such-policy")

    def test_statistics_reset(self):
        policy = FailureObliviousPolicy()
        policy.on_invalid_write(oob_event(), b"x")
        policy.reset_statistics()
        assert policy.stats.invalid_writes == 0

    def test_describe_mentions_checking(self):
        assert "checks=off" in StandardPolicy().describe()
        assert "checks=on" in FailureObliviousPolicy().describe()

    def test_decision_constructors(self):
        assert AccessDecision.discard().action is DecisionAction.DISCARD
        assert AccessDecision.supply(b"x").data == b"x"
        assert AccessDecision.redirect(3).redirect_offset == 3
        assert AccessDecision.perform_raw().action is DecisionAction.PERFORM_RAW

    def test_stats_as_dict_keys(self):
        stats = FailureObliviousPolicy().stats.as_dict()
        assert "checks_performed" in stats and "manufactured_values" in stats
