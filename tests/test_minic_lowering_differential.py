"""Differential suite: span-lowered mini-C versus the tree-walk reference.

``compile_program(source, lower=True)`` rewrites the recognized scanner,
copy, and fill loops onto the accessor's span fast path; ``lower=False``
keeps the frozen per-byte tree-walk.  The two builds must be *observably
identical* under every access policy for everything a program or the
paper's evaluation can see: returned values, interpreter output, the final
memory image of every segment, the error-log event stream and its whole
query surface, the policy's continuation statistics, and the stream-level
telemetry aggregates.  The single intentional exception is
``checks_performed`` — the fast path pays one policy decision per span or
invalid run instead of per byte, which is the documented invariant change.

Hypothesis drives randomized programs through both builds, including the
interesting regimes: out-of-bounds continuation (overflowing fills and
copies, unterminated scans), use-after-free walks, and the redirect
policy's wraparound arithmetic at unit edges.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryFault
from repro.memory.pointer import FatPointer
from repro.minic import interpreter as minic_interpreter
from repro.minic.interpreter import TypedPointer
from repro.minic.lower import compile_program, lowered_count
from repro.telemetry.sinks import CounterSink
from tests.conftest import POLICY_CLASSES

POLICY_NAMES = sorted(POLICY_CLASSES)


# -- comparison plumbing -------------------------------------------------------


def _normalize_event(event):
    """Comparable identity of one error-log event across twin contexts."""
    return (
        event.kind, event.access, event.offset, event.length, event.site,
        event.unit_name.split("#")[0], event.unit_size,
    )


def _normalize_result(value):
    """Make return values comparable across twin contexts."""
    if isinstance(value, TypedPointer):
        if value.pointer.is_null:
            return ("ptr", None)
        # Twin contexts are laid out identically, so the absolute address
        # is the pointer's cross-context identity.
        return ("ptr", value.pointer.address)
    if isinstance(value, FatPointer):
        return ("ptr", None if value.is_null else value.address)
    return value


def _observe(instance, outcome):
    """Everything a program can observe after one mini-C call."""
    ctx = instance.ctx
    stats = ctx.policy.stats.as_dict()
    stats.pop("checks_performed")
    log = ctx.error_log
    sequence = getattr(ctx.policy, "sequence", None)
    counters = instance.observed_counters
    return {
        "outcome": outcome,
        "output": bytes(instance.output),
        "segments": [bytes(segment.data) for segment in ctx.space.segments()],
        "events": [_normalize_event(event) for event in log.events()],
        "stats": stats,
        "log_total": log.total_recorded,
        "log_dropped": log.dropped,
        "log_by_site": log.count_by_site(),
        "log_by_kind": log.count_by_kind(),
        "log_reads": log.count_reads(),
        "log_writes": log.count_writes(),
        "log_summary": log.summary(),
        "counters": {
            "by_type": counters.by_type,
            "invalid_total": counters.invalid_total,
            "invalid_by_site": counters.invalid_by_site,
            "invalid_by_kind": counters.invalid_by_kind,
            "invalid_by_access": counters.invalid_by_access,
            "manufactured_bytes": counters.manufactured_bytes,
            "discarded_bytes": counters.discarded_bytes,
            "stored_bytes": counters.stored_bytes,
            "redirected_accesses": counters.redirected_accesses,
        },
        "sequence_produced": sequence.produced if sequence is not None else None,
    }


def _run_build(source, lower, policy_name, calls):
    """Compile one build, run the call list, and return the observation."""
    program = compile_program(source, lower=lower)
    if lower:
        assert lowered_count(program.unit) > 0, "template produced nothing to lower"
    instance = program.instantiate(POLICY_CLASSES[policy_name]())
    instance.observed_counters = instance.ctx.bus.attach(CounterSink())
    results = []
    try:
        for function, args in calls:
            results.append(_normalize_result(instance.call(function, *args)))
        outcome = ("ok", results)
    except MemoryFault as fault:
        outcome = ("fault", type(fault).__name__, results)
    return _observe(instance, outcome)


def _assert_equivalent(source, policy_name, calls):
    """The span-lowered build must be observably identical to the tree-walk."""
    reference = _run_build(source, False, policy_name, calls)
    fast = _run_build(source, True, policy_name, calls)
    assert fast == reference


# -- strategies ----------------------------------------------------------------

policies = st.sampled_from(POLICY_NAMES)
sizes = st.integers(min_value=1, max_value=48)
bytes_values = st.integers(min_value=1, max_value=255)
counts = st.integers(min_value=0, max_value=96)


# -- program templates ---------------------------------------------------------

SCANNER_SOURCE = """
char buf[{size}];

int prepare(int n, int c) {{
    int i;
    for (i = 0; i < n; i++) {{ buf[i] = c; }}
    return n;
}}

int terminate(int at) {{
    buf[at] = 0;
    return at;
}}

int scan_plain() {{
    char *p;
    p = buf;
    while (*p) p++;
    return p - buf;
}}

int scan_consume() {{
    char *p;
    int c;
    p = buf;
    while ((c = *p++) != 0) {{ }}
    return p - buf;
}}
"""

COPY_SOURCE = """
char src[{src_size}];
char dst[{dst_size}];

int seed(int n, int c) {{
    int i;
    for (i = 0; i < n; i++) {{ src[i] = c; }}
    return n;
}}

int terminate(int at) {{
    src[at] = 0;
    return at;
}}

int copy() {{
    char *d;
    char *s;
    d = dst;
    s = src;
    while ((*d++ = *s++) != 0) {{ }}
    return d - dst;
}}
"""

FILL_SOURCE = """
char buf[{size}];

int fill_while(int n, int c) {{
    char *p;
    p = buf + {start};
    while (n--) *p++ = c;
    return 0;
}}

int fill_for(int n, int c) {{
    int i;
    for (i = 0; i < n; i++) {{ buf[i + {start}] = c; }}
    return n;
}}
"""

UAF_SOURCE = """
int uaf_fill_then_scan(int size, int n, int c) {{
    char *p;
    char *q;
    p = safe_malloc(size);
    free(p);
    q = p;
    while (n--) *q++ = c;
    q = p;
    while (*q) q++;
    return q - p;
}}
"""


class TestScannerLoops:
    """``while (*p) p++`` and ``while ((c = *p++) != 0)`` versus per byte."""

    @settings(max_examples=40, deadline=None)
    @given(policy=policies, size=sizes, fill=counts, value=bytes_values,
           consume=st.booleans(), terminated=st.booleans())
    def test_scan_with_and_without_terminator(self, policy, size, fill, value,
                                              consume, terminated):
        # An over-long fill overflows the global; an unterminated buffer
        # sends the scan past the unit into the policy's OOB continuation.
        fill = min(fill, size + 24)
        calls = [("prepare", (fill, value))]
        if terminated and size:
            calls.append(("terminate", (min(fill, size - 1),)))
        calls.append(("scan_consume" if consume else "scan_plain", ()))
        _assert_equivalent(SCANNER_SOURCE.format(size=size), policy, calls)


class TestCopyLoops:
    """The strcpy idiom ``while ((*d++ = *s++) != 0)`` versus per byte."""

    @settings(max_examples=40, deadline=None)
    @given(policy=policies, src_size=sizes, dst_size=sizes, fill=counts,
           value=bytes_values, terminated=st.booleans())
    def test_copy_including_overflow(self, policy, src_size, dst_size, fill,
                                     value, terminated):
        fill = min(fill, src_size + 16)
        calls = [("seed", (fill, value))]
        if terminated and src_size:
            calls.append(("terminate", (min(fill, src_size - 1),)))
        calls.append(("copy", ()))
        source = COPY_SOURCE.format(src_size=src_size, dst_size=dst_size)
        _assert_equivalent(source, policy, calls)


class TestFillLoops:
    """Counted and indexed fills, including out-of-bounds runs."""

    @settings(max_examples=40, deadline=None)
    @given(policy=policies, size=sizes, start=st.integers(min_value=0, max_value=40),
           count=counts, value=bytes_values, indexed=st.booleans())
    def test_fill_including_overflow(self, policy, size, start, count, value, indexed):
        # ``start`` may begin at or past the unit edge: under the redirect
        # policy that exercises the wraparound arithmetic, under the others
        # the OOB-run batching.
        source = FILL_SOURCE.format(size=size, start=min(start, size + 8))
        function = "fill_for" if indexed else "fill_while"
        _assert_equivalent(source, policy, [(function, (count, value))])


class TestUseAfterFree:
    """Lowered loops walking a freed allocation behave like the tree-walk."""

    @settings(max_examples=25, deadline=None)
    @given(policy=policies, size=sizes, count=counts, value=bytes_values)
    def test_fill_then_scan_after_free(self, policy, size, count, value):
        source = UAF_SOURCE.format()
        _assert_equivalent(source, policy,
                           [("uaf_fill_then_scan", (size, count, value))])


class TestRunawayGuard:
    """A runaway loop hits the same InfiniteLoopGuard on both builds.

    ``LOOP_LIMIT`` is shrunk for the duration: both the tree-walk loop
    counter and the lowered span helpers read the module global at call
    time, so the guard must fire after identical byte counts.
    """

    @pytest.mark.parametrize("policy", ["failure-oblivious", "boundless"])
    def test_negative_count_fill_exhausts_the_budget(self, policy):
        original = minic_interpreter.LOOP_LIMIT
        minic_interpreter.LOOP_LIMIT = 512
        try:
            source = FILL_SOURCE.format(size=8, start=0)
            _assert_equivalent(source, policy, [("fill_while", (-1, 7))])
        finally:
            minic_interpreter.LOOP_LIMIT = original
