"""JSONL serialization round-trips and the fork-pool spill/merge path."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AccessKind, ErrorKind, MemoryErrorEvent, RequestOutcome
from repro.harness.engine import ENGINE, ScenarioSpec
from repro.telemetry import (
    AllocFree,
    Discard,
    EVENT_TYPES,
    FaultInjected,
    InvalidAccess,
    Manufacture,
    Redirect,
    RequestEnd,
    RequestQuarantined,
    RequestStart,
    RollbackPerformed,
    ScenarioEnd,
    ScenarioStart,
    SnapshotTaken,
    TelemetrySession,
    event_name,
    from_record,
    iter_records,
    summarize_jsonl,
    to_record,
)

# ---------------------------------------------------------------------------
# Hypothesis strategies: one per event type, composed into "any event".
# ---------------------------------------------------------------------------

text = st.text(max_size=24)
request_ids = st.none() | st.integers(min_value=0, max_value=10**9)
counts = st.integers(min_value=0, max_value=10**9)
offsets = st.integers(min_value=-(10**9), max_value=10**9)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
outcomes = st.sampled_from([outcome.value for outcome in RequestOutcome])

memory_errors = st.builds(
    MemoryErrorEvent,
    kind=st.sampled_from(ErrorKind),
    access=st.sampled_from(AccessKind),
    unit_name=text,
    unit_size=counts,
    offset=offsets,
    length=counts,
    site=text,
    request_id=request_ids,
)

run_counts = st.integers(min_value=1, max_value=10**6)
strides = st.integers(min_value=-4, max_value=4)

events = st.one_of(
    st.builds(InvalidAccess, error=memory_errors, count=run_counts, stride=strides),
    st.builds(Discard, length=counts, site=text, request_id=request_ids,
              stored=st.booleans(), count=run_counts),
    st.builds(Manufacture, length=counts, site=text, request_id=request_ids,
              count=run_counts),
    st.builds(Redirect, offset=offsets, redirect_offset=offsets, length=counts,
              access=st.sampled_from(["read", "write"]), site=text,
              request_id=request_ids, count=run_counts),
    st.builds(AllocFree, op=st.sampled_from(["malloc", "free"]), unit_name=text,
              size=counts, base=counts, request_id=request_ids),
    st.builds(RequestStart, request_id=counts, kind=text, is_attack=st.booleans()),
    st.builds(RequestEnd, request_id=counts, kind=text, outcome=outcomes,
              is_attack=st.booleans(), elapsed_seconds=finite_floats,
              memory_errors=counts,
              error_sites=st.lists(st.tuples(text, counts), max_size=4).map(tuple)),
    st.builds(ScenarioStart, scenario_id=counts, server=text, policy=text,
              workload=text, scale=finite_floats),
    st.builds(ScenarioEnd, scenario_id=counts, seconds=finite_floats),
    st.builds(SnapshotTaken, index=counts, blocks=counts, delta_bytes=counts,
              request_id=request_ids),
    st.builds(RollbackPerformed, snapshot_index=counts, request_id=request_ids,
              kind=text, is_attack=st.booleans(), blocks_restored=counts,
              to_boot_image=st.booleans(),
              backoff_virtual_seconds=finite_floats),
    st.builds(RequestQuarantined, request_id=counts, kind=text,
              is_attack=st.booleans(), attempts=run_counts),
    st.builds(FaultInjected, kind=st.sampled_from(["abort", "alloc-fail",
                                                   "corrupt"]),
              request_id=request_ids, address=counts, length=counts,
              point=st.sampled_from(["before", "after"])),
)


class TestRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(event=events)
    def test_every_event_round_trips_through_json(self, event):
        """Acceptance: serialize -> JSON text -> deserialize is the identity."""
        restored = from_record(json.loads(json.dumps(to_record(event))))
        assert restored == event

    @settings(max_examples=50, deadline=None)
    @given(event=events)
    def test_session_stamps_are_ignored_on_read(self, event):
        record = to_record(event)
        record["scope"] = {"server": "pine", "policy": "standard"}
        record["scenario"] = 3
        assert from_record(record) == event

    def test_registry_names_are_bijective(self):
        # Every registered type must round-trip its tag, so no event type can
        # be exported without a parse path.
        assert len(EVENT_TYPES) == 13
        for name, cls in EVENT_TYPES.items():
            assert event_name(cls.__new__(cls)) == name

    def test_unknown_event_tag_is_rejected(self):
        try:
            from_record({"event": "mystery"})
        except ValueError as exc:
            assert "mystery" in str(exc)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")


class TestSummaryRunWeighting:
    def test_flood_summarizes_identically_per_byte_or_as_runs(self):
        """The same flood exported as per-byte records or as one run record
        produces identical summary queries (count-weighted aggregation)."""
        from repro.errors import MemoryErrorEvent
        from repro.telemetry import InvalidAccess, summarize_records

        def records(batched):
            scope = {"server": "pine", "policy": "failure-oblivious"}
            if batched:
                stream = [
                    InvalidAccess(error=MemoryErrorEvent(
                        kind=ErrorKind.OUT_OF_BOUNDS, access=AccessKind.WRITE,
                        unit_name="buf#1", unit_size=8, offset=8, length=1,
                        site="flood"), count=500, stride=1),
                    Discard(length=500, count=500, site="flood"),
                ]
            else:
                stream = [
                    InvalidAccess(error=MemoryErrorEvent(
                        kind=ErrorKind.OUT_OF_BOUNDS, access=AccessKind.WRITE,
                        unit_name="buf#1", unit_size=8, offset=8 + i, length=1,
                        site="flood"))
                    for i in range(500)
                ] + [Discard(length=1, site="flood") for _ in range(500)]
            return [dict(to_record(event), scope=scope) for event in stream]

        batched = summarize_records(records(batched=True))
        per_byte = summarize_records(records(batched=False))
        assert batched.invalid_total == per_byte.invalid_total == 500
        assert batched.by_type == per_byte.by_type
        assert batched.invalid_by_site == per_byte.invalid_by_site
        assert batched.discarded_bytes == per_byte.discarded_bytes == 500
        assert batched.servers == per_byte.servers
        assert batched.policies == per_byte.policies
        # Only the raw record count shrinks — the point of batching.
        assert batched.total_events < per_byte.total_events


class TestSessionSpillMerge:
    ATTACK_SPECS = [
        ScenarioSpec(server="pine", policy="failure-oblivious",
                     workload="attack", scale=0.1),
        ScenarioSpec(server="apache", policy="failure-oblivious",
                     workload="attack", scale=0.1),
        ScenarioSpec(server="mutt", policy="bounds-check",
                     workload="attack", scale=0.1),
    ]

    def _export(self, tmp_path, name, workers):
        out = tmp_path / f"{name}.jsonl"
        with TelemetrySession(str(tmp_path / f"spill-{name}")) as session:
            ENGINE.run_many(self.ATTACK_SPECS, workers=workers)
            written = session.merge(str(out))
        assert written > 0
        return out

    def test_fork_pool_merge_equals_serial_run(self, tmp_path):
        """Acceptance: a --workers > 1 export re-summarizes identically."""
        serial = self._export(tmp_path, "serial", workers=None)
        forked = self._export(tmp_path, "forked", workers=2)
        assert summarize_jsonl(str(serial)) == summarize_jsonl(str(forked))

    def test_merge_orders_events_by_scenario(self, tmp_path):
        out = self._export(tmp_path, "ordered", workers=2)
        scenario_ids = [record["scenario"] for record in iter_records(str(out))]
        assert scenario_ids == sorted(scenario_ids)
        assert set(scenario_ids) == {0, 1, 2}

    def test_merged_records_all_parse_back(self, tmp_path):
        out = self._export(tmp_path, "parse", workers=2)
        count = 0
        for record in iter_records(str(out)):
            event = from_record(record)
            assert event_name(event) == record["event"]
            count += 1
        assert count > 0

    def test_scenario_events_bracket_each_scenario(self, tmp_path):
        out = self._export(tmp_path, "bracket", workers=None)
        per_scenario = {}
        for record in iter_records(str(out)):
            per_scenario.setdefault(record["scenario"], []).append(record["event"])
        for scenario_id, tags in per_scenario.items():
            assert tags[0] == "scenario-start"
            assert tags[-1] == "scenario-end"

    def test_scope_stamps_server_and_policy(self, tmp_path):
        out = self._export(tmp_path, "scoped", workers=None)
        scoped = [r for r in iter_records(str(out)) if "scope" in r]
        assert scoped, "expected scoped (bus-emitted) records"
        servers = {r["scope"]["server"] for r in scoped}
        assert servers == {"pine", "apache", "mutt"}

    def test_cleanup_removes_spill_files(self, tmp_path):
        session = TelemetrySession(str(tmp_path / "spills"))
        with session:
            ENGINE.run(self.ATTACK_SPECS[0])
            session.merge(str(tmp_path / "out.jsonl"))
        assert session.spill_paths()
        session.cleanup()
        assert session.spill_paths() == []

    def test_request_traces_disambiguate_colliding_worker_ids(self, tmp_path):
        """Forked workers reuse request ids; the scenario stamp keeps traces apart."""
        from repro.telemetry import request_traces

        out = self._export(tmp_path, "collide", workers=2)
        traces = request_traces(iter_records(str(out)))
        for trace in traces:
            end = trace["end"]
            if end is None:
                continue
            # Every event grouped under a trace must come from its scenario.
            for record in trace["events"]:
                assert record["scenario"] == trace["scenario"]
            assert end["request_id"] == trace["request_id"]
        # Each scenario has its own startup trace; with id collisions across
        # workers these would have been merged into one.
        startups = [t for t in traces if t["end"] and t["end"]["kind"] == "__startup__"]
        assert len(startups) == len(self.ATTACK_SPECS)

    def test_nested_sessions_are_rejected(self, tmp_path):
        with TelemetrySession(str(tmp_path / "one")):
            try:
                with TelemetrySession(str(tmp_path / "two")):
                    pass
            except RuntimeError as exc:
                assert "already active" in str(exc)
            else:  # pragma: no cover - defensive
                raise AssertionError("expected RuntimeError")
