"""Checkpoint/restore round-trips for the memory substrate and policies.

The process-image checkpoint must be a *complete* snapshot: restoring it —
into the same context or a fresh one — yields an image that answers every
observable query exactly as it did at checkpoint time, and behaves
identically afterwards (same allocator reuse, same unit labels, same
manufactured values, same death-hook firing).  These properties are what the
server restart path and the pre-fork child pool are built on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import (
    BoundlessPolicy,
    FailureObliviousPolicy,
    RedirectPolicy,
)
from repro.memory.context import MemoryContext
from tests.conftest import POLICY_CLASSES

POLICY_NAMES = sorted(POLICY_CLASSES)


def _observe(ctx: MemoryContext) -> dict:
    """Everything a program (or the §3 log reader) can observe of an image."""
    policy = ctx.policy
    log = ctx.error_log
    sequence = getattr(policy, "sequence", None)
    return {
        "segments": {s.name: bytes(s.data) for s in ctx.space.segments()},
        "raw_reads": ctx.space.raw_reads,
        "raw_writes": ctx.space.raw_writes,
        "live_labels": [u.label() for u in ctx.table.live_units()],
        "live_spans": [(u.base, u.size, u.kind, u.alive) for u in ctx.table.live_units()],
        "heap": ctx.heap.checkpoint(),
        "stack": ctx.stack.checkpoint(),
        "stats": policy.stats.as_dict(),
        "log_total": log.total_recorded,
        "log_events": log.events(),
        "log_by_site": log.count_by_site(),
        "log_by_kind": log.count_by_kind(),
        "sequence": sequence.checkpoint() if sequence is not None else None,
        "stored": policy.stored_bytes() if isinstance(policy, BoundlessPolicy) else None,
    }


def _boot_like_activity(ctx: MemoryContext) -> None:
    """Deterministic mix of allocs, frees, overflow, and stack work.

    The overflow raises under bounds-check and corrupts the heap under
    standard (so the following free can raise HeapCorruption); both outcomes
    are part of the image being checkpointed, not test failures.
    """
    ctx.set_site("boot")
    keep = ctx.malloc(48, name="keep")
    ctx.mem.write(keep, b"persistent state!")
    scratch = ctx.malloc(24, name="scratch")
    try:
        ctx.mem.write(scratch + 20, b"overflowing tail")  # invalid suffix
        ctx.free(scratch)
    except Exception:
        pass
    with ctx.stack_frame("boot_fn"):
        local = ctx.stack_buffer("local", 16)
        ctx.seal_frame()
        ctx.mem.write(local, b"0123456789abcdef")
    ctx.set_site("")


def _mutate_heavily(ctx: MemoryContext) -> None:
    """Post-checkpoint churn (faults under some policies are expected)."""
    try:
        extra = ctx.malloc(128, name="post")
        ctx.mem.write(extra, b"Z" * 128)
        ctx.mem.write(extra + 120, b"Y" * 40)
        ctx.free(extra)
    except Exception:
        pass
    with ctx.stack_frame("post_fn"):
        ctx.stack_buffer("post_local", 32)
        ctx.seal_frame()


class TestMemoryContextRoundTrip:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_restore_undoes_arbitrary_mutation(self, policy_name):
        ctx = MemoryContext(POLICY_CLASSES[policy_name]())
        _boot_like_activity(ctx)
        image = ctx.checkpoint()
        before = _observe(ctx)

        _mutate_heavily(ctx)

        ctx.restore(image)
        assert _observe(ctx) == before

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_restore_into_fresh_context_clones_the_image(self, policy_name):
        ctx = MemoryContext(POLICY_CLASSES[policy_name]())
        _boot_like_activity(ctx)
        image = ctx.checkpoint()

        clone = MemoryContext(POLICY_CLASSES[policy_name]())
        clone.restore(image)
        assert _observe(clone) == _observe(ctx)

        # The clone shares no mutable state: mutating it leaves the original
        # (and the image) untouched.
        probe = clone.malloc(16, name="clone_only")
        try:
            clone.mem.write(probe + 12, b"spill over")
        except Exception:
            pass  # bounds-check raises; the attempt still diverged the clone
        assert _observe(ctx) != _observe(clone)
        ctx.restore(image)
        clone.restore(image)
        assert _observe(clone) == _observe(ctx)

    def test_post_restore_allocations_reproduce_labels_and_free_list(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        _boot_like_activity(ctx)
        hole = ctx.malloc(40, name="hole")
        ctx.free(hole)  # leaves a free-list chunk the next malloc should reuse
        image = ctx.checkpoint()

        def next_alloc_identity(context):
            ptr = context.malloc(40, name="probe")
            return (ptr.referent.label(), ptr.referent.base)

        first = next_alloc_identity(ctx)
        ctx.restore(image)
        second = next_alloc_identity(ctx)
        # Same label (the serial counter is image state) and same base (the
        # free list survived, so the freed chunk is reused identically).
        assert first == second

    def test_death_hooks_still_fire_on_restored_units(self):
        policy = BoundlessPolicy()
        ctx = MemoryContext(policy)
        victim = ctx.malloc(16, name="victim")
        ctx.mem.write(victim + 14, b"spill")  # 3 OOB bytes into the store
        assert policy.stored_bytes() == 3
        image = ctx.checkpoint()

        ctx.restore(image)
        assert ctx.policy.stored_bytes() == 3
        # The restored unit is a fresh object, but the death-hook wiring must
        # still reclaim its boundless bucket when it is freed.
        restored_victim = ctx.heap.live_allocations()[0]
        ctx.heap.free(restored_victim)
        assert ctx.policy.stored_bytes() == 0

    def test_manufactured_sequence_position_is_image_state(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        buf = ctx.malloc(8, name="buf")
        ctx.mem.read(buf + 8, 5)  # consume 5 manufactured values
        image = ctx.checkpoint()
        after_checkpoint = ctx.mem.read(buf + 8, 16)
        ctx.restore(image)
        assert ctx.mem.read(buf + 8, 16) == after_checkpoint

    def test_restore_rejects_mismatched_policy(self):
        image = MemoryContext(FailureObliviousPolicy()).checkpoint()
        with pytest.raises(ValueError):
            MemoryContext(RedirectPolicy()).restore(image)

    def test_segment_mapped_after_checkpoint_is_unmapped_by_restore(self):
        ctx = MemoryContext(FailureObliviousPolicy())
        image = ctx.checkpoint()
        ctx.space.map_segment("extra", 0x9000_0000, 4096)
        ctx.restore(image)
        assert ctx.space.find_segment(0x9000_0000) is None

    def test_error_log_queries_restored_exactly(self):
        ctx = MemoryContext(BoundlessPolicy())
        ctx.set_site("alpha")
        buf = ctx.malloc(8, name="buf")
        ctx.mem.write(buf + 8, b"xy")
        ctx.set_site("beta")
        ctx.mem.read(buf + 10, 3)
        ctx.set_site("")
        image = ctx.checkpoint()
        summary = ctx.error_log.summary()
        events = ctx.error_log.events()

        ctx.mem.write(buf + 8, b"flood" * 50)
        ctx.restore(image)
        assert ctx.error_log.summary() == summary
        assert ctx.error_log.events() == events


# -- Hypothesis properties -------------------------------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["malloc", "free", "write", "oob_write", "oob_read"]),
        st.integers(min_value=1, max_value=64),
    ),
    min_size=0,
    max_size=24,
)


def _apply_ops(ctx: MemoryContext, ops) -> None:
    """Drive a context through a deterministic op sequence.

    Every op tolerates policy faults (bounds-check raises on the first OOB
    byte; unchecked overflows corrupt the heap so later mallocs/frees raise):
    the faults themselves are deterministic, so two contexts replaying the
    same ops still converge on the same observable image.
    """
    live = []
    for op, size in ops:
        try:
            if op == "malloc":
                live.append(ctx.malloc(size, name="u"))
            elif op == "free" and live:
                ctx.free(live.pop(size % len(live)))
            elif op == "write" and live:
                ptr = live[size % len(live)]
                ctx.mem.write(ptr, b"w" * min(size, ptr.referent.size))
            elif op == "oob_write" and live:
                ptr = live[size % len(live)]
                ctx.mem.write(ptr + ptr.referent.size, b"o" * size)
            elif op == "oob_read" and live:
                ptr = live[size % len(live)]
                ctx.mem.read(ptr + ptr.referent.size, size)
        except Exception:
            pass


class TestHypothesisRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS, policy_name=st.sampled_from(POLICY_NAMES))
    def test_restore_mutate_restore_yields_original_image(self, ops, policy_name):
        """restore -> mutate -> restore again is the original image, exactly."""
        ctx = MemoryContext(POLICY_CLASSES[policy_name]())
        _apply_ops(ctx, ops[: len(ops) // 2])
        image = ctx.checkpoint()
        reference = _observe(ctx)

        _apply_ops(ctx, ops[len(ops) // 2 :])
        ctx.restore(image)
        assert _observe(ctx) == reference

        _apply_ops(ctx, ops)
        ctx.restore(image)
        assert _observe(ctx) == reference

    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS, policy_name=st.sampled_from(POLICY_NAMES))
    def test_restored_image_continues_like_the_original(self, ops, policy_name):
        """A restored image and its pre-mutation self behave identically."""
        ctx = MemoryContext(POLICY_CLASSES[policy_name]())
        image_ctx = MemoryContext(POLICY_CLASSES[policy_name]())
        _apply_ops(ctx, ops)
        _apply_ops(image_ctx, ops)
        assert _observe(ctx) == _observe(image_ctx)

        image = image_ctx.checkpoint()
        clone = MemoryContext(POLICY_CLASSES[policy_name]())
        clone.restore(image)
        # Drive both forward with the same tail; they must stay identical.
        _apply_ops(ctx, ops)
        _apply_ops(clone, ops)
        assert _observe(clone) == _observe(ctx)
