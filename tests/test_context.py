"""Tests for the MemoryContext convenience layer."""

import pytest

from repro.core.policies import FailureObliviousPolicy, StandardPolicy
from repro.errors import ControlFlowHijack, SegmentationFault
from repro.memory.context import MemoryContext


class TestHeapHelpers:
    def test_malloc_returns_base_pointer(self, fo_ctx):
        ptr = fo_ctx.malloc(16, name="thing")
        assert ptr.offset == 0
        assert ptr.referent.name == "thing"

    def test_calloc_zeroes(self, fo_ctx):
        ptr = fo_ctx.calloc(4, 4)
        assert fo_ctx.mem.read(ptr, 16) == b"\x00" * 16

    def test_free_releases(self, fo_ctx):
        ptr = fo_ctx.malloc(8)
        fo_ctx.free(ptr)
        assert not ptr.referent.alive

    def test_realloc_moves_content(self, fo_ctx):
        ptr = fo_ctx.malloc(4)
        fo_ctx.mem.write(ptr, b"abcd")
        bigger = fo_ctx.realloc(ptr, 16)
        assert fo_ctx.mem.read(bigger, 4) == b"abcd"

    def test_realloc_none_allocates(self, fo_ctx):
        ptr = fo_ctx.realloc(None, 8)
        assert ptr.referent.size == 8

    def test_c_string_round_trip(self, fo_ctx):
        ptr = fo_ctx.alloc_c_string(b"hello world")
        assert fo_ctx.read_c_string(ptr) == b"hello world"


class TestStackHelpers:
    def test_stack_frame_context_manager_pops(self, fo_ctx):
        with fo_ctx.stack_frame("f"):
            assert fo_ctx.stack.depth == 1
        assert fo_ctx.stack.depth == 0

    def test_stack_frame_pops_on_exception(self, fo_ctx):
        with pytest.raises(ValueError):
            with fo_ctx.stack_frame("f"):
                raise ValueError("boom")
        assert fo_ctx.stack.depth == 0

    def test_stack_buffer_and_seal(self, fo_ctx):
        with fo_ctx.stack_frame("f"):
            buf = fo_ctx.stack_buffer("local", 32)
            fo_ctx.seal_frame()
            fo_ctx.mem.write(buf, b"x" * 32)
            assert fo_ctx.mem.read(buf, 4) == b"xxxx"

    def test_stack_overflow_standard_vs_oblivious(self):
        std = MemoryContext(StandardPolicy())
        with pytest.raises((SegmentationFault, ControlFlowHijack)):
            with std.stack_frame("victim"):
                buf = std.stack_buffer("buf", 8)
                std.seal_frame()
                std.mem.write(buf, b"A" * 32)
        fo = MemoryContext(FailureObliviousPolicy())
        with fo.stack_frame("victim"):
            buf = fo.stack_buffer("buf", 8)
            fo.seal_frame()
            fo.mem.write(buf, b"A" * 32)  # absorbed; no exception on pop


class TestPolicyPlumbing:
    def test_default_policy_is_failure_oblivious(self):
        ctx = MemoryContext()
        assert ctx.policy.name == "failure-oblivious"

    def test_error_log_property(self, fo_ctx):
        buf = fo_ctx.malloc(4)
        fo_ctx.mem.write(buf + 4, b"x")
        assert len(fo_ctx.error_log) == 1

    def test_check_cost_increases_with_accesses(self, fo_ctx):
        buf = fo_ctx.malloc(4)
        before = fo_ctx.check_cost()
        fo_ctx.mem.read(buf, 4)
        assert fo_ctx.check_cost() == before + 1

    def test_custom_segment_sizes(self):
        ctx = MemoryContext(FailureObliviousPolicy(), heap_size=1 << 16, stack_size=1 << 12)
        assert ctx.space.heap.size == 1 << 16
        assert ctx.space.stack.size == 1 << 12
