"""Tests for the Sendmail reimplementation (paper §4.4)."""


from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import RequestOutcome
from repro.servers.base import Request
from repro.servers.sendmail import PRESCAN_BUFFER_SIZE, SendmailServer
from repro.workloads.attacks import sendmail_attack_address, sendmail_attack_request


def make_sendmail(policy_cls, **config):
    server = SendmailServer(policy_cls, config=config)
    boot = server.start()
    return server, boot


def receive_request(sender=b"peer@example.org", recipient=b"user@localhost", body=b"hello"):
    return Request(kind="receive", payload={"sender": sender, "recipient": recipient, "body": body})


class TestBenignBehaviour:
    def test_receive_delivers_to_local_user(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        result = server.process(receive_request())
        assert result.outcome is RequestOutcome.SERVED
        assert len(server.delivered) == 1
        assert server.delivered[0]["body"] == b"hello"

    def test_receive_unknown_user_rejected(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        result = server.process(receive_request(recipient=b"nobody@localhost"))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING

    def test_send_queues_for_relay(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        result = server.process(
            Request(kind="send", payload={"sender": b"user@localhost",
                                          "recipient": b"peer@example.org",
                                          "body": b"outbound"})
        )
        assert result.outcome is RequestOutcome.SERVED
        assert len(server.queued) == 1

    def test_large_body_round_trips_through_spool(self):
        # SMTP message bodies are text; the spool is line-oriented and not
        # NUL-transparent, exactly like the original.
        body = (b"The quick brown fox jumps over the lazy dog. " * 100)[:4096]
        server, _ = make_sendmail(FailureObliviousPolicy)
        server.process(receive_request(body=body))
        assert server.delivered[0]["body"] == body

    def test_long_legitimate_address_is_rejected_not_fatal(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        long_sender = b"x" * (PRESCAN_BUFFER_SIZE * 2) + b"@example.org"
        result = server.process(receive_request(sender=long_sender))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING
        assert server.alive

    def test_explicit_wakeup_request(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        result = server.process(Request(kind="wakeup"))
        assert result.outcome is RequestOutcome.SERVED


class TestWakeupError:
    """§4.4.4: Sendmail commits a memory error every time the daemon wakes up."""

    def test_bounds_check_build_is_unusable(self):
        _, boot = make_sendmail(BoundsCheckPolicy)
        assert boot.outcome is RequestOutcome.TERMINATED_BY_CHECK

    def test_standard_build_tolerates_the_benign_error(self):
        _, boot = make_sendmail(StandardPolicy)
        assert boot.outcome is RequestOutcome.SERVED

    def test_failure_oblivious_logs_a_steady_stream_of_errors(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        for _ in range(5):
            server.process(receive_request())
        sites = server.ctx.error_log.count_by_site()
        assert sites["sendmail.daemon_wakeup"] >= 6  # boot + one per request

    def test_wakeup_can_be_disabled_for_experiments(self):
        server, _ = make_sendmail(FailureObliviousPolicy, wakeup_before_requests=False)
        errors_at_boot = server.memory_error_count()
        server.process(receive_request())
        assert server.memory_error_count() == errors_at_boot


class TestAttackBehaviour:
    """The alternating 0xFF / backslash address (§4.4.2)."""

    def test_attack_address_shape(self):
        address = sendmail_attack_address(pairs=4)
        assert address.startswith(b"\xff\\\xff\\")

    def test_standard_crashes_on_attack(self):
        server, _ = make_sendmail(StandardPolicy)
        result = server.process(sendmail_attack_request())
        assert result.outcome is RequestOutcome.CRASHED

    def test_failure_oblivious_rejects_attack_as_address_too_long(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        result = server.process(sendmail_attack_request())
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING
        assert "too long" in result.response.detail

    def test_failure_oblivious_continues_after_attack(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        server.process(sendmail_attack_request())
        follow_up = server.process(receive_request())
        assert follow_up.outcome is RequestOutcome.SERVED
        assert len(server.delivered) == 1

    def test_attack_errors_attributed_to_prescan(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        server.process(sendmail_attack_request())
        assert server.ctx.error_log.count_by_site()["sendmail.prescan"] > 0

    def test_repeated_attacks_survived(self):
        server, _ = make_sendmail(FailureObliviousPolicy)
        for _ in range(10):
            result = server.process(sendmail_attack_request())
            assert not result.fatal
        assert server.alive
