"""Tests for the timing harness."""

import pytest

from repro.core.policies import FailureObliviousPolicy, StandardPolicy
from repro.errors import RequestOutcome
from repro.harness.timing import (
    TimingResult,
    aggregate_means,
    interactive_pause_acceptable,
    measure_paired,
    measure_request_time,
    slowdown,
)
from repro.servers.apache import ApacheServer
from repro.servers.base import Request


def apache(policy_cls=FailureObliviousPolicy):
    server = ApacheServer(policy_cls)
    server.start()
    return server


def home_page(_index: int) -> Request:
    return Request(kind="get", payload={"url": "/index.html"})


class TestTimingResult:
    def test_mean_and_stdev(self):
        result = TimingResult(label="x", samples_seconds=[0.001, 0.002, 0.003])
        assert result.mean_seconds == pytest.approx(0.002)
        assert result.mean_ms == pytest.approx(2.0)
        assert result.stdev_seconds > 0
        assert result.repetitions == 3

    def test_single_sample_has_zero_stdev(self):
        result = TimingResult(label="x", samples_seconds=[0.001])
        assert result.stdev_seconds == 0.0

    def test_empty_result_is_nan(self):
        result = TimingResult(label="x")
        assert result.mean_seconds != result.mean_seconds

    def test_describe_contains_label_and_unit(self):
        result = TimingResult(label="read", samples_seconds=[0.001])
        assert "read" in result.describe() and "ms" in result.describe()

    def test_all_served_flag(self):
        result = TimingResult(label="x", samples_seconds=[0.001],
                              outcomes=[RequestOutcome.SERVED])
        assert result.all_served


class TestMeasurement:
    def test_measure_collects_requested_repetitions(self):
        result = measure_request_time(apache(), home_page, repetitions=5, warmup=1, label="small")
        assert result.repetitions == 5
        assert result.all_served
        assert result.mean_seconds > 0

    def test_reset_hook_called_every_repetition(self):
        calls = []
        measure_request_time(
            apache(), home_page, repetitions=3, warmup=1,
            reset=lambda server, index: calls.append(index),
        )
        assert len(calls) == 4

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            measure_request_time(apache(), home_page, repetitions=0)

    def test_measurement_stops_if_server_dies(self):
        server = apache()
        server.alive = False
        result = measure_request_time(server, home_page, repetitions=5, warmup=0)
        assert result.repetitions <= 1

    def test_measure_paired_interleaves_builds(self):
        servers = {"standard": apache(StandardPolicy), "failure-oblivious": apache()}
        results = measure_paired(servers, home_page, repetitions=4, warmup=1, label="small")
        assert set(results) == {"standard", "failure-oblivious"}
        assert all(r.repetitions == 4 for r in results.values())


class TestDerivedMetrics:
    def test_slowdown_ratio(self):
        base = TimingResult(label="b", samples_seconds=[0.001] * 3)
        other = TimingResult(label="o", samples_seconds=[0.003] * 3)
        assert slowdown(base, other) == pytest.approx(3.0)

    def test_slowdown_with_missing_data_is_nan(self):
        assert slowdown(TimingResult("a"), TimingResult("b")) != slowdown(
            TimingResult("a"), TimingResult("b")
        )

    def test_interactive_threshold(self):
        fast = TimingResult(label="f", samples_seconds=[0.001])
        slow = TimingResult(label="s", samples_seconds=[0.5])
        assert interactive_pause_acceptable(fast)
        assert not interactive_pause_acceptable(slow)

    def test_aggregate_means(self):
        results = [
            TimingResult(label="a", samples_seconds=[0.002]),
            TimingResult(label="b", samples_seconds=[0.004]),
        ]
        assert aggregate_means(results) == pytest.approx(0.003)
