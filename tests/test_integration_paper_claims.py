"""End-to-end tests asserting the paper's headline claims hold in this reproduction.

Each test corresponds to a sentence-level claim from the paper, so the test
names double as a checklist of what the reproduction demonstrates.
"""

import pytest

from repro.analysis.security import assess_security
from repro.core.policies import POLICY_NAMES
from repro.harness.runner import (
    run_attack_scenario,
    run_performance_figure,
    run_security_matrix,
)
from repro.harness.stability import run_stability_experiment
from repro.harness.throughput import run_throughput_experiment, throughput_ratio
from repro.servers import SERVER_CLASSES


ALL_SERVERS = sorted(SERVER_CLASSES)


class TestHeadlineSecurityClaims:
    """§1: failure-oblivious computing makes the servers invulnerable to the
    known attacks and lets them keep serving legitimate requests."""

    @pytest.fixture(scope="class")
    def assessments(self):
        return assess_security(cells=run_security_matrix(scale=0.1))

    def test_all_five_servers_are_reproduced(self):
        assert len(ALL_SERVERS) == 5

    def test_failure_oblivious_eliminates_every_vulnerability(self, assessments):
        fo = [a for a in assessments if a.policy == "failure-oblivious"]
        assert all(a.invulnerable for a in fo)

    def test_failure_oblivious_continues_to_serve_every_server(self, assessments):
        fo = [a for a in assessments if a.policy == "failure-oblivious"]
        assert all(a.continued_service for a in fo)

    def test_standard_builds_fail_on_every_server(self, assessments):
        std = [a for a in assessments if a.policy == "standard"]
        assert all(a.denial_of_service or a.code_execution for a in std)

    def test_bounds_check_builds_deny_service_on_every_server(self, assessments):
        bc = [a for a in assessments if a.policy == "bounds-check"]
        assert all(a.denial_of_service for a in bc)
        assert all(not a.continued_service for a in bc)


class TestPerformanceClaims:
    """§4: checking overhead exists but the servers stay usable, and the
    I/O-dominated Apache requests see only a few percent of overhead."""

    def test_apache_overhead_is_small(self):
        rows = run_performance_figure("apache", repetitions=8, scale=0.5)
        for row in rows:
            assert row.slowdown < 1.6

    def test_interactive_servers_stay_interactive(self):
        rows = run_performance_figure("mutt", repetitions=6, scale=0.25)
        for row in rows:
            # The paper's perceptibility threshold is 100 ms.
            assert row.failure_oblivious.mean_ms < 100

    def test_failure_oblivious_is_slower_but_not_catastrophic(self):
        # Large bodies give the most stable timings; small-request ratios are
        # noisy at the tens-of-microseconds level when the whole suite runs.
        rows = run_performance_figure("sendmail", repetitions=8, scale=0.25,
                                      kinds=["recv_large", "send_large"])
        for row in rows:
            assert 0.9 < row.slowdown < 12  # the paper's observed range is ~1x-8x


class TestAvailabilityClaims:
    """§4.3.2 and §4.x.4: throughput under attack and long-run stability."""

    def test_apache_throughput_ordering_matches_paper(self):
        results = run_throughput_experiment(attack_fraction=0.5, total_requests=80, pool_size=2)
        fo_over_bc = throughput_ratio(results, "failure-oblivious", "bounds-check")
        fo_over_std = throughput_ratio(results, "failure-oblivious", "standard")
        assert fo_over_bc > 1.5
        assert fo_over_std > 1.5

    @pytest.mark.parametrize("server_name", ALL_SERVERS)
    def test_failure_oblivious_stability_is_flawless(self, server_name):
        result = run_stability_experiment(
            server_name, "failure-oblivious", total_requests=40, attack_every=8, scale=0.1
        )
        assert result.flawless
        assert result.attacks_survived == result.attack_requests

    @pytest.mark.parametrize("server_name", ["pine", "mutt"])
    def test_restarting_does_not_recover_persistent_triggers(self, server_name):
        """§4.7: when the trigger persists in the environment, restart-based
        recovery just dies again during initialization."""
        result = run_stability_experiment(
            server_name, "bounds-check", total_requests=20, attack_every=5,
            restart_on_death=True, scale=0.1,
        )
        assert result.legitimate_served == 0


class TestVariantClaims:
    """§5.1: the servers also work with the boundless and redirect variants."""

    @pytest.mark.parametrize("policy_name", ["boundless", "redirect"])
    @pytest.mark.parametrize("server_name", ALL_SERVERS)
    def test_variants_also_keep_all_servers_serving(self, server_name, policy_name):
        scenario = run_attack_scenario(server_name, policy_name, scale=0.1)
        assert scenario.survived_attack
        assert scenario.continued_service

    def test_registry_exposes_exactly_the_evaluated_builds(self):
        assert set(POLICY_NAMES) == {
            "standard", "bounds-check", "failure-oblivious", "boundless", "redirect"
        }
