"""Tests for the Apache reimplementation and child pool (paper §4.3)."""

from repro.core.policies import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import RequestOutcome
from repro.servers.apache import (
    ApacheServer,
    ChildProcessPool,
    RewriteRule,
    VULNERABLE_RULE,
)
from repro.servers.base import Request
from repro.workloads.attacks import apache_attack_request, apache_vulnerable_config


def make_apache(policy_cls, vulnerable=False):
    config = apache_vulnerable_config() if vulnerable else {}
    server = ApacheServer(policy_cls, config=config)
    server.start()
    return server


class TestBenignServing:
    def test_serves_home_page(self):
        server = make_apache(FailureObliviousPolicy)
        result = server.process(Request(kind="get", payload={"url": "/index.html"}))
        assert result.outcome is RequestOutcome.SERVED
        assert b"research project" in result.response.body

    def test_serves_large_file_completely(self):
        server = make_apache(FailureObliviousPolicy)
        result = server.process(Request(kind="get", payload={"url": "/download/big.dat"}))
        assert result.outcome is RequestOutcome.SERVED
        assert len(result.response.body) == 830 * 1024

    def test_missing_file_is_404(self):
        server = make_apache(FailureObliviousPolicy)
        result = server.process(Request(kind="get", payload={"url": "/missing"}))
        assert result.outcome is RequestOutcome.REJECTED_BY_ERROR_HANDLING
        assert "404" in result.response.detail

    def test_rewrite_rule_redirects(self):
        server = make_apache(FailureObliviousPolicy)
        result = server.process(Request(kind="get", payload={"url": "/old/readme.txt"}))
        assert result.outcome is RequestOutcome.SERVED
        assert b"failure-oblivious" in result.response.body

    def test_project_rule_maps_to_home_page(self):
        server = make_apache(FailureObliviousPolicy)
        result = server.process(Request(kind="get", payload={"url": "/project"}))
        assert result.outcome is RequestOutcome.SERVED

    def test_rule_capture_count(self):
        assert RewriteRule(pattern=r"^/a/(.*)$", replacement="/b/$1").capture_count() == 2
        assert VULNERABLE_RULE.capture_count() > 10

    def test_benign_urls_fine_even_with_vulnerable_rule(self):
        for policy_cls in (StandardPolicy, BoundsCheckPolicy, FailureObliviousPolicy):
            server = make_apache(policy_cls, vulnerable=True)
            result = server.process(Request(kind="get", payload={"url": "/index.html"}))
            assert result.outcome is RequestOutcome.SERVED, policy_cls.__name__


class TestAttackBehaviour:
    """The >10-capture rewrite overflow (§4.3.2)."""

    def test_standard_child_crashes(self):
        server = make_apache(StandardPolicy, vulnerable=True)
        result = server.process(apache_attack_request())
        assert result.outcome is RequestOutcome.CRASHED

    def test_bounds_check_child_terminates(self):
        server = make_apache(BoundsCheckPolicy, vulnerable=True)
        result = server.process(apache_attack_request())
        assert result.outcome is RequestOutcome.TERMINATED_BY_CHECK

    def test_failure_oblivious_continues_and_serves_subsequent_requests(self):
        server = make_apache(FailureObliviousPolicy, vulnerable=True)
        attack = server.process(apache_attack_request())
        assert attack.outcome in (
            RequestOutcome.SERVED,
            RequestOutcome.REJECTED_BY_ERROR_HANDLING,
        )
        follow_up = server.process(Request(kind="get", payload={"url": "/index.html"}))
        assert follow_up.outcome is RequestOutcome.SERVED

    def test_failure_oblivious_discards_only_extra_captures(self):
        server = make_apache(FailureObliviousPolicy, vulnerable=True)
        server.process(apache_attack_request())
        events = server.ctx.error_log.events()
        assert events, "the attack must attempt out-of-bounds writes"
        assert all("apache.rewrite_captures" == event.site for event in events)

    def test_attack_is_repeatable_against_failure_oblivious(self):
        server = make_apache(FailureObliviousPolicy, vulnerable=True)
        for _ in range(5):
            result = server.process(apache_attack_request())
            assert not result.fatal
        assert server.alive


class TestChildProcessPool:
    def test_pool_starts_children(self):
        pool = ChildProcessPool(FailureObliviousPolicy, pool_size=3)
        assert pool.alive_children() == 3

    def test_pool_serves_legitimate_requests(self):
        pool = ChildProcessPool(FailureObliviousPolicy, pool_size=2)
        result = pool.dispatch(Request(kind="get", payload={"url": "/index.html"}))
        assert result.outcome is RequestOutcome.SERVED

    def test_bounds_check_children_die_and_are_replaced(self):
        pool = ChildProcessPool(
            BoundsCheckPolicy, pool_size=2, config=apache_vulnerable_config()
        )
        pool.dispatch(apache_attack_request())
        assert pool.child_deaths == 1
        # The dead slot is replaced lazily when it is next scheduled.
        for _ in range(4):
            result = pool.dispatch(Request(kind="get", payload={"url": "/index.html"}))
            assert result.outcome is RequestOutcome.SERVED
        assert pool.restart_seconds > 0

    def test_failure_oblivious_children_never_die(self):
        pool = ChildProcessPool(
            FailureObliviousPolicy, pool_size=2, config=apache_vulnerable_config()
        )
        for _ in range(6):
            pool.dispatch(apache_attack_request())
        assert pool.child_deaths == 0
        assert pool.restart_seconds == 0

    def test_pool_error_accounting(self):
        pool = ChildProcessPool(
            FailureObliviousPolicy, pool_size=1, config=apache_vulnerable_config()
        )
        pool.dispatch(apache_attack_request())
        assert pool.total_memory_errors() > 0
