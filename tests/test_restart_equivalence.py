"""Checkpoint-restore restarts are observably identical to from-scratch reboots.

``Server.restart()`` restores the post-boot process image instead of
rebuilding the substrate and re-running ``startup()``.  This suite proves the
two paths indistinguishable for every server under every policy, across the
full observation surface:

* the memory image (every segment's bytes, the live unit labels);
* the §3 error log's query surface — including the Pine/Mutt boot-time
  memory errors, which must reappear in the restored log exactly as a
  re-executed boot would record them;
* the telemetry stream seen by experiment-attached sinks (the checkpoint
  path replays the boot's events; the scratch path re-emits them);
* the boot result and the behaviour of follow-up requests processed after
  the restart.

Request ids are allocated from a process-global counter and wall-clock times
differ run to run, so streams are compared after renumbering request ids by
first appearance and dropping elapsed-seconds fields — the same two fields
that already differ between *two consecutive from-scratch reboots*.
Everything else must match exactly (unit labels included: serials are
per-image and deterministic).
"""

from __future__ import annotations

import pytest

from repro.harness.engine import ENGINE
from repro.servers.profile import get_profile
from repro.telemetry.events import to_record
from repro.telemetry.sinks import ListSink

SERVERS = ("apache", "midnight-commander", "mutt", "pine", "sendmail")
POLICIES = ("standard", "bounds-check", "failure-oblivious", "boundless", "redirect")

#: Fields that legitimately differ between two boots of the same server.
_TIMING_FIELDS = ("elapsed_seconds", "seconds")


def _normalized_records(events) -> list:
    """Serialize an event stream, renumbering request ids by first appearance."""
    renumber: dict = {}
    records = []
    for event in events:
        record = to_record(event)
        for field in _TIMING_FIELDS:
            record.pop(field, None)
        rid = record.get("request_id")
        if rid is not None:
            record["request_id"] = renumber.setdefault(rid, len(renumber))
        records.append(record)
    return records


def _log_surface(server) -> dict:
    """The full §3 error-log query surface, request ids renumbered."""
    log = server.ctx.error_log
    renumber: dict = {}

    def norm(event):
        rid = event.request_id
        if rid is not None:
            rid = renumber.setdefault(rid, len(renumber))
        return (event.kind, event.access, event.unit_name, event.unit_size,
                event.offset, event.length, event.site, rid)

    return {
        "total": log.total_recorded,
        "dropped": log.dropped,
        "by_site": log.count_by_site(),
        "by_kind": log.count_by_kind(),
        "reads": log.count_reads(),
        "writes": log.count_writes(),
        "top_sites": log.most_common_sites(5),
        "events": [norm(event) for event in log.events()],
        "summary": log.summary(),
    }


def _memory_image(server) -> dict:
    ctx = server.ctx
    return {
        "segments": {s.name: bytes(s.data) for s in ctx.space.segments()},
        "live_units": [
            (u.label(), u.base, u.size, u.kind, u.owner) for u in ctx.table.live_units()
        ],
        "heap_live_bytes": ctx.heap.live_bytes(),
        "stack_depth": ctx.stack.depth,
        "stats": ctx.policy.stats.as_dict(),
    }


def _result_view(result) -> tuple:
    return (
        result.outcome,
        None if result.response is None else (result.response.status,
                                              result.response.body),
        type(result.error).__name__ if result.error is not None else None,
        len(result.memory_errors),
    )


def _drive(server, profile, restart_via: str) -> dict:
    """Boot, dirty the image, restart via one path, then keep serving."""
    boot = server.start()
    if server.alive:
        for request in profile.make_follow_ups():
            server.process(request)
    observer = server.add_telemetry_sink(ListSink())
    if restart_via == "checkpoint":
        assert server.checkpoint_restarts and server.boot_image is not None
        restart_result = server.restart()
    else:
        restart_result = server.restart_from_scratch()
    follow_ups = []
    for request in profile.make_follow_ups():
        follow_ups.append(_result_view(server.process(request)))
    return {
        "boot": _result_view(boot),
        "restart": _result_view(restart_result),
        "alive": server.alive,
        "started": server.started,
        "memory": _memory_image(server),
        "log": _log_surface(server),
        "telemetry": _normalized_records(observer.events),
        "follow_ups": follow_ups,
    }


@pytest.mark.parametrize("server_name", SERVERS)
@pytest.mark.parametrize("policy_name", POLICIES)
def test_restart_paths_are_observably_identical(server_name, policy_name):
    profile = get_profile(server_name)
    observations = {}
    for restart_via in ("checkpoint", "scratch"):
        server = ENGINE.build_server(
            server_name, policy_name, plant_attack=True, scale=0.1
        )
        observations[restart_via] = _drive(server, profile, restart_via)
        server.stop()
    checkpoint, scratch = observations["checkpoint"], observations["scratch"]
    for key in checkpoint:
        assert checkpoint[key] == scratch[key], (
            f"{server_name}/{policy_name}: restart paths diverge on {key!r}"
        )


@pytest.mark.parametrize("server_name", ("pine", "mutt"))
def test_boot_time_errors_reappear_in_restored_log(server_name):
    """Pine/Mutt commit their memory error *during boot*; a restored image
    must report it exactly as a re-executed boot would."""
    server = ENGINE.build_server(server_name, "failure-oblivious",
                                 plant_attack=True, scale=0.1)
    server.start()
    boot_log = _log_surface(server)
    assert boot_log["total"] > 0  # the documented boot-time error fired
    observer = server.add_telemetry_sink(ListSink())
    server.restart()
    assert _log_surface(server) == boot_log
    # The replayed stream carries the error events to external observers too.
    assert any(r["event"] == "invalid-access" for r in _normalized_records(observer.events))


def test_restart_keeps_bus_and_sinks_wired():
    """Checkpoint restarts keep the same bus; sinks observe across restarts."""
    server = ENGINE.build_server("apache", "failure-oblivious", scale=0.1)
    server.start()
    bus_before = server.ctx.bus
    sink = server.add_telemetry_sink(ListSink())
    server.restart()
    assert server.ctx.bus is bus_before
    assert sink in server.ctx.bus.sinks
    assert sink.events  # the replayed boot stream arrived


def test_pool_clones_equal_booted_children():
    """A pre-fork clone is indistinguishable from a child that booted itself."""
    from repro.core.policies import FailureObliviousPolicy
    from repro.servers.apache import ChildProcessPool
    from repro.workloads.attacks import apache_vulnerable_config

    cloned = ChildProcessPool(FailureObliviousPolicy, pool_size=3,
                              config=apache_vulnerable_config())
    booted = ChildProcessPool(FailureObliviousPolicy, pool_size=3,
                              config=apache_vulnerable_config(),
                              use_checkpoints=False)
    for clone, boot in zip(cloned.children, booted.children):
        assert _memory_image(clone) == _memory_image(boot)
        assert _log_surface(clone) == _log_surface(boot)
    # Clones serve requests exactly like booted children.
    from repro.servers.base import Request

    request = Request(kind="get", payload={"url": "/index.html"})
    views = {
        _result_view(pool.dispatch(request)) for pool in (cloned, booted)
    }
    assert len(views) == 1
