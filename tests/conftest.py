"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.policies import (
    BoundlessPolicy,
    BoundsCheckPolicy,
    FailureObliviousPolicy,
    RedirectPolicy,
    StandardPolicy,
)
from repro.memory.context import MemoryContext


@pytest.fixture
def fo_ctx() -> MemoryContext:
    """A memory context under the failure-oblivious policy."""
    return MemoryContext(FailureObliviousPolicy())


@pytest.fixture
def bc_ctx() -> MemoryContext:
    """A memory context under the bounds-check (CRED) policy."""
    return MemoryContext(BoundsCheckPolicy())


@pytest.fixture
def std_ctx() -> MemoryContext:
    """A memory context under the unchecked standard policy."""
    return MemoryContext(StandardPolicy())


@pytest.fixture(params=["standard", "bounds-check", "failure-oblivious", "boundless", "redirect"])
def any_policy_name(request) -> str:
    """Every registered policy name, for parametrized policy-agnostic tests."""
    return request.param


POLICY_CLASSES = {
    "standard": StandardPolicy,
    "bounds-check": BoundsCheckPolicy,
    "failure-oblivious": FailureObliviousPolicy,
    "boundless": BoundlessPolicy,
    "redirect": RedirectPolicy,
}
