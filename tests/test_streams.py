"""Tests for the mixed request streams used by stability and throughput runs."""

import pytest

from repro.servers import SERVER_CLASSES
from repro.workloads.streams import RequestStream, mixed_stream, throughput_stream


class TestMixedStream:
    @pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
    def test_stream_has_requested_length(self, server_name):
        stream = mixed_stream(server_name, total_requests=50, attack_every=10)
        assert len(stream) == 50

    def test_attack_injection_rate(self):
        stream = mixed_stream("apache", total_requests=100, attack_every=10)
        assert stream.attack_count == 9  # every 10th position except position 0
        assert stream.legitimate_count == 91

    def test_no_attacks_when_disabled(self):
        stream = mixed_stream("apache", total_requests=30, attack_every=0)
        assert stream.attack_count == 0

    def test_deterministic_for_same_seed(self):
        first = mixed_stream("sendmail", total_requests=40, seed=7)
        second = mixed_stream("sendmail", total_requests=40, seed=7)
        assert [r.kind for r in first] == [r.kind for r in second]

    def test_different_seeds_differ(self):
        first = mixed_stream("sendmail", total_requests=40, seed=7)
        second = mixed_stream("sendmail", total_requests=40, seed=8)
        assert [r.payload for r in first] != [r.payload for r in second] or \
               [r.kind for r in first] != [r.kind for r in second]

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            mixed_stream("apache", total_requests=0)

    def test_describe_mentions_counts(self):
        stream = mixed_stream("apache", total_requests=20, attack_every=5)
        assert "20 requests" in stream.describe()

    def test_custom_attack_request_is_used(self):
        from repro.servers.base import Request

        marker = Request(kind="get", payload={"url": "/custom"}, is_attack=True)
        stream = mixed_stream("apache", total_requests=20, attack_every=5, attack_request=marker)
        attacks = [r for r in stream if r.is_attack]
        assert all(r.payload["url"] == "/custom" for r in attacks)


class TestThroughputStream:
    def test_attack_fraction_roughly_respected(self):
        stream = throughput_stream(attack_fraction=0.5, total_requests=400)
        assert 0.35 < stream.attack_count / len(stream) < 0.65

    def test_zero_fraction_means_no_attacks(self):
        stream = throughput_stream(attack_fraction=0.0, total_requests=50)
        assert stream.attack_count == 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            throughput_stream(attack_fraction=1.5)

    def test_legitimate_requests_fetch_home_page(self):
        stream = throughput_stream(attack_fraction=0.2, total_requests=50)
        legit = [r for r in stream if not r.is_attack]
        assert all(r.payload["url"] == "/index.html" for r in legit)

    def test_stream_iteration(self):
        stream = RequestStream(requests=list(throughput_stream(total_requests=10)))
        assert len(list(stream)) == 10
