"""Tests for the Jones & Kelly object table."""

import pytest

from repro.memory.data_unit import UnitKind, make_unit
from repro.memory.object_table import ObjectTable


def unit(base, size, name="u"):
    return make_unit(name=name, base=base, size=size, kind=UnitKind.HEAP)


class TestRegistration:
    def test_register_and_find(self):
        table = ObjectTable()
        u = table.register(unit(100, 16))
        assert table.find(100) is u
        assert table.find(115) is u

    def test_find_outside_returns_none(self):
        table = ObjectTable()
        table.register(unit(100, 16))
        assert table.find(116) is None
        assert table.find(99) is None

    def test_overlapping_registration_rejected(self):
        table = ObjectTable()
        table.register(unit(100, 16))
        with pytest.raises(ValueError):
            table.register(unit(110, 16))
        with pytest.raises(ValueError):
            table.register(unit(90, 16))

    def test_adjacent_units_allowed(self):
        table = ObjectTable()
        table.register(unit(100, 16))
        table.register(unit(116, 16))
        assert len(table) == 2

    def test_unregister_marks_dead_and_removes(self):
        table = ObjectTable()
        u = table.register(unit(100, 16))
        table.unregister(u)
        assert table.find(100) is None
        assert not u.alive

    def test_unregister_unknown_raises(self):
        table = ObjectTable()
        with pytest.raises(KeyError):
            table.unregister(unit(100, 16))

    def test_retired_units_found_for_uaf_attribution(self):
        table = ObjectTable()
        u = table.register(unit(100, 16))
        table.unregister(u)
        assert table.find_retired(105) is u


class TestLookup:
    def test_find_range_fully_inside(self):
        table = ObjectTable()
        u = table.register(unit(100, 16))
        assert table.find_range(100, 16) is u
        assert table.find_range(110, 10) is None

    def test_lookup_counter_increments(self):
        table = ObjectTable()
        table.register(unit(100, 16))
        before = table.lookups
        table.find(100)
        table.find(200)
        assert table.lookups == before + 2

    def test_many_units_lookup_correctness(self):
        table = ObjectTable()
        units = [table.register(unit(i * 32, 16, name=f"u{i}")) for i in range(100)]
        for i, u in enumerate(units):
            assert table.find(i * 32 + 8) is u
            assert table.find(i * 32 + 20) is None

    def test_neighbours(self):
        table = ObjectTable()
        a = table.register(unit(0, 8, "a"))
        b = table.register(unit(16, 8, "b"))
        c = table.register(unit(32, 8, "c"))
        prev_unit, next_unit = table.neighbours(b)
        assert prev_unit is a and next_unit is c

    def test_total_live_bytes(self):
        table = ObjectTable()
        table.register(unit(0, 8))
        table.register(unit(16, 24))
        assert table.total_live_bytes() == 32

    def test_live_units_sorted_by_base(self):
        table = ObjectTable()
        table.register(unit(200, 8))
        table.register(unit(100, 8))
        bases = [u.base for u in table.live_units()]
        assert bases == sorted(bases)

    def test_iteration(self):
        table = ObjectTable()
        table.register(unit(100, 8))
        assert len(list(table)) == 1
