"""Tests for the exception/outcome model."""

import pytest

from repro.errors import (
    AccessKind,
    BoundsCheckViolation,
    ControlFlowHijack,
    ErrorKind,
    FATAL_OUTCOMES,
    MemoryErrorEvent,
    RequestOutcome,
    RequestResult,
    SegmentationFault,
)


def event(**overrides):
    base = dict(
        kind=ErrorKind.OUT_OF_BOUNDS,
        access=AccessKind.WRITE,
        unit_name="buf#1",
        unit_size=16,
        offset=20,
        length=4,
        site="f",
    )
    base.update(overrides)
    return MemoryErrorEvent(**base)


class TestExceptions:
    def test_segfault_formats_address(self):
        fault = SegmentationFault(0xDEAD)
        assert fault.address == 0xDEAD
        assert "0xdead" in str(fault)

    def test_bounds_check_violation_carries_event(self):
        violation = BoundsCheckViolation(event())
        assert violation.event.unit_name == "buf#1"
        assert "buf#1" in str(violation)

    def test_hijack_carries_payload_tag(self):
        hijack = ControlFlowHijack(0x41414141, payload_tag="41414141")
        assert hijack.payload_tag == "41414141"


class TestOutcomes:
    def test_fatal_outcomes_cover_all_process_deaths(self):
        assert RequestOutcome.CRASHED in FATAL_OUTCOMES
        assert RequestOutcome.TERMINATED_BY_CHECK in FATAL_OUTCOMES
        assert RequestOutcome.EXPLOITED in FATAL_OUTCOMES
        assert RequestOutcome.HUNG in FATAL_OUTCOMES
        assert RequestOutcome.SERVED not in FATAL_OUTCOMES

    def test_request_result_fatal_and_acceptable(self):
        served = RequestResult(outcome=RequestOutcome.SERVED)
        rejected = RequestResult(outcome=RequestOutcome.REJECTED_BY_ERROR_HANDLING)
        crashed = RequestResult(outcome=RequestOutcome.CRASHED)
        assert served.acceptable and not served.fatal
        assert rejected.acceptable and not rejected.fatal
        assert crashed.fatal and not crashed.acceptable

    def test_event_is_immutable(self):
        e = event()
        with pytest.raises(Exception):
            e.offset = 99

    def test_event_describe_mentions_kind_and_access(self):
        text = event(kind=ErrorKind.USE_AFTER_FREE, access=AccessKind.READ).describe()
        assert "use-after-free" in text and "read" in text


class TestExceptionPickling:
    """Faults cross process-pool boundaries inside RequestResults (run_many)."""

    def test_memory_faults_round_trip_through_pickle(self):
        import pickle

        from repro.errors import (
            BoundsCheckViolation,
            ControlFlowHijack,
            SegmentationFault,
            UseAfterFree,
        )

        faults = [
            SegmentationFault(0x2000_0010),
            BoundsCheckViolation(event()),
            UseAfterFree(event(kind=ErrorKind.USE_AFTER_FREE)),
            ControlFlowHijack(0x7000_0000, "payload-tag"),
        ]
        for fault in faults:
            clone = pickle.loads(pickle.dumps(fault))
            assert type(clone) is type(fault)
            assert str(clone) == str(fault)
        assert pickle.loads(pickle.dumps(faults[0])).address == 0x2000_0010
        assert pickle.loads(pickle.dumps(faults[3])).payload_tag == "payload-tag"
