"""Tests for the exception/outcome model."""

import pytest

from repro.errors import (
    AccessKind,
    BoundsCheckViolation,
    ControlFlowHijack,
    ErrorKind,
    FATAL_OUTCOMES,
    MemoryErrorEvent,
    RequestOutcome,
    RequestResult,
    SegmentationFault,
)


def event(**overrides):
    base = dict(
        kind=ErrorKind.OUT_OF_BOUNDS,
        access=AccessKind.WRITE,
        unit_name="buf#1",
        unit_size=16,
        offset=20,
        length=4,
        site="f",
    )
    base.update(overrides)
    return MemoryErrorEvent(**base)


class TestExceptions:
    def test_segfault_formats_address(self):
        fault = SegmentationFault(0xDEAD)
        assert fault.address == 0xDEAD
        assert "0xdead" in str(fault)

    def test_bounds_check_violation_carries_event(self):
        violation = BoundsCheckViolation(event())
        assert violation.event.unit_name == "buf#1"
        assert "buf#1" in str(violation)

    def test_hijack_carries_payload_tag(self):
        hijack = ControlFlowHijack(0x41414141, payload_tag="41414141")
        assert hijack.payload_tag == "41414141"


class TestOutcomes:
    def test_fatal_outcomes_cover_all_process_deaths(self):
        assert RequestOutcome.CRASHED in FATAL_OUTCOMES
        assert RequestOutcome.TERMINATED_BY_CHECK in FATAL_OUTCOMES
        assert RequestOutcome.EXPLOITED in FATAL_OUTCOMES
        assert RequestOutcome.HUNG in FATAL_OUTCOMES
        assert RequestOutcome.SERVED not in FATAL_OUTCOMES

    def test_request_result_fatal_and_acceptable(self):
        served = RequestResult(outcome=RequestOutcome.SERVED)
        rejected = RequestResult(outcome=RequestOutcome.REJECTED_BY_ERROR_HANDLING)
        crashed = RequestResult(outcome=RequestOutcome.CRASHED)
        assert served.acceptable and not served.fatal
        assert rejected.acceptable and not rejected.fatal
        assert crashed.fatal and not crashed.acceptable

    def test_event_is_immutable(self):
        e = event()
        with pytest.raises(Exception):
            e.offset = 99

    def test_event_describe_mentions_kind_and_access(self):
        text = event(kind=ErrorKind.USE_AFTER_FREE, access=AccessKind.READ).describe()
        assert "use-after-free" in text and "read" in text
