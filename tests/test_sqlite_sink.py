"""The streaming SQLite sink: round-trips, batching, spill merge, parity.

The contract under test: a SQLite export carries exactly the record dicts a
JSONL export would (one row's ``record`` column == one JSONL line), so every
offline consumer — ``repro trace summary``/``filter``, the fleet report —
works identically on either format.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AccessKind, ErrorKind, MemoryErrorEvent, RequestOutcome
from repro.telemetry import (
    AllocFree,
    Discard,
    InvalidAccess,
    Manufacture,
    Redirect,
    RequestEnd,
    RequestStart,
    ScenarioEnd,
    ScenarioStart,
    SqliteSink,
    event_name,
    from_record,
    is_sqlite_file,
    iter_sqlite_records,
    iter_trace_records,
    merge_sqlite,
    summarize_trace,
    to_record,
)

# ---------------------------------------------------------------------------
# Strategies: the same nine event types the JSONL round-trip suite covers.
# ---------------------------------------------------------------------------

text = st.text(max_size=24)
request_ids = st.none() | st.integers(min_value=0, max_value=10**9)
counts = st.integers(min_value=0, max_value=10**9)
offsets = st.integers(min_value=-(10**9), max_value=10**9)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
outcomes = st.sampled_from([outcome.value for outcome in RequestOutcome])

memory_errors = st.builds(
    MemoryErrorEvent,
    kind=st.sampled_from(ErrorKind),
    access=st.sampled_from(AccessKind),
    unit_name=text,
    unit_size=counts,
    offset=offsets,
    length=counts,
    site=text,
    request_id=request_ids,
)

run_counts = st.integers(min_value=1, max_value=10**6)
strides = st.integers(min_value=-4, max_value=4)

events = st.one_of(
    st.builds(InvalidAccess, error=memory_errors, count=run_counts, stride=strides),
    st.builds(Discard, length=counts, site=text, request_id=request_ids,
              stored=st.booleans(), count=run_counts),
    st.builds(Manufacture, length=counts, site=text, request_id=request_ids,
              count=run_counts),
    st.builds(Redirect, offset=offsets, redirect_offset=offsets, length=counts,
              access=st.sampled_from(["read", "write"]), site=text,
              request_id=request_ids, count=run_counts),
    st.builds(AllocFree, op=st.sampled_from(["malloc", "free"]), unit_name=text,
              size=counts, base=counts, request_id=request_ids),
    st.builds(RequestStart, request_id=counts, kind=text, is_attack=st.booleans()),
    st.builds(RequestEnd, request_id=counts, kind=text, outcome=outcomes,
              is_attack=st.booleans(), elapsed_seconds=finite_floats,
              memory_errors=counts,
              error_sites=st.lists(st.tuples(text, counts), max_size=4).map(tuple)),
    st.builds(ScenarioStart, scenario_id=counts, server=text, policy=text,
              workload=text, scale=finite_floats),
    st.builds(ScenarioEnd, scenario_id=counts, seconds=finite_floats),
)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(event=events)
    def test_every_event_round_trips_through_sqlite(self, event):
        """Acceptance: emit -> SQLite row -> iter -> from_record is identity
        for all nine event types (mirroring the JSONL Hypothesis suite)."""
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trip.sqlite")
            with SqliteSink(path, batch_size=4) as sink:
                sink.emit(event)
            records = list(iter_sqlite_records(path))
            assert len(records) == 1
            restored = from_record(records[0])
            assert restored == event
            assert event_name(restored) == records[0]["event"]

    @settings(max_examples=50, deadline=None)
    @given(event=events)
    def test_stamps_survive_the_round_trip(self, event):
        """Scope and scenario stamped at write time come back verbatim."""
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "stamped.sqlite")
            scope = {"server": "pine", "policy": "failure-oblivious"}
            with SqliteSink(path, scope=scope, scenario=7) as sink:
                sink.emit(event)
            (record,) = list(iter_sqlite_records(path))
            assert record["scope"] == scope
            assert record["scenario"] == 7
            assert from_record(record) == event


class TestSinkMechanics:
    def _end(self, request_id=1, outcome="served"):
        return RequestEnd(request_id=request_id, kind="get", outcome=outcome)

    def test_batching_defers_writes_until_flush(self, tmp_path):
        path = str(tmp_path / "batch.sqlite")
        sink = SqliteSink(path, batch_size=100)
        for index in range(99):
            sink.emit(self._end(request_id=index))
        # Nothing committed yet: a second connection sees an empty table.
        other = sqlite3.connect(path)
        assert other.execute("SELECT COUNT(*) FROM events").fetchone()[0] == 0
        sink.emit(self._end(request_id=99))  # 100th row triggers the batch
        assert other.execute("SELECT COUNT(*) FROM events").fetchone()[0] == 100
        sink.emit(self._end(request_id=100))
        sink.close()  # close flushes the partial batch
        assert other.execute("SELECT COUNT(*) FROM events").fetchone()[0] == 101
        other.close()

    def test_rows_keep_insertion_order(self, tmp_path):
        path = str(tmp_path / "order.sqlite")
        with SqliteSink(path, batch_size=3) as sink:
            for index in range(10):
                sink.emit(self._end(request_id=index))
        ids = [record["request_id"] for record in iter_sqlite_records(path)]
        assert ids == list(range(10))

    def test_scoped_adapter_stamps_per_instance(self, tmp_path):
        """One shared database, many instances: each scoped view stamps its
        own scope and scenario (the fleet scheduler's attachment pattern)."""
        path = str(tmp_path / "scoped.sqlite")
        with SqliteSink(path) as sink:
            a = sink.scoped({"server": "apache", "policy": "standard"}, 0)
            b = sink.scoped({"server": "pine", "policy": "boundless"}, 1)
            a.emit(self._end(request_id=10))
            b.emit(self._end(request_id=11))
            a.emit(self._end(request_id=12))
        records = list(iter_sqlite_records(path))
        stamps = [(r["scenario"], r["scope"]["server"]) for r in records]
        assert stamps == [(0, "apache"), (1, "pine"), (0, "apache")]

    def test_denormalized_columns_support_sql_filtering(self, tmp_path):
        path = str(tmp_path / "cols.sqlite")
        with SqliteSink(path, scope={"server": "mutt", "policy": "redirect"},
                        scenario=3) as sink:
            sink.emit(self._end())
        conn = sqlite3.connect(path)
        row = conn.execute(
            "SELECT scenario, event, server, policy, request_id FROM events"
        ).fetchone()
        conn.close()
        assert row == (3, "request-end", "mutt", "redirect", 1)

    def test_rejects_nonpositive_batch_size(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteSink(str(tmp_path / "bad.sqlite"), batch_size=0)

    def test_format_sniffing(self, tmp_path):
        db = str(tmp_path / "a.sqlite")
        with SqliteSink(db) as sink:
            sink.emit(self._end())
        jsonl = str(tmp_path / "a.jsonl")
        with open(jsonl, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(to_record(self._end())) + "\n")
        assert is_sqlite_file(db)
        assert not is_sqlite_file(jsonl)
        assert not is_sqlite_file(str(tmp_path / "missing.file"))
        # iter_trace_records dispatches on the sniff result.
        for path in (db, jsonl):
            (record,) = list(iter_trace_records(path))
            assert record["event"] == "request-end"


class TestMergeOrdering:
    def _spill(self, tmp_path, name, stamped):
        """Write one spill DB from (scenario, request_id) pairs, in order."""
        path = str(tmp_path / f"{name}.sqlite")
        with SqliteSink(path) as sink:
            for scenario, request_id in stamped:
                record = to_record(
                    RequestEnd(request_id=request_id, kind="get", outcome="served")
                )
                if scenario is not None:
                    record["scenario"] = scenario
                sink.write_record(record)
        return path

    def test_merge_orders_scenario_blocks_like_jsonl(self, tmp_path):
        """Contiguous scenario blocks sort by (scenario, discovery order);
        unscoped rows come first — the JSONL merge contract, per worker DB."""
        spill_a = self._spill(tmp_path, "a", [(2, 20), (2, 21), (0, 1)])
        spill_b = self._spill(tmp_path, "b", [(None, 90), (1, 10), (1, 11)])
        out = str(tmp_path / "merged.sqlite")
        written = merge_sqlite([spill_a, spill_b], out)
        assert written == 6
        merged = [
            (record.get("scenario"), record["request_id"])
            for record in iter_sqlite_records(out)
        ]
        assert merged == [
            (None, 90), (0, 1), (1, 10), (1, 11), (2, 20), (2, 21),
        ]

    def test_merge_overwrites_existing_output(self, tmp_path):
        spill = self._spill(tmp_path, "only", [(0, 1)])
        out = str(tmp_path / "merged.sqlite")
        assert merge_sqlite([spill], out) == 1
        assert merge_sqlite([spill], out) == 1  # not 2: fresh database
        assert len(list(iter_sqlite_records(out))) == 1

    def test_rows_within_a_block_keep_spill_order(self, tmp_path):
        spill = self._spill(tmp_path, "one", [(0, 5), (0, 3), (0, 4)])
        out = str(tmp_path / "merged.sqlite")
        merge_sqlite([spill], out)
        ids = [record["request_id"] for record in iter_sqlite_records(out)]
        assert ids == [5, 3, 4]

    def test_missing_spill_warns_and_merges_the_rest(self, tmp_path):
        """A worker that died before flushing must not destroy the export:
        the gap warns, every readable spill still merges."""
        spill_a = self._spill(tmp_path, "a", [(0, 1), (0, 2)])
        spill_b = self._spill(tmp_path, "b", [(1, 10)])
        missing = str(tmp_path / "never-written.sqlite")
        out = str(tmp_path / "merged.sqlite")
        with pytest.warns(UserWarning, match="never-written.*missing"):
            written = merge_sqlite([spill_a, missing, spill_b], out)
        assert written == 3
        ids = [record["request_id"] for record in iter_sqlite_records(out)]
        assert ids == [1, 2, 10]
        # And the sniffing skip did not leave an empty database behind.
        assert not os.path.exists(missing)

    def test_unreadable_spill_warns_and_merges_the_rest(self, tmp_path):
        spill_a = self._spill(tmp_path, "a", [(0, 1)])
        garbage = str(tmp_path / "garbage.sqlite")
        with open(garbage, "wb") as handle:
            handle.write(b"this is not a sqlite database at all")
        out = str(tmp_path / "merged.sqlite")
        with pytest.warns(UserWarning, match="garbage.*unreadable"):
            written = merge_sqlite([garbage, spill_a], out)
        assert written == 1
        ids = [record["request_id"] for record in iter_sqlite_records(out)]
        assert ids == [1]


class TestSummaryParity:
    def test_trace_summary_identical_from_sqlite_and_jsonl(self, tmp_path):
        """Acceptance: the same stream exported both ways summarizes (and
        filters) to identical counts through `repro trace summary`'s engine."""
        from repro.fleet.scheduler import InstanceSpec, run_fleet

        db = str(tmp_path / "fleet.sqlite")
        run_fleet(
            [
                InstanceSpec("apache", "failure-oblivious"),
                InstanceSpec("apache", "bounds-check"),
                InstanceSpec("pine", "failure-oblivious"),
            ],
            total_requests=150, seed=11, sqlite_path=db,
        )
        jsonl = str(tmp_path / "fleet.jsonl")
        with open(jsonl, "w", encoding="utf-8") as handle:
            for record in iter_sqlite_records(db):
                handle.write(json.dumps(record) + "\n")

        whole_db = summarize_trace(db)
        whole_jsonl = summarize_trace(jsonl)
        assert whole_db.total_events == whole_jsonl.total_events > 0
        assert whole_db == whole_jsonl
        filtered_db = summarize_trace(db, server="apache", kind="get")
        filtered_jsonl = summarize_trace(jsonl, server="apache", kind="get")
        assert filtered_db == filtered_jsonl
        assert filtered_db.total_events < whole_db.total_events
