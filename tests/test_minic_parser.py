"""Tests for the mini-C parser."""

import pytest

from repro.minic import ast_nodes as ast
from repro.minic.parser import ParseError, parse


def parse_function(body: str, name: str = "f") -> ast.FunctionDef:
    unit = parse(f"int {name}(int x) {{ {body} }}")
    return unit.function(name)


class TestTopLevel:
    def test_function_definition(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        function = unit.function("add")
        assert function.return_type.base == "int"
        assert [p.name for p in function.parameters] == ["a", "b"]

    def test_pointer_return_and_parameters(self):
        unit = parse("char *dup(const char *s, size_t n) { return 0; }")
        function = unit.function("dup")
        assert function.return_type.pointer_depth == 1
        assert function.parameters[0].type.pointer_depth == 1

    def test_void_parameter_list(self):
        unit = parse("int f(void) { return 1; }")
        assert unit.function("f").parameters == []

    def test_global_string_variable(self):
        unit = parse('static char *greeting = "hi";\nint f(void) { return 0; }')
        assert unit.globals[0].name == "greeting"
        assert isinstance(unit.globals[0].initializer, ast.StringLiteral)

    def test_global_array(self):
        unit = parse("int table[16];\nint f(void) { return 0; }")
        assert unit.globals[0].array_size is not None

    def test_unknown_function_lookup(self):
        unit = parse("int f(void) { return 0; }")
        with pytest.raises(KeyError):
            unit.function("g")

    def test_array_parameter_decays_to_pointer(self):
        unit = parse("int f(char buf[]) { return 0; }")
        assert unit.function("f").parameters[0].type.pointer_depth == 1


class TestStatements:
    def test_declarations_with_initializers(self):
        function = parse_function("int a = 1, b = 2; return a + b;")
        block = function.body
        declarations = [s for s in _flatten(block) if isinstance(s, ast.Declaration)]
        assert [d.name for d in declarations] == ["a", "b"]

    def test_mixed_pointer_declarators(self):
        function = parse_function("char *p, c; return 0;")
        declarations = [s for s in _flatten(function.body) if isinstance(s, ast.Declaration)]
        assert declarations[0].type.pointer_depth == 1
        assert declarations[1].type.pointer_depth == 0

    def test_array_declaration(self):
        function = parse_function("char buf[32]; return 0;")
        declaration = next(s for s in _flatten(function.body) if isinstance(s, ast.Declaration))
        assert isinstance(declaration.array_size, ast.IntLiteral)

    def test_if_else_chain(self):
        function = parse_function("if (x) return 1; else if (x + 1) return 2; else return 3;")
        statement = function.body.statements[0]
        assert isinstance(statement, ast.If)
        assert isinstance(statement.else_branch, ast.If)

    def test_while_and_for(self):
        function = parse_function("while (x) x = x - 1; for (x = 0; x < 3; x++) ;")
        assert isinstance(function.body.statements[0], ast.While)
        assert isinstance(function.body.statements[1], ast.For)

    def test_for_with_empty_clauses(self):
        function = parse_function("for (;;) break;")
        loop = function.body.statements[0]
        assert loop.init is None and loop.condition is None and loop.step is None

    def test_goto_and_label(self):
        function = parse_function("goto out; out: return 0;")
        assert isinstance(function.body.statements[0], ast.Goto)
        assert isinstance(function.body.statements[1], ast.Label)

    def test_break_continue_empty(self):
        function = parse_function("while (x) { break; } while (x) { continue; } ;")
        assert function.body.statements[-1].__class__ is ast.Empty

    def test_missing_semicolon_is_an_error(self):
        with pytest.raises(ParseError):
            parse("int f(void) { return 0 }")

    def test_unterminated_block_is_an_error(self):
        with pytest.raises(ParseError):
            parse("int f(void) { return 0;")


class TestExpressions:
    def test_precedence_of_shift_and_or(self):
        function = parse_function("return x << 2 | 1;")
        expr = function.body.statements[0].value
        assert isinstance(expr, ast.Binary) and expr.op == "|"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "<<"

    def test_assignment_is_right_associative(self):
        function = parse_function("int a; int b; a = b = 1; return a;")
        assign = function.body.statements[2].expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Assign)

    def test_compound_assignment(self):
        function = parse_function("x -= 6; return x;")
        assign = function.body.statements[0].expr
        assert assign.op == "-"

    def test_comma_operator(self):
        function = parse_function("x = 1, x = 2; return x;")
        assert isinstance(function.body.statements[0].expr, ast.Comma)

    def test_dereference_of_post_increment(self):
        function = parse_function("char *p; *p++ = 'x'; return 0;")
        assign = function.body.statements[1].expr
        assert isinstance(assign.target, ast.Unary) and assign.target.op == "*"
        assert isinstance(assign.target.operand, ast.IncDec)

    def test_index_expression(self):
        function = parse_function("return x[3];")
        assert isinstance(function.body.statements[0].value, ast.Index)

    def test_call_with_arguments(self):
        function = parse_function("return g(1, x + 2);")
        call = function.body.statements[0].value
        assert isinstance(call, ast.Call) and len(call.args) == 2

    def test_cast_expression(self):
        function = parse_function("return (unsigned char) x;")
        assert isinstance(function.body.statements[0].value, ast.Cast)

    def test_sizeof(self):
        function = parse_function("return sizeof(int);")
        assert isinstance(function.body.statements[0].value, ast.SizeOf)

    def test_ternary(self):
        function = parse_function("return x ? 1 : 2;")
        assert isinstance(function.body.statements[0].value, ast.Ternary)

    def test_null_keyword_is_zero_literal(self):
        function = parse_function("return NULL;")
        assert function.body.statements[0].value.value == 0

    def test_unary_operators(self):
        function = parse_function("return -x + !x + ~x;")
        assert isinstance(function.body.statements[0].value, ast.Binary)


def _flatten(block):
    for statement in block.statements:
        if isinstance(statement, ast.Block):
            yield from _flatten(statement)
        else:
            yield statement
