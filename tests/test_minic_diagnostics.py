"""Positioned diagnostics: every front-end layer reports ``line L, column C``.

The lexer tracks source positions through the preprocessor (a macro use is
reported at its use site), the parser stamps every AST node with the
position of its first token, and the interpreter threads those positions
into runtime type errors.  A user who feeds the toolchain real C gets
compiler-style messages, not Python tracebacks.
"""

from __future__ import annotations

import pytest

from repro.errors import MiniCError
from repro.minic import compile_program
from repro.minic.interpreter import MiniCRuntimeError
from repro.minic.lexer import LexError, tokenize
from repro.minic.parser import ParseError


class TestLexerPositions:
    def test_unexpected_character_is_positioned(self):
        with pytest.raises(LexError, match=r"line 2, column 5: unexpected character"):
            tokenize("int x;\n    @")

    def test_unterminated_string_is_positioned(self):
        with pytest.raises(LexError, match=r"line 1, column \d+: unterminated string"):
            tokenize('char *s = "oops;')

    def test_missing_include_is_positioned(self):
        with pytest.raises(LexError, match=r"line 3, .*'util\.h' not found"):
            tokenize('int a;\nint b;\n#include "util.h"\n')

    def test_macro_error_reports_the_use_site(self):
        # The macro body is defined on line 1; the broken expansion is
        # diagnosed where the macro is *used*.
        source = "#define BAD 1 +\nint x;\nint y() { return BAD; }"
        with pytest.raises(ParseError, match=r"line 3"):
            compile_program(source)


class TestParserPositions:
    def test_missing_semicolon_is_positioned(self):
        source = "int main(void) {\n    int x = 1\n    return x;\n}"
        with pytest.raises(ParseError, match=r"line 3, column 5:"):
            compile_program(source)

    def test_stray_token_reports_what_was_got(self):
        with pytest.raises(ParseError, match=r"\(got '\)'\)"):
            compile_program("int main(void) { return (1 + ); }")


class TestRuntimePositions:
    def test_dereferencing_an_int_names_the_line(self):
        source = "int main(void) {\n    int x = 3;\n    return *x;\n}"
        program = compile_program(source)
        instance = program.instantiate()
        with pytest.raises(
            MiniCRuntimeError,
            match=r"line 3, column \d+: cannot dereference a non-pointer value",
        ):
            instance.call("main")

    def test_indexing_an_int_names_the_line(self):
        source = "int main(void) {\n    int x = 3;\n    return x[0];\n}"
        program = compile_program(source)
        instance = program.instantiate()
        with pytest.raises(
            MiniCRuntimeError, match=r"line 3, .*cannot index a non-pointer value"
        ):
            instance.call("main")

    def test_every_front_end_error_is_a_minicerror(self):
        # One except clause catches the whole hierarchy — what the CLI and
        # the server host rely on.
        for source in ("int x = @;", "int f( {", "int f(void) { return *0; }"):
            with pytest.raises(MiniCError):
                program = compile_program(source)
                program.instantiate().call("f")
