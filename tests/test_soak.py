"""The sharded soak: deterministic chunking, worker-invariant tallies.

Shard boundaries depend only on the shard count, every shard starts from a
clone of the same post-boot image, and serial and pooled execution run the
same shard function — so the tallies must be identical however many workers
run them, and identical to the pre-checkpoint (reboot-per-death) cost model.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.engine import ENGINE, ScenarioSpec
from repro.harness.soak import SoakResult, run_soak_experiment, split_stream
from repro.servers.base import Request
from repro.telemetry.session import TelemetrySession
from repro.telemetry.summary import summarize_jsonl


class TestSplitStream:
    def test_contiguous_and_complete(self):
        requests = [Request(kind="k", payload={"i": i}) for i in range(11)]
        chunks = split_stream(requests, 4)
        assert [len(c) for c in chunks] == [3, 3, 3, 2]
        assert [r.payload["i"] for c in chunks for r in c] == list(range(11))

    def test_more_shards_than_requests(self):
        requests = [Request(kind="k") for _ in range(2)]
        assert [len(c) for c in split_stream(requests, 8)] == [1, 1]

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            split_stream([], 0)


SOAK_KW = dict(total_requests=60, attack_every=3, shards=4, seed=7)


class TestShardedSoak:
    def test_parallel_tallies_identical_to_serial(self):
        serial = run_soak_experiment("apache", "bounds-check", workers=0, **SOAK_KW)
        pooled = run_soak_experiment("apache", "bounds-check", workers=2, **SOAK_KW)
        assert serial.tally() == pooled.tally()
        assert pooled.shard_count == serial.shard_count == 4
        assert [s.index for s in pooled.shards] == [0, 1, 2, 3]

    def test_checkpoint_tallies_identical_to_reboot_per_death(self):
        checkpointed = run_soak_experiment("apache", "bounds-check", workers=0, **SOAK_KW)
        scratch = run_soak_experiment("apache", "bounds-check", workers=0,
                                      use_checkpoints=False, **SOAK_KW)
        assert checkpointed.tally() == scratch.tally()

    def test_failure_oblivious_soaks_without_deaths(self):
        result = run_soak_experiment("apache", "failure-oblivious", workers=0, **SOAK_KW)
        assert result.server_deaths == 0
        assert result.restarts == 0
        assert result.legitimate_failed == 0
        assert result.legitimate_served == result.legitimate_requests

    def test_bounds_check_deaths_are_recovered_by_restarts(self):
        result = run_soak_experiment("apache", "bounds-check", workers=0, **SOAK_KW)
        # Every attack kills the child; the monitor restores the boot image
        # before the next request, so no legitimate request is lost.
        assert result.server_deaths == result.attack_requests
        assert result.restarts > 0
        assert result.legitimate_failed == 0

    def test_fatal_boot_image_counts_deaths_like_stability(self):
        # Pine with the poisoned mailbox dies during boot under bounds-check.
        # Per shard, stability's accounting applies: the fatal boot (1 death)
        # plus a failed pre-stream retry (1 death), then one failed restart
        # per arriving request — so the totals are exact, not approximate.
        result = run_soak_experiment("pine", "bounds-check", workers=0, **SOAK_KW)
        assert result.boot_fatal
        assert result.legitimate_served == 0
        assert result.server_deaths == 2 * result.shard_count + result.total_requests
        assert result.restarts == result.shard_count + result.total_requests
        assert result.legitimate_failed == result.legitimate_requests

    def test_engine_workload_dispatch(self):
        spec = ScenarioSpec(server="apache", policy="bounds-check", workload="soak",
                            params={"total_requests": 30, "attack_every": 3,
                                    "shards": 2, "workers": 0, "seed": 7})
        result = ENGINE.run(spec)
        assert isinstance(result, SoakResult)
        assert result.total_requests == 30

    def test_throughput_is_reported(self):
        result = run_soak_experiment("apache", "bounds-check", workers=0, **SOAK_KW)
        assert result.requests_per_sec > 0
        assert result.wall_seconds > 0


class TestSoakTelemetry:
    def test_exported_stream_has_identical_counts_serial_and_pooled(self, tmp_path):
        """The PR 3 spill-file machinery carries shard events: pooled and
        serial runs export streams with identical aggregate counts."""
        summaries = {}
        for label, workers in (("serial", 0), ("pooled", 2)):
            out = os.path.join(tmp_path, f"{label}.jsonl")
            with TelemetrySession(directory=os.path.join(tmp_path, label)) as session:
                run_soak_experiment("apache", "bounds-check", workers=workers, **SOAK_KW)
                session.merge(out)
            scenario_ids = set()
            with open(out, "r", encoding="utf-8") as handle:
                for line in handle:
                    scenario_ids.add(json.loads(line).get("scenario"))
            summary = summarize_jsonl(out)
            summaries[label] = (
                summary.by_type,
                summary.counters.invalid_total,
                summary.counters.requests_by_outcome,
                scenario_ids,
            )
        # Identical counts AND identical stream shape: serial shards stamp
        # their scenario ids exactly like pooled shards do.
        assert summaries["serial"] == summaries["pooled"]

    def test_pooled_export_reads_in_stream_order(self, tmp_path):
        """Shards stamp their index as the scenario id, so the merged JSONL
        is ordered by shard even though workers interleave."""
        out = os.path.join(tmp_path, "soak.jsonl")
        with TelemetrySession(directory=os.path.join(tmp_path, "spill")) as session:
            run_soak_experiment("apache", "bounds-check", workers=2, **SOAK_KW)
            session.merge(out)
        scenario_of_request_start = []
        with open(out, "r", encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("event") == "request-start" and "scenario" in record:
                    scenario_of_request_start.append(record["scenario"])
        shard_ids = [sid for sid in scenario_of_request_start if sid >= 0]
        assert shard_ids == sorted(shard_ids)
        assert set(shard_ids) == {0, 1, 2, 3}
