"""Command-line interface: run any registered experiment from a shell.

Examples
--------
List the available experiments (one per paper table/figure)::

    python -m repro list

List the registered server profiles (the pluggable experiment subjects)::

    python -m repro profiles

Regenerate a figure or experiment table::

    python -m repro run fig3
    python -m repro run tab-security
    python -m repro run exp-throughput --repetitions 10

Run the documented attack against one server under one build::

    python -m repro attack mutt --policy failure-oblivious

Compile and run a mini-C source file under any build (the paper's
"recompile the same C source" adoption story as a shell command)::

    python -m repro minic run prog.c --policy failure-oblivious --call main
    python -m repro minic run prog.c --policy standard --call copy --arg "hello"
    python -m repro minic run prog.c --call main --trace minic.jsonl

Export a run's telemetry stream as JSONL and query it offline (``summary``
and ``filter`` accept SQLite exports from ``repro fleet run`` too — the
format is sniffed)::

    python -m repro trace export tab-security --out matrix.jsonl --workers 4
    python -m repro trace summary matrix.jsonl --server pine
    python -m repro trace filter matrix.jsonl --site quote --out pine-quote.jsonl
    python -m repro trace summary fleet.sqlite --policy failure-oblivious

Soak a whole fleet — many server instances (any mix of profiles x builds)
cloned from checkpoint images under seeded arrival processes — and rebuild
the per-instance availability table from the streamed SQLite telemetry
(``repro fleet`` is the scale path; the single-server ``exp-soak`` shards
just one server's stream)::

    python -m repro fleet run -i apache:failure-oblivious:4 -i pine:bounds-check \\
        --requests 100000 --workers 8 --sqlite-out fleet.sqlite
    python -m repro fleet report fleet.sqlite

Self-healing mode: supervise every instance with incremental snapshots and
rollback recovery, optionally under seeded fault injection::

    python -m repro fleet run -i apache:failure-oblivious:2 \\
        --recover 32 --retry-budget 1 --fault-every 50

Memory forensics: capture before/after snapshots around a server's
documented attack and diff them block by block (optionally joining per-site
error counts from an exported trace)::

    python -m repro forensics capture pine --policy failure-oblivious \\
        --before pre.snap --after post.snap --trace pine.jsonl
    python -m repro forensics diff pre.snap post.snap --trace pine.jsonl
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Dict, List, Optional

from repro.core.policies import POLICY_NAMES
from repro.fleet.scheduler import InstanceSpec, run_fleet
from repro.fleet.report import fleet_report_from_trace, format_fleet_table
from repro.fleet.traffic import ARRIVALS
from repro.harness.engine import ENGINE, ScenarioSpec
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import format_trace_summary
from repro.servers.profile import iter_profiles
from repro.telemetry.session import TelemetrySession
from repro.telemetry.summary import filter_records, iter_trace_records, summarize_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Failure-oblivious computing (OSDI 2004) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    subparsers.add_parser(
        "profiles", help="list the registered server profiles and their figure rows"
    )

    run_parser = subparsers.add_parser("run", help="run one registered experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument("--repetitions", type=int, default=None,
                            help="repetitions per figure cell (figures only)")
    run_parser.add_argument("--scale", type=float, default=None,
                            help="workload scale factor (see DESIGN.md)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="process count for experiments that fan out "
                                 "(figure cells, security-matrix cells, soak "
                                 "shards); default runs serially")

    attack_parser = subparsers.add_parser(
        "attack", help="run the documented attack scenario against one server"
    )
    attack_parser.add_argument("server", choices=ENGINE.profile_names())
    attack_parser.add_argument("--policy", choices=sorted(POLICY_NAMES),
                               default="failure-oblivious")
    attack_parser.add_argument("--scale", type=float, default=0.25,
                               help="workload scale factor")

    trace_parser = subparsers.add_parser(
        "trace", help="export, filter, and summarize telemetry event streams"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    export_parser = trace_sub.add_parser(
        "export", help="run one experiment and export its event stream as JSONL"
    )
    export_parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                               help="experiment id to run under telemetry export")
    export_parser.add_argument("--out", default="trace.jsonl",
                               help="output JSONL path (default: trace.jsonl)")
    export_parser.add_argument("--repetitions", type=int, default=None,
                               help="repetitions per figure cell (figures only)")
    export_parser.add_argument("--scale", type=float, default=None,
                               help="workload scale factor")
    export_parser.add_argument("--workers", type=int, default=None,
                               help="process count for experiments that fan out; "
                                    "per-worker spill files are merged in spec order")

    minic_parser = subparsers.add_parser(
        "minic", help="compile and run mini-C source on the simulated substrate"
    )
    minic_sub = minic_parser.add_subparsers(dest="minic_command", required=True)

    minic_run_parser = minic_sub.add_parser(
        "run", help="compile FILE.c under one build and call a function"
    )
    minic_run_parser.add_argument("file", help="mini-C source file")
    minic_run_parser.add_argument("--policy", choices=sorted(POLICY_NAMES),
                                  default="failure-oblivious",
                                  help="build variant to bind (the compiler choice)")
    minic_run_parser.add_argument("--call", default="main", metavar="FUNCTION",
                                  help="function to call (default: main)")
    minic_run_parser.add_argument("--arg", action="append", default=[],
                                  metavar="VALUE",
                                  help="argument for the call: an integer, or any "
                                       "other text as a NUL-terminated C string "
                                       "(repeatable, in order)")
    minic_run_parser.add_argument("--no-lower", action="store_true",
                                  help="skip the span-lowering pass and run the "
                                       "frozen per-byte tree-walk reference")
    minic_run_parser.add_argument("--trace", default=None, metavar="OUT",
                                  help="export the run's telemetry event stream "
                                       "as JSONL to this path")

    fleet_parser = subparsers.add_parser(
        "fleet", help="soak a heterogeneous fleet of server instances"
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command", required=True)

    fleet_run_parser = fleet_sub.add_parser(
        "run", help="run a seeded multi-instance fleet soak"
    )
    fleet_run_parser.add_argument(
        "--instance", "-i", action="append", default=None,
        metavar="SERVER:POLICY[:COUNT]",
        help="add COUNT instances of SERVER under POLICY (repeatable); "
             "default: every profile under failure-oblivious plus an "
             "apache bounds-check instance",
    )
    fleet_run_parser.add_argument("--requests", type=int, default=2000,
                                  help="total requests across the fleet")
    fleet_run_parser.add_argument("--attack-every", type=int, default=10,
                                  help="inject each instance's documented attack "
                                       "every N requests (0 disables)")
    fleet_run_parser.add_argument("--arrival", choices=sorted(ARRIVALS),
                                  default="poisson",
                                  help="arrival process for every instance")
    fleet_run_parser.add_argument("--rate", type=float, default=100.0,
                                  help="per-instance arrival rate "
                                       "(requests/virtual-second)")
    fleet_run_parser.add_argument("--seed", type=int, default=20040101,
                                  help="root seed; fleets are bit-reproducible "
                                       "in (seed, spec) regardless of --workers")
    fleet_run_parser.add_argument("--workers", type=int, default=None,
                                  help="fork-pool processes (default: serial, "
                                       "same tallies)")
    fleet_run_parser.add_argument("--shards", type=int, default=None,
                                  help="instance groups to schedule (default: "
                                       "one shard per instance)")
    fleet_run_parser.add_argument("--scale", type=float, default=0.25,
                                  help="workload scale factor")
    fleet_run_parser.add_argument("--history-limit", type=int, default=256,
                                  help="per-instance request-history bound")
    fleet_run_parser.add_argument("--unbounded-history", action="store_true",
                                  help="explicitly allow an unbounded "
                                       "per-request history (refused otherwise)")
    fleet_run_parser.add_argument("--sqlite-out", default=None,
                                  help="stream telemetry to this SQLite database "
                                       "(readable by `repro fleet report` and "
                                       "`repro trace summary`)")
    fleet_run_parser.add_argument("--stats-every", type=int, default=10_000,
                                  help="requests between live stats snapshots")
    fleet_run_parser.add_argument("--max-seconds", type=float, default=None,
                                  help="wall-clock budget; remaining requests "
                                       "are dropped once exceeded")
    fleet_run_parser.add_argument("--recover", type=int, default=None,
                                  metavar="SNAPSHOT_EVERY",
                                  help="self-healing mode: supervise every "
                                       "instance with an incremental snapshot "
                                       "every N requests and rollback recovery")
    fleet_run_parser.add_argument("--retry-budget", type=int, default=1,
                                  help="fatal retries per request before it is "
                                       "quarantined (with --recover)")
    fleet_run_parser.add_argument("--fault-rate", type=float, default=0.0,
                                  help="inject a seeded fault on this fraction "
                                       "of first attempts (implies recovery)")
    fleet_run_parser.add_argument("--fault-every", type=int, default=None,
                                  help="inject a seeded fault every Nth first "
                                       "attempt (implies recovery)")
    fleet_run_parser.add_argument("--fault-kinds", default=None,
                                  metavar="KIND[,KIND...]",
                                  help="comma-separated fault kinds to draw "
                                       "from (abort, alloc-fail, corrupt; "
                                       "default: all)")

    fleet_report_parser = fleet_sub.add_parser(
        "report", help="rebuild the per-instance table from an exported trace"
    )
    fleet_report_parser.add_argument(
        "file", help="SQLite (or JSONL) trace from a fleet run"
    )

    forensics_parser = subparsers.add_parser(
        "forensics", help="capture memory snapshots and diff them block by block"
    )
    forensics_sub = forensics_parser.add_subparsers(
        dest="forensics_command", required=True
    )

    capture_parser = forensics_sub.add_parser(
        "capture",
        help="snapshot a server before and after its documented attack",
    )
    capture_parser.add_argument("server", choices=ENGINE.profile_names())
    capture_parser.add_argument("--policy", choices=sorted(POLICY_NAMES),
                                default="failure-oblivious")
    capture_parser.add_argument("--scale", type=float, default=0.25,
                                help="workload scale factor")
    capture_parser.add_argument("--before", default="before.snap",
                                help="path for the pre-attack snapshot")
    capture_parser.add_argument("--after", default="after.snap",
                                help="path for the post-attack snapshot")
    capture_parser.add_argument("--trace", default=None, metavar="OUT",
                                help="also export the run's telemetry stream "
                                     "as JSONL to this path")

    diff_parser = forensics_sub.add_parser(
        "diff", help="show which 4 KiB blocks changed between two snapshots"
    )
    diff_parser.add_argument("snapshot_a", help="earlier snapshot file")
    diff_parser.add_argument("snapshot_b", help="later snapshot file")
    diff_parser.add_argument("--trace", default=None,
                             help="trace export (JSONL or SQLite); joins "
                                  "per-site memory-error counts to the diff")

    def add_trace_filters(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("file", help="trace produced by `repro trace export` "
                                         "(JSONL) or `repro fleet run` (SQLite)")
        parser.add_argument("--server", default=None, help="only events from this server")
        parser.add_argument("--policy", default=None, help="only events from this build")
        parser.add_argument("--site", default=None,
                            help="only access events whose site contains this substring")
        parser.add_argument("--kind", default=None,
                            help="only request events with this request kind")

    summary_parser = trace_sub.add_parser(
        "summary", help="aggregate an exported trace (optionally filtered)"
    )
    add_trace_filters(summary_parser)

    filter_parser = trace_sub.add_parser(
        "filter", help="write the matching subset of an exported trace"
    )
    add_trace_filters(filter_parser)
    filter_parser.add_argument("--out", default="-",
                               help="output JSONL path ('-' for stdout, the default)")
    return parser


def _command_list() -> int:
    for experiment_id in sorted(EXPERIMENTS):
        print(experiment_id)
    return 0


def _command_profiles() -> int:
    for profile in iter_profiles():
        figure = f"figure {profile.figure_number}" if profile.figure_number else "no figure"
        rows = ", ".join(profile.figure_rows) if profile.figure_rows else "-"
        attack = "attack" if profile.attack_request is not None else "no attack"
        print(f"{profile.name:<20} {figure:<10} [{attack}] rows: {rows}")
        if profile.description:
            print(f"{'':<20} {profile.description}")
    return 0


def _experiment_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Collect the experiment knobs this runner accepts, dropping others loudly.

    Not every experiment accepts every knob.  Drop only the knobs this
    experiment's runner does not take — loudly — instead of retrying with
    all defaults, which would silently ignore the knobs it *does* accept.
    """
    kwargs: Dict[str, object] = {}
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.workers is not None:
        kwargs["workers"] = args.workers
    runner = EXPERIMENTS[args.experiment]
    parameters = inspect.signature(runner).parameters
    accepts_kwargs = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    if not accepts_kwargs:
        for name in sorted(set(kwargs) - set(parameters)):
            print(
                f"note: {args.experiment} does not accept --{name}; ignoring it",
                file=sys.stderr,
            )
            del kwargs[name]
    return kwargs


def _command_run(args: argparse.Namespace) -> int:
    output = run_experiment(args.experiment, **_experiment_kwargs(args))
    print(output)
    return 0


def _command_attack(args: argparse.Namespace) -> int:
    scenario = ENGINE.run(
        ScenarioSpec(server=args.server, policy=args.policy,
                     workload="attack", scale=args.scale)
    )
    print(f"server            : {scenario.server}")
    print(f"build             : {scenario.policy}")
    print(f"boot              : {scenario.boot.outcome.value}")
    if scenario.attack is not None:
        print(f"attack request    : {scenario.attack.outcome.value}")
    for index, follow_up in enumerate(scenario.follow_ups, start=1):
        print(f"follow-up #{index}      : {follow_up.outcome.value}")
    print(f"survived attack   : {'yes' if scenario.survived_attack else 'no'}")
    print(f"continued service : {'yes' if scenario.continued_service else 'no'}")
    return 0 if scenario.continued_service or args.policy != "failure-oblivious" else 1


def _parse_minic_arg(text: str) -> object:
    """An integer when the text parses as one, otherwise C-string bytes."""
    try:
        return int(text, 0)
    except ValueError:
        return text.encode("utf-8")


def _command_minic_run(args: argparse.Namespace) -> int:
    """Compile a mini-C file, call into it, and report like an administrator.

    This is the paper's adoption story as a shell command: the same source
    file, recompiled with ``--policy``, crashes (standard), terminates
    (bounds-check), or keeps going while the error log records what was
    discarded (failure-oblivious).  ``--trace`` additionally exports the
    run's full telemetry stream for ``repro trace summary``.
    """
    import os

    from repro.errors import MemoryFault, MiniCError
    from repro.minic.interpreter import TypedPointer
    from repro.minic.lower import compile_program, lowered_count

    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    try:
        program = compile_program(source, lower=not args.no_lower)
    except MiniCError as error:
        print(f"compile error: {error}", file=sys.stderr)
        return 2

    call_args = [_parse_minic_arg(text) for text in args.arg]
    session = TelemetrySession() if args.trace else None
    site = f"{os.path.basename(args.file)}:{args.call}"
    fault: Optional[BaseException] = None
    result = None
    try:
        if session is not None:
            session.__enter__()
        try:
            instance = program.instantiate(POLICY_NAMES[args.policy]())
            instance.ctx.set_site(site)
            try:
                result = instance.call(args.call, *call_args)
            except (MemoryFault, MiniCError) as error:
                fault = error
            finally:
                instance.ctx.set_site("")
        finally:
            if session is not None:
                session.__exit__(None, None, None)
                written = session.merge(args.trace)
                print(f"exported {written} event(s) to {args.trace}", file=sys.stderr)
    finally:
        if session is not None:
            session.cleanup()

    print(f"source            : {args.file}")
    print(f"build             : {args.policy}")
    lowered = lowered_count(program.unit)
    mode = "tree-walk (lower=False)" if args.no_lower else f"{lowered} span-lowered loop(s)"
    print(f"compiled          : {mode}")
    if fault is not None:
        print(f"{args.call}({', '.join(args.arg)}) -> {type(fault).__name__}: {fault}")
    else:
        shown = result
        if isinstance(result, TypedPointer):
            shown = "NULL" if result.is_null else repr(instance.read_string(result))
        print(f"{args.call}({', '.join(args.arg)}) -> {shown}")
    if instance.output:
        print("program output    :")
        print(instance.output.decode("utf-8", errors="replace"), end="")
        if not instance.output.endswith(b"\n"):
            print()
    print()
    print(instance.ctx.error_log.summary())
    print(f"bounds checks     : {instance.ctx.check_cost()}")
    return 1 if fault is not None else 0


def _command_minic(args: argparse.Namespace) -> int:
    if args.minic_command == "run":
        return _command_minic_run(args)
    return 2  # pragma: no cover - argparse enforces the choices


#: The default fleet: every registered profile under the paper's build, plus
#: one Bounds Check instance as the availability contrast.
_DEFAULT_FLEET = (
    "apache:failure-oblivious:2",
    "pine:failure-oblivious",
    "sendmail:failure-oblivious",
    "midnight-commander:failure-oblivious",
    "mutt:failure-oblivious",
    "apache:bounds-check",
)


def parse_instance_spec(text: str, attack_every: int, arrival: str,
                        rate: float) -> InstanceSpec:
    """Parse one ``SERVER:POLICY[:COUNT]`` CLI spec line."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"bad instance spec {text!r}: expected SERVER:POLICY[:COUNT]"
        )
    count = 1
    if len(parts) == 3:
        try:
            count = int(parts[2])
        except ValueError:
            raise ValueError(
                f"bad instance spec {text!r}: COUNT must be an integer"
            ) from None
    return InstanceSpec(
        server=parts[0], policy=parts[1], count=count,
        attack_every=attack_every, arrival=arrival, rate=rate,
    )


def _command_fleet_run(args: argparse.Namespace) -> int:
    from repro.recovery import RecoveryPolicy
    from repro.recovery.faults import FAULT_KINDS

    spec_texts = args.instance if args.instance else list(_DEFAULT_FLEET)
    try:
        specs = [
            parse_instance_spec(text, args.attack_every, args.arrival, args.rate)
            for text in spec_texts
        ]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    history_limit = None if args.unbounded_history else args.history_limit
    recovery = None
    if args.recover is not None:
        recovery = RecoveryPolicy(
            snapshot_every=args.recover, retry_budget=args.retry_budget
        )
    fault_kinds = FAULT_KINDS
    if args.fault_kinds:
        fault_kinds = tuple(
            kind.strip() for kind in args.fault_kinds.split(",") if kind.strip()
        )
    try:
        result = run_fleet(
            specs,
            total_requests=args.requests,
            seed=args.seed,
            workers=args.workers,
            shards=args.shards,
            scale=args.scale,
            history_limit=history_limit,
            allow_unbounded_history=args.unbounded_history,
            sqlite_path=args.sqlite_out,
            stats_every=args.stats_every,
            max_seconds=args.max_seconds,
            recovery=recovery,
            fault_rate=args.fault_rate,
            fault_every=args.fault_every,
            fault_kinds=fault_kinds,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_fleet_table(result))
    if result.stats.snapshots:
        print(f"stats: {len(result.stats.snapshots)} snapshot(s), "
              f"{result.stats.requests_seen} requests / "
              f"{result.stats.events_seen} events seen")
    return 0


def _command_fleet_report(args: argparse.Namespace) -> int:
    tallies = fleet_report_from_trace(args.file)
    if not tallies:
        print(f"no instance-scoped events found in {args.file}", file=sys.stderr)
        return 1
    print(format_fleet_table(
        tallies, title=f"Fleet report: {args.file} (from export)"
    ))
    return 0


def _command_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "run":
        return _command_fleet_run(args)
    if args.fleet_command == "report":
        return _command_fleet_report(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _trace_site_counts(path: str) -> Dict[str, int]:
    """Aggregate per-site memory-error counts from an exported trace."""
    from repro.telemetry.events import RequestEnd, from_record

    counts: Dict[str, int] = {}
    for record in iter_trace_records(path):
        try:
            event = from_record(record)
        except (ValueError, KeyError, TypeError):
            continue
        if isinstance(event, RequestEnd):
            for site, count in event.error_sites:
                counts[site] = counts.get(site, 0) + count
    return counts


def _command_forensics_capture(args: argparse.Namespace) -> int:
    """Boot a server, snapshot, run its documented attack, snapshot again.

    The two files are ``repro-snapshot/v1`` sparse images; ``repro forensics
    diff`` then shows exactly which 4 KiB blocks the attack dirtied.
    """
    from repro.recovery import save_snapshot

    profile = ENGINE.profile(args.server)
    if profile.attack_request is None:
        print(f"error: {args.server} has no documented attack", file=sys.stderr)
        return 2
    session = TelemetrySession() if args.trace else None
    try:
        if session is not None:
            session.__enter__()
        try:
            server = ENGINE.build_server(
                args.server, args.policy, plant_attack=True, scale=args.scale
            )
            boot = server.start()
            if boot.fatal:
                print(
                    f"error: {args.server}/{args.policy} dies at boot "
                    f"({boot.outcome.value}); nothing to snapshot",
                    file=sys.stderr,
                )
                return 1
            for follow_up in profile.make_follow_ups():
                server.process(follow_up)
            label = f"{args.server}/{args.policy}"
            before = save_snapshot(
                args.before, server.ctx.space.checkpoint(), label=f"{label} pre-attack"
            )
            attack = server.process(profile.make_attack_request())
            after = save_snapshot(
                args.after, server.ctx.space.checkpoint(), label=f"{label} post-attack"
            )
            server.stop()
        finally:
            if session is not None:
                session.__exit__(None, None, None)
                written = session.merge(args.trace)
                print(f"exported {written} event(s) to {args.trace}", file=sys.stderr)
    finally:
        if session is not None:
            session.cleanup()
    print(f"server            : {args.server}")
    print(f"build             : {args.policy}")
    print(f"attack request    : {attack.outcome.value}")
    print(f"pre-attack image  : {args.before} "
          f"({before['blocks']} blocks, {before['payload_bytes']} bytes)")
    print(f"post-attack image : {args.after} "
          f"({after['blocks']} blocks, {after['payload_bytes']} bytes)")
    print(f"next              : python -m repro forensics diff "
          f"{args.before} {args.after}"
          + (f" --trace {args.trace}" if args.trace else ""))
    return 0


def _command_forensics_diff(args: argparse.Namespace) -> int:
    from repro.recovery import diff_snapshots, format_diff, load_snapshot

    try:
        cp_a, label_a = load_snapshot(args.snapshot_a)
        cp_b, label_b = load_snapshot(args.snapshot_b)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        diff = diff_snapshots(
            cp_a, cp_b,
            a_label=label_a or args.snapshot_a,
            b_label=label_b or args.snapshot_b,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    site_counts = None
    if args.trace is not None:
        site_counts = _trace_site_counts(args.trace)
    print(format_diff(diff, site_counts=site_counts))
    return 0


def _command_forensics(args: argparse.Namespace) -> int:
    if args.forensics_command == "capture":
        return _command_forensics_capture(args)
    if args.forensics_command == "diff":
        return _command_forensics_diff(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _command_trace_export(args: argparse.Namespace) -> int:
    kwargs = _experiment_kwargs(args)
    session = TelemetrySession()
    try:
        with session:
            run_experiment(args.experiment, **kwargs)
            written = session.merge(args.out)
    finally:
        session.cleanup()
    print(f"exported {written} event(s) to {args.out}")
    print()
    print(format_trace_summary(summarize_trace(args.out)))
    return 0


def _command_trace_summary(args: argparse.Namespace) -> int:
    summary = summarize_trace(
        args.file, server=args.server, policy=args.policy,
        site=args.site, kind=args.kind,
    )
    filters = ", ".join(
        f"{name}={value}"
        for name, value in (("server", args.server), ("policy", args.policy),
                            ("site", args.site), ("kind", args.kind))
        if value is not None
    )
    title = f"Telemetry trace summary: {args.file}" + (f" [{filters}]" if filters else "")
    print(format_trace_summary(summary, title=title))
    return 0


def _command_trace_filter(args: argparse.Namespace) -> int:
    records = filter_records(
        iter_trace_records(args.file), server=args.server, policy=args.policy,
        site=args.site, kind=args.kind,
    )
    if args.out == "-":
        for record in records:
            print(json.dumps(record))
        return 0
    count = 0
    with open(args.out, "w", encoding="utf-8") as out:
        for record in records:
            out.write(json.dumps(record) + "\n")
            count += 1
    print(f"wrote {count} matching event(s) to {args.out}", file=sys.stderr)
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        return _command_trace_export(args)
    if args.trace_command == "summary":
        return _command_trace_summary(args)
    if args.trace_command == "filter":
        return _command_trace_filter(args)
    return 2  # pragma: no cover - argparse enforces the choices


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "profiles":
        return _command_profiles()
    if args.command == "run":
        return _command_run(args)
    if args.command == "attack":
        return _command_attack(args)
    if args.command == "minic":
        return _command_minic(args)
    if args.command == "fleet":
        return _command_fleet(args)
    if args.command == "forensics":
        return _command_forensics(args)
    if args.command == "trace":
        return _command_trace(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
