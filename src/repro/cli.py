"""Command-line interface: run any registered experiment from a shell.

Examples
--------
List the available experiments (one per paper table/figure)::

    python -m repro list

List the registered server profiles (the pluggable experiment subjects)::

    python -m repro profiles

Regenerate a figure or experiment table::

    python -m repro run fig3
    python -m repro run tab-security
    python -m repro run exp-throughput --repetitions 10

Run the documented attack against one server under one build::

    python -m repro attack mutt --policy failure-oblivious

Export a run's telemetry stream as JSONL and query it offline::

    python -m repro trace export tab-security --out matrix.jsonl --workers 4
    python -m repro trace summary matrix.jsonl --server pine
    python -m repro trace filter matrix.jsonl --site quote --out pine-quote.jsonl
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Dict, List, Optional

from repro.core.policies import POLICY_NAMES
from repro.harness.engine import ENGINE, ScenarioSpec
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import format_trace_summary
from repro.servers.profile import iter_profiles
from repro.telemetry.session import TelemetrySession
from repro.telemetry.summary import filter_records, iter_records, summarize_jsonl


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Failure-oblivious computing (OSDI 2004) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    subparsers.add_parser(
        "profiles", help="list the registered server profiles and their figure rows"
    )

    run_parser = subparsers.add_parser("run", help="run one registered experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument("--repetitions", type=int, default=None,
                            help="repetitions per figure cell (figures only)")
    run_parser.add_argument("--scale", type=float, default=None,
                            help="workload scale factor (see DESIGN.md)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="process count for experiments that fan out "
                                 "(figure cells, security-matrix cells, soak "
                                 "shards); default runs serially")

    attack_parser = subparsers.add_parser(
        "attack", help="run the documented attack scenario against one server"
    )
    attack_parser.add_argument("server", choices=ENGINE.profile_names())
    attack_parser.add_argument("--policy", choices=sorted(POLICY_NAMES),
                               default="failure-oblivious")
    attack_parser.add_argument("--scale", type=float, default=0.25,
                               help="workload scale factor")

    trace_parser = subparsers.add_parser(
        "trace", help="export, filter, and summarize telemetry event streams"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    export_parser = trace_sub.add_parser(
        "export", help="run one experiment and export its event stream as JSONL"
    )
    export_parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                               help="experiment id to run under telemetry export")
    export_parser.add_argument("--out", default="trace.jsonl",
                               help="output JSONL path (default: trace.jsonl)")
    export_parser.add_argument("--repetitions", type=int, default=None,
                               help="repetitions per figure cell (figures only)")
    export_parser.add_argument("--scale", type=float, default=None,
                               help="workload scale factor")
    export_parser.add_argument("--workers", type=int, default=None,
                               help="process count for experiments that fan out; "
                                    "per-worker spill files are merged in spec order")

    def add_trace_filters(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("file", help="JSONL trace produced by `repro trace export`")
        parser.add_argument("--server", default=None, help="only events from this server")
        parser.add_argument("--policy", default=None, help="only events from this build")
        parser.add_argument("--site", default=None,
                            help="only access events whose site contains this substring")
        parser.add_argument("--kind", default=None,
                            help="only request events with this request kind")

    summary_parser = trace_sub.add_parser(
        "summary", help="aggregate an exported trace (optionally filtered)"
    )
    add_trace_filters(summary_parser)

    filter_parser = trace_sub.add_parser(
        "filter", help="write the matching subset of an exported trace"
    )
    add_trace_filters(filter_parser)
    filter_parser.add_argument("--out", default="-",
                               help="output JSONL path ('-' for stdout, the default)")
    return parser


def _command_list() -> int:
    for experiment_id in sorted(EXPERIMENTS):
        print(experiment_id)
    return 0


def _command_profiles() -> int:
    for profile in iter_profiles():
        figure = f"figure {profile.figure_number}" if profile.figure_number else "no figure"
        rows = ", ".join(profile.figure_rows) if profile.figure_rows else "-"
        attack = "attack" if profile.attack_request is not None else "no attack"
        print(f"{profile.name:<20} {figure:<10} [{attack}] rows: {rows}")
        if profile.description:
            print(f"{'':<20} {profile.description}")
    return 0


def _experiment_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Collect the experiment knobs this runner accepts, dropping others loudly.

    Not every experiment accepts every knob.  Drop only the knobs this
    experiment's runner does not take — loudly — instead of retrying with
    all defaults, which would silently ignore the knobs it *does* accept.
    """
    kwargs: Dict[str, object] = {}
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.workers is not None:
        kwargs["workers"] = args.workers
    runner = EXPERIMENTS[args.experiment]
    parameters = inspect.signature(runner).parameters
    accepts_kwargs = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    if not accepts_kwargs:
        for name in sorted(set(kwargs) - set(parameters)):
            print(
                f"note: {args.experiment} does not accept --{name}; ignoring it",
                file=sys.stderr,
            )
            del kwargs[name]
    return kwargs


def _command_run(args: argparse.Namespace) -> int:
    output = run_experiment(args.experiment, **_experiment_kwargs(args))
    print(output)
    return 0


def _command_attack(args: argparse.Namespace) -> int:
    scenario = ENGINE.run(
        ScenarioSpec(server=args.server, policy=args.policy,
                     workload="attack", scale=args.scale)
    )
    print(f"server            : {scenario.server}")
    print(f"build             : {scenario.policy}")
    print(f"boot              : {scenario.boot.outcome.value}")
    if scenario.attack is not None:
        print(f"attack request    : {scenario.attack.outcome.value}")
    for index, follow_up in enumerate(scenario.follow_ups, start=1):
        print(f"follow-up #{index}      : {follow_up.outcome.value}")
    print(f"survived attack   : {'yes' if scenario.survived_attack else 'no'}")
    print(f"continued service : {'yes' if scenario.continued_service else 'no'}")
    return 0 if scenario.continued_service or args.policy != "failure-oblivious" else 1


def _command_trace_export(args: argparse.Namespace) -> int:
    kwargs = _experiment_kwargs(args)
    session = TelemetrySession()
    try:
        with session:
            run_experiment(args.experiment, **kwargs)
            written = session.merge(args.out)
    finally:
        session.cleanup()
    print(f"exported {written} event(s) to {args.out}")
    print()
    print(format_trace_summary(summarize_jsonl(args.out)))
    return 0


def _command_trace_summary(args: argparse.Namespace) -> int:
    summary = summarize_jsonl(
        args.file, server=args.server, policy=args.policy,
        site=args.site, kind=args.kind,
    )
    filters = ", ".join(
        f"{name}={value}"
        for name, value in (("server", args.server), ("policy", args.policy),
                            ("site", args.site), ("kind", args.kind))
        if value is not None
    )
    title = f"Telemetry trace summary: {args.file}" + (f" [{filters}]" if filters else "")
    print(format_trace_summary(summary, title=title))
    return 0


def _command_trace_filter(args: argparse.Namespace) -> int:
    records = filter_records(
        iter_records(args.file), server=args.server, policy=args.policy,
        site=args.site, kind=args.kind,
    )
    if args.out == "-":
        for record in records:
            print(json.dumps(record))
        return 0
    count = 0
    with open(args.out, "w", encoding="utf-8") as out:
        for record in records:
            out.write(json.dumps(record) + "\n")
            count += 1
    print(f"wrote {count} matching event(s) to {args.out}", file=sys.stderr)
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        return _command_trace_export(args)
    if args.trace_command == "summary":
        return _command_trace_summary(args)
    if args.trace_command == "filter":
        return _command_trace_filter(args)
    return 2  # pragma: no cover - argparse enforces the choices


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "profiles":
        return _command_profiles()
    if args.command == "run":
        return _command_run(args)
    if args.command == "attack":
        return _command_attack(args)
    if args.command == "trace":
        return _command_trace(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
