"""Analyses supporting the paper's explanation of *why* failure-oblivious works.

* :mod:`repro.analysis.propagation` — measures data and control-flow error
  propagation distances (§1.2): how far the effects of a memory error reach
  into subsequent requests.
* :mod:`repro.analysis.availability` — availability metrics comparing
  continued execution with restart-based recovery (§5.6 discussion).
* :mod:`repro.analysis.security` — classification of attack outcomes into the
  paper's security categories (exploited / crashed / denied service / survived).
"""

from repro.analysis.availability import AvailabilityReport, compare_availability
from repro.analysis.propagation import PropagationReport, measure_propagation
from repro.analysis.security import SecurityAssessment, assess_security

__all__ = [
    "AvailabilityReport",
    "compare_availability",
    "PropagationReport",
    "measure_propagation",
    "SecurityAssessment",
    "assess_security",
]
