"""Error propagation distance measurement (paper §1.2).

The paper explains the success of failure-oblivious computing by the short
error propagation distances of servers:

    "an error in the computation for one request tends to have little or no
    effect on the computation for subsequent requests"

and distinguishes *data* propagation (corrupted state affecting later results)
from *control-flow* propagation (failing to return to the read-next-request
loop).  This module measures both for our simulated servers:

* **control-flow distance** — after a request that attempted memory errors,
  how many subsequent requests elapse before the server is again processing
  requests normally (0 if the very next request is handled; infinite if the
  server died).
* **data distance** — after such a request, how many subsequent legitimate
  requests produce responses that differ from a reference run of the same
  legitimate requests on a server that never saw the attack.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.harness.engine import ENGINE
from repro.servers.base import Request
from repro.telemetry.events import InvalidAccess
from repro.telemetry.sinks import Sink


class TraceRecorder(Sink):
    """Correlate invalid accesses with request traces from the event stream.

    Replaces the pre-telemetry bookkeeping that re-derived request/error
    correlation from each :class:`~repro.errors.RequestResult`: the recorder
    simply watches the server's bus and indexes
    :class:`~repro.telemetry.events.InvalidAccess` events by the request
    (trace) id stamped on them.
    """

    def __init__(self) -> None:
        self.invalid_by_request: Counter = Counter()

    def emit(self, event: object) -> None:
        if isinstance(event, InvalidAccess) and event.error.request_id is not None:
            self.invalid_by_request[event.error.request_id] += 1

    def had_errors(self, request_id: int) -> bool:
        """True if the trace for ``request_id`` attempted any memory error."""
        return self.invalid_by_request[request_id] > 0


@dataclass
class PropagationReport:
    """Propagation distances observed for one server under one policy."""

    server: str
    policy: str
    error_requests: int
    control_distances: List[float] = field(default_factory=list)
    data_distances: List[float] = field(default_factory=list)

    @property
    def max_control_distance(self) -> float:
        """Largest observed control-flow propagation distance."""
        return max(self.control_distances, default=0.0)

    @property
    def max_data_distance(self) -> float:
        """Largest observed data propagation distance."""
        return max(self.data_distances, default=0.0)

    @property
    def short_propagation(self) -> bool:
        """True if no error's effects reached beyond the request that triggered it."""
        return self.max_control_distance == 0.0 and self.max_data_distance == 0.0


def _response_signature(result) -> object:
    """A comparable digest of a request's user-visible result."""
    if result.response is None:
        return ("no-response", result.outcome.value)
    return (result.outcome.value, result.response.status, bytes(result.response.body))


def measure_propagation(
    server_name: str,
    policy_name: str,
    requests: Sequence[Request],
    scale: float = 0.25,
) -> PropagationReport:
    """Measure propagation distances over an interleaved attack/legitimate stream.

    The same legitimate subsequence is run on a *reference* server (same
    policy, same configuration, no attack requests); differences between the
    observed and reference responses after an error are the data propagation.
    """
    # Reference run: only the legitimate requests, on a pristine server.
    reference = ENGINE.build_server(server_name, policy_name, plant_attack=True, scale=scale)
    reference.start()
    reference_results: Dict[int, object] = {}
    legit_positions = [i for i, request in enumerate(requests) if not request.is_attack]
    for position in legit_positions:
        result = reference.process(_clone_request(requests[position]))
        reference_results[position] = _response_signature(result)

    # Observed run: the full stream, attacks included.  Error/request
    # correlation comes from the telemetry stream, not per-result bookkeeping:
    # the recorder indexes InvalidAccess events by their trace (request) id.
    observed = ENGINE.build_server(server_name, policy_name, plant_attack=True, scale=scale)
    recorder = observed.add_telemetry_sink(TraceRecorder())
    observed.start()
    observed_results: Dict[int, object] = {}
    trace_ids: Dict[int, int] = {}
    dead_from: Optional[int] = None
    for position, request in enumerate(requests):
        if not observed.alive:
            dead_from = position if dead_from is None else dead_from
            break
        clone = _clone_request(request)
        trace_ids[position] = clone.request_id
        result = observed.process(clone)
        if not request.is_attack:
            observed_results[position] = _response_signature(result)
    error_positions: List[int] = [
        position for position, trace_id in sorted(trace_ids.items())
        if recorder.had_errors(trace_id)
    ]

    report = PropagationReport(
        server=server_name,
        policy=policy_name,
        error_requests=len(error_positions),
    )
    for error_position in error_positions:
        report.control_distances.append(
            _control_distance(error_position, observed_results, dead_from, len(requests))
        )
        report.data_distances.append(
            _data_distance(error_position, observed_results, reference_results)
        )
    return report


def _clone_request(request: Request) -> Request:
    """Requests get fresh ids per run so error-log attribution stays unambiguous."""
    return Request(kind=request.kind, payload=dict(request.payload), is_attack=request.is_attack)


def _control_distance(
    error_position: int,
    observed: Dict[int, object],
    dead_from: Optional[int],
    total: int,
) -> float:
    """Requests after the error before normal processing resumes (inf if never)."""
    if dead_from is not None and dead_from > error_position:
        return math.inf
    later_positions = sorted(p for p in observed if p > error_position)
    if dead_from is not None:
        return math.inf
    if not later_positions:
        return 0.0
    # The server processed the next legitimate request; control flow returned
    # immediately, so the distance is 0.
    return 0.0


def _data_distance(
    error_position: int,
    observed: Dict[int, object],
    reference: Dict[int, object],
) -> float:
    """Number of subsequent legitimate requests whose results differ from the reference."""
    distance = 0
    for position in sorted(p for p in observed if p > error_position):
        if position not in reference:
            continue
        if observed[position] != reference[position]:
            distance += 1
        else:
            break
    return float(distance)
