"""Error propagation distance measurement (paper §1.2).

The paper explains the success of failure-oblivious computing by the short
error propagation distances of servers:

    "an error in the computation for one request tends to have little or no
    effect on the computation for subsequent requests"

and distinguishes *data* propagation (corrupted state affecting later results)
from *control-flow* propagation (failing to return to the read-next-request
loop).  This module measures both for our simulated servers:

* **control-flow distance** — after a request that attempted memory errors,
  how many subsequent requests elapse before the server is again processing
  requests normally (0 if the very next request is handled; infinite if the
  server died).
* **data distance** — after such a request, how many subsequent legitimate
  requests produce responses that differ from a reference run of the same
  legitimate requests on a server that never saw the attack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import RequestOutcome
from repro.harness.engine import ENGINE
from repro.servers.base import Request, Server


@dataclass
class PropagationReport:
    """Propagation distances observed for one server under one policy."""

    server: str
    policy: str
    error_requests: int
    control_distances: List[float] = field(default_factory=list)
    data_distances: List[float] = field(default_factory=list)

    @property
    def max_control_distance(self) -> float:
        """Largest observed control-flow propagation distance."""
        return max(self.control_distances, default=0.0)

    @property
    def max_data_distance(self) -> float:
        """Largest observed data propagation distance."""
        return max(self.data_distances, default=0.0)

    @property
    def short_propagation(self) -> bool:
        """True if no error's effects reached beyond the request that triggered it."""
        return self.max_control_distance == 0.0 and self.max_data_distance == 0.0


def _response_signature(result) -> object:
    """A comparable digest of a request's user-visible result."""
    if result.response is None:
        return ("no-response", result.outcome.value)
    return (result.outcome.value, result.response.status, bytes(result.response.body))


def measure_propagation(
    server_name: str,
    policy_name: str,
    requests: Sequence[Request],
    scale: float = 0.25,
) -> PropagationReport:
    """Measure propagation distances over an interleaved attack/legitimate stream.

    The same legitimate subsequence is run on a *reference* server (same
    policy, same configuration, no attack requests); differences between the
    observed and reference responses after an error are the data propagation.
    """
    # Reference run: only the legitimate requests, on a pristine server.
    reference = ENGINE.build_server(server_name, policy_name, plant_attack=True, scale=scale)
    reference.start()
    reference_results: Dict[int, object] = {}
    legit_positions = [i for i, request in enumerate(requests) if not request.is_attack]
    for position in legit_positions:
        result = reference.process(_clone_request(requests[position]))
        reference_results[position] = _response_signature(result)

    # Observed run: the full stream, attacks included.
    observed = ENGINE.build_server(server_name, policy_name, plant_attack=True, scale=scale)
    observed.start()
    observed_results: Dict[int, object] = {}
    error_positions: List[int] = []
    dead_from: Optional[int] = None
    for position, request in enumerate(requests):
        if not observed.alive:
            dead_from = position if dead_from is None else dead_from
            break
        result = observed.process(_clone_request(request))
        if result.memory_errors:
            error_positions.append(position)
        if not request.is_attack:
            observed_results[position] = _response_signature(result)

    report = PropagationReport(
        server=server_name,
        policy=policy_name,
        error_requests=len(error_positions),
    )
    for error_position in error_positions:
        report.control_distances.append(
            _control_distance(error_position, observed_results, dead_from, len(requests))
        )
        report.data_distances.append(
            _data_distance(error_position, observed_results, reference_results)
        )
    return report


def _clone_request(request: Request) -> Request:
    """Requests get fresh ids per run so error-log attribution stays unambiguous."""
    return Request(kind=request.kind, payload=dict(request.payload), is_attack=request.is_attack)


def _control_distance(
    error_position: int,
    observed: Dict[int, object],
    dead_from: Optional[int],
    total: int,
) -> float:
    """Requests after the error before normal processing resumes (inf if never)."""
    if dead_from is not None and dead_from > error_position:
        return math.inf
    later_positions = sorted(p for p in observed if p > error_position)
    if dead_from is not None:
        return math.inf
    if not later_positions:
        return 0.0
    # The server processed the next legitimate request; control flow returned
    # immediately, so the distance is 0.
    return 0.0


def _data_distance(
    error_position: int,
    observed: Dict[int, object],
    reference: Dict[int, object],
) -> float:
    """Number of subsequent legitimate requests whose results differ from the reference."""
    distance = 0
    for position in sorted(p for p in observed if p > error_position):
        if position not in reference:
            continue
        if observed[position] != reference[position]:
            distance += 1
        else:
            break
    return float(distance)
