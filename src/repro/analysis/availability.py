"""Availability metrics: continued execution versus restart-based recovery.

The paper argues (§1.4, §5.6) that failure-oblivious computing improves
availability relative both to crashing (Standard) and to terminate-and-restart
(Bounds Check plus a monitor), because restart costs time and, for servers
whose error trigger persists in the environment (Pine's mailbox, Mutt's
configured folder, Midnight Commander's configuration file), restarting simply
re-encounters the same error.

:func:`compare_availability` runs the same stability workload under several
builds and reports the fraction of legitimate requests served, the number of
process deaths, and the restart count for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.harness.stability import StabilityResult, run_stability_experiment


@dataclass
class AvailabilityReport:
    """Availability comparison across builds for one server."""

    server: str
    results: Dict[str, StabilityResult]

    def service_rate(self, policy: str) -> float:
        """Fraction of legitimate requests served under the given build."""
        return self.results[policy].legitimate_service_rate

    def best_policy(self) -> str:
        """The build with the best availability.

        Service rate is the primary criterion; ties (e.g. Apache, whose child
        pool keeps the Standard build serving too) are broken by fewer process
        deaths and then fewer restarts, since every death/restart is downtime
        and management overhead the paper's throughput experiment charges for.
        """
        return max(
            self.results,
            key=lambda policy: (
                self.results[policy].legitimate_service_rate,
                -self.results[policy].server_deaths,
                -self.results[policy].restarts,
            ),
        )

    def improvement_over(self, baseline: str, treatment: str = "failure-oblivious") -> float:
        """Ratio of service rates (treatment over baseline); inf if the baseline served nothing."""
        base = self.service_rate(baseline)
        treat = self.service_rate(treatment)
        if base == 0:
            return float("inf") if treat > 0 else 1.0
        return treat / base

    def summary_rows(self):
        """Rows (policy, served, failed, deaths, restarts, rate) for report tables."""
        rows = []
        for policy, result in self.results.items():
            rows.append(
                (
                    policy,
                    result.legitimate_served,
                    result.legitimate_failed,
                    result.server_deaths,
                    result.restarts,
                    f"{result.legitimate_service_rate:.3f}",
                )
            )
        return rows


def compare_availability(
    server_name: str,
    policies: Sequence[str] = ("standard", "bounds-check", "failure-oblivious"),
    total_requests: int = 120,
    attack_every: int = 20,
    restart_on_death: bool = True,
    seed: int = 20040101,
    scale: float = 0.25,
) -> AvailabilityReport:
    """Run the same mixed workload under each build and compare service rates."""
    results: Dict[str, StabilityResult] = {}
    for policy_name in policies:
        results[policy_name] = run_stability_experiment(
            server_name,
            policy_name,
            total_requests=total_requests,
            attack_every=attack_every,
            restart_on_death=restart_on_death,
            seed=seed,
            scale=scale,
        )
    return AvailabilityReport(server=server_name, results=results)
