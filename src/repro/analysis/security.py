"""Security outcome classification for the attack experiments.

The paper's security claim has two parts: the failure-oblivious build (1) is
not exploitable via the documented memory errors (the attacker can neither
corrupt the address space nor hijack control flow) and (2) keeps serving
legitimate users through the attack.  :func:`assess_security` condenses a
security-matrix run into those terms for each server and build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import RequestOutcome
from repro.harness.engine import ENGINE, SecurityCell


@dataclass
class SecurityAssessment:
    """Security verdict for one (server, build) pair."""

    server: str
    policy: str
    #: The attacker crashed the process (denial of service).
    denial_of_service: bool
    #: The attacker achieved control-flow hijack (arbitrary code execution analogue).
    code_execution: bool
    #: The server kept serving legitimate requests through the attack.
    continued_service: bool

    @property
    def invulnerable(self) -> bool:
        """True if the attack achieved neither code execution nor denial of service."""
        return not self.denial_of_service and not self.code_execution

    def verdict(self) -> str:
        """Short label used in reports."""
        if self.code_execution:
            return "exploitable (code execution)"
        if self.denial_of_service:
            return "denial of service"
        if self.continued_service:
            return "invulnerable, keeps serving"
        return "invulnerable, degraded service"


def assess_security(
    cells: Optional[Iterable[SecurityCell]] = None,
    servers: Optional[Sequence[str]] = None,
    policies: Sequence[str] = ("standard", "bounds-check", "failure-oblivious"),
    scale: float = 0.25,
) -> List[SecurityAssessment]:
    """Classify each (server, build) cell of the security matrix.

    Either pass pre-computed ``cells`` (from
    :func:`repro.harness.runner.run_security_matrix`) or let this function run
    the matrix itself.
    """
    if cells is None:
        cells = ENGINE.run_security_matrix(servers=servers, policies=policies, scale=scale)
    assessments: List[SecurityAssessment] = []
    for cell in cells:
        outcomes = [cell.boot_outcome]
        if cell.attack_outcome is not None:
            outcomes.append(cell.attack_outcome)
        denial = any(
            outcome in (
                RequestOutcome.CRASHED,
                RequestOutcome.TERMINATED_BY_CHECK,
                RequestOutcome.HUNG,
            )
            for outcome in outcomes
        )
        execution = any(outcome is RequestOutcome.EXPLOITED for outcome in outcomes)
        assessments.append(
            SecurityAssessment(
                server=cell.server,
                policy=cell.policy,
                denial_of_service=denial,
                code_execution=execution,
                continued_service=cell.continued_service,
            )
        )
    return assessments


def summarize_by_policy(assessments: Iterable[SecurityAssessment]) -> Dict[str, Dict[str, int]]:
    """Aggregate verdict counts per build, for the EXPERIMENTS.md summary."""
    summary: Dict[str, Dict[str, int]] = {}
    for assessment in assessments:
        bucket = summary.setdefault(
            assessment.policy,
            {"invulnerable": 0, "denial_of_service": 0, "code_execution": 0, "continued_service": 0},
        )
        if assessment.invulnerable:
            bucket["invulnerable"] += 1
        if assessment.denial_of_service:
            bucket["denial_of_service"] += 1
        if assessment.code_execution:
            bucket["code_execution"] += 1
        if assessment.continued_service:
            bucket["continued_service"] += 1
    return summary
