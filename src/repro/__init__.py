"""repro: failure-oblivious computing (Rinard et al., OSDI 2004) as a Python library.

The package reproduces the paper's system end to end:

* :mod:`repro.core` — the build variants (Standard, Bounds Check, Failure
  Oblivious, plus the §5.1 Boundless and Redirect variants), the manufactured
  value sequence, and the memory-error log.
* :mod:`repro.memory` — the simulated C memory substrate (address space,
  object table, heap allocator, call stack, fat pointers, policy-mediated
  accessor, C string routines).
* :mod:`repro.minic` — a mini-C front end and interpreter so the paper's
  Figure 1 routine can be run from C-like source under every policy.
* :mod:`repro.servers` — reimplementations of the five evaluated servers
  (Pine, Apache, Sendmail, Midnight Commander, Mutt) with their documented
  memory errors.
* :mod:`repro.workloads` — benign request generators and attack payloads.
* :mod:`repro.harness` — experiment runner, timing, and report tables that
  regenerate every figure in the paper's evaluation.
* :mod:`repro.analysis` — error-propagation-distance, availability, and
  security outcome analyses.

Quickstart
----------
>>> from repro import MemoryContext, FailureObliviousPolicy
>>> ctx = MemoryContext(FailureObliviousPolicy())
>>> buf = ctx.malloc(8, name="small")
>>> ctx.mem.write(buf + 6, b"overflowing")   # invalid suffix is discarded
>>> len(ctx.error_log)
1
"""

from repro.core import (
    AccessPolicy,
    BoundlessPolicy,
    BoundsCheckPolicy,
    FailureObliviousPolicy,
    ManufacturedValueSequence,
    MemoryErrorLog,
    RedirectPolicy,
    StandardPolicy,
    make_policy,
    POLICY_NAMES,
)
from repro.errors import (
    BoundsCheckViolation,
    ControlFlowHijack,
    HeapCorruption,
    MemoryErrorEvent,
    RequestOutcome,
    RequestResult,
    SegmentationFault,
)
from repro.memory import FatPointer, MemoryContext

__version__ = "1.0.0"

__all__ = [
    "AccessPolicy",
    "StandardPolicy",
    "BoundsCheckPolicy",
    "FailureObliviousPolicy",
    "BoundlessPolicy",
    "RedirectPolicy",
    "make_policy",
    "POLICY_NAMES",
    "ManufacturedValueSequence",
    "MemoryErrorLog",
    "MemoryContext",
    "FatPointer",
    "MemoryErrorEvent",
    "RequestOutcome",
    "RequestResult",
    "SegmentationFault",
    "BoundsCheckViolation",
    "ControlFlowHijack",
    "HeapCorruption",
    "__version__",
]
