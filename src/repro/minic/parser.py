"""Recursive-descent parser for the mini-C subset.

The grammar follows C's expression precedence; the statement forms are the
ones the paper's example code and the test programs need (declarations,
expression statements, ``if``/``else``, ``while``, ``for``, ``return``,
``break``/``continue``, ``goto``/labels, blocks).  On top of that the front
end covers the real-C shapes the paper's server functions lean on:

* ``struct`` definitions with scalar and pointer fields, member access via
  ``.`` and ``->``;
* ``typedef`` of scalar, pointer, struct, and function-pointer types;
* function-pointer declarators (``int (*cmp)(int, int)``) and calls through
  them (``cmp(a, b)`` or ``(*cmp)(a, b)``);
* ``sizeof(type)`` including ``sizeof(struct tag)``.

Every node produced here carries the ``(line, column)`` of its starting
token in ``node.pos``, which the compile checks and the interpreter thread
into their diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import MiniCError
from repro.minic import ast_nodes as ast
from repro.minic.lexer import Token, TokenType, tokenize


class ParseError(MiniCError):
    """Raised when the source does not conform to the supported subset."""


_TYPE_KEYWORDS = {"int", "char", "unsigned", "void", "size_t", "const", "static", "struct"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: Binary operator precedence levels, lowest binding first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Token-stream parser producing a :class:`~repro.minic.ast_nodes.TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0
        #: ``typedef`` aliases introduced so far, name -> aliased type.
        self.typedefs: Dict[str, ast.CType] = {}

    # -- token helpers -------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def check_punct(self, text: str) -> bool:
        return self.peek().is_punct(text)

    def accept_punct(self, text: str) -> bool:
        if self.check_punct(text):
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if not token.is_punct(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def accept_keyword(self, text: str) -> bool:
        if self.peek().is_keyword(text):
            self.advance()
            return True
        return False

    def error(self, message: str) -> ParseError:
        token = self.peek()
        shown = token.value if token.type is not TokenType.EOF else "<eof>"
        return ParseError(f"line {token.line}, column {token.column}: {message} (got {shown!r})")

    @staticmethod
    def _at(node, token: Token):
        """Stamp a node with its starting token's source position."""
        node.pos = (token.line, token.column)
        return node

    # -- types ---------------------------------------------------------------------

    def at_type(self) -> bool:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            return True
        return token.type is TokenType.IDENT and token.value in self.typedefs

    def parse_type(self, consume_pointers: bool = True) -> ast.CType:
        """Parse a type name: qualifiers, base scalar, and (optionally) ``*`` suffixes.

        Local declarations pass ``consume_pointers=False`` because in C the
        ``*`` belongs to each declarator (``char *p, c;`` declares one pointer
        and one plain char).
        """
        while self.accept_keyword("static") or self.accept_keyword("const"):
            pass
        unsigned = False
        if self.accept_keyword("unsigned"):
            unsigned = True
        base = "int"
        alias_depth = 0
        token = self.peek()
        if token.is_keyword("struct"):
            self.advance()
            tag = self.advance()
            if tag.type is not TokenType.IDENT:
                raise self.error("expected a struct tag")
            base = f"struct {tag.value}"
        elif token.type is TokenType.KEYWORD and token.value in ("int", "char", "void", "size_t"):
            self.advance()
            base = "int" if token.value == "size_t" else token.value
        elif token.type is TokenType.IDENT and token.value in self.typedefs:
            self.advance()
            aliased = self.typedefs[token.value]
            base = aliased.base
            alias_depth = aliased.pointer_depth
        elif not unsigned:
            raise self.error("expected a type name")
        while self.accept_keyword("const"):
            pass
        if unsigned:
            base = f"unsigned {base}" if base in ("char", "int") else base
        pointer_depth = alias_depth
        if consume_pointers:
            while self.accept_punct("*"):
                pointer_depth += 1
                while self.accept_keyword("const"):
                    pass
        return ast.CType(base=base, pointer_depth=pointer_depth)

    # -- top level -------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().type is not TokenType.EOF:
            token = self.peek()
            if token.is_keyword("typedef"):
                self._parse_typedef(unit)
                continue
            if (
                token.is_keyword("struct")
                and self.peek(1).type is TokenType.IDENT
                and self.peek(2).is_punct("{")
            ):
                unit.structs.append(self._parse_struct_def())
                continue
            declared_type = self.parse_type()
            name_token = self.peek()
            if name_token.type is not TokenType.IDENT:
                raise self.error("expected an identifier")
            self.advance()
            if self.check_punct("("):
                function = self._parse_function(declared_type, name_token.value)
                unit.functions.append(self._at(function, name_token))
            else:
                unit.globals.append(self._at(self._parse_global(declared_type, name_token.value), name_token))
        return unit

    def _parse_struct_fields(self) -> List[ast.StructField]:
        """Parse ``{ type name, ...; ... }`` — the body of a struct definition."""
        self.expect_punct("{")
        fields: List[ast.StructField] = []
        while not self.accept_punct("}"):
            if self.peek().type is TokenType.EOF:
                raise self.error("unterminated struct definition")
            field_type = self.parse_type(consume_pointers=False)
            while True:
                depth = 0
                while self.accept_punct("*"):
                    depth += 1
                name = self.advance()
                if name.type is not TokenType.IDENT:
                    raise self.error("expected a field name")
                if self.check_punct("["):
                    raise self.error("array struct fields are not supported by the subset")
                fields.append(
                    ast.StructField(
                        type=ast.CType(field_type.base, field_type.pointer_depth + depth),
                        name=name.value,
                    )
                )
                if not self.accept_punct(","):
                    break
            self.expect_punct(";")
        return fields

    def _parse_struct_def(self) -> ast.StructDef:
        start = self.advance()  # 'struct'
        tag = self.advance()  # IDENT, guaranteed by the caller's lookahead
        fields = self._parse_struct_fields()
        self.expect_punct(";")
        return self._at(ast.StructDef(name=tag.value, fields=fields), start)

    def _parse_typedef(self, unit: ast.TranslationUnit) -> None:
        start = self.advance()  # 'typedef'
        if self.peek().is_keyword("struct") and self.peek(1).is_punct("{"):
            # ``typedef struct { ... } Name;`` — the alias names the struct.
            self.advance()
            fields = self._parse_struct_fields()
            name = self.advance()
            if name.type is not TokenType.IDENT:
                raise self.error("expected a typedef name")
            self.expect_punct(";")
            unit.structs.append(self._at(ast.StructDef(name=name.value, fields=fields), start))
            self.typedefs[name.value] = ast.CType(f"struct {name.value}", 0)
            return
        aliased = self.parse_type()
        if self.check_punct("("):
            # ``typedef int (*name)(params);`` — an opaque function pointer.
            name = self._parse_funcptr_declarator()
            self.expect_punct(";")
            self.typedefs[name] = ast.CType("funcptr", 0)
            return
        name = self.advance()
        if name.type is not TokenType.IDENT:
            raise self.error("expected a typedef name")
        self.expect_punct(";")
        self.typedefs[name.value] = aliased

    def _parse_funcptr_declarator(self) -> str:
        """Parse ``(*name)(param-types)`` after the return type, yielding the name."""
        self.expect_punct("(")
        self.expect_punct("*")
        name = self.advance()
        if name.type is not TokenType.IDENT:
            raise self.error("expected a name in the function-pointer declarator")
        self.expect_punct(")")
        self.expect_punct("(")
        if not self.check_punct(")"):
            while True:
                if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
                    self.advance()
                    break
                self.parse_type()
                if self.peek().type is TokenType.IDENT:
                    self.advance()
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return name.value

    def _parse_function(self, return_type: ast.CType, name: str) -> ast.FunctionDef:
        self.expect_punct("(")
        parameters: List[ast.Parameter] = []
        if not self.check_punct(")"):
            while True:
                if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
                    self.advance()
                    break
                param_type = self.parse_type()
                if self.check_punct("(") and self.peek(1).is_punct("*"):
                    param_name = self._parse_funcptr_declarator()
                    parameters.append(
                        ast.Parameter(type=ast.CType("funcptr", 0), name=param_name)
                    )
                else:
                    name_token = self.advance()
                    if name_token.type is not TokenType.IDENT:
                        raise self.error("expected a parameter name")
                    # Array-style parameters decay to pointers.
                    if self.accept_punct("["):
                        self.expect_punct("]")
                        param_type = ast.CType(param_type.base, param_type.pointer_depth + 1)
                    parameters.append(ast.Parameter(type=param_type, name=name_token.value))
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        body = self.parse_block()
        return ast.FunctionDef(name=name, return_type=return_type, parameters=parameters, body=body)

    def _parse_global(self, var_type: ast.CType, name: str) -> ast.GlobalVar:
        array_size: Optional[ast.Expr] = None
        initializer: Optional[ast.Expr] = None
        if self.accept_punct("["):
            if not self.check_punct("]"):
                array_size = self.parse_assignment()
            self.expect_punct("]")
        if self.accept_punct("="):
            initializer = self.parse_assignment()
        self.expect_punct(";")
        return ast.GlobalVar(type=var_type, name=name, array_size=array_size, initializer=initializer)

    # -- statements --------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self.check_punct("}"):
            if self.peek().type is TokenType.EOF:
                raise self.error("unterminated block")
            statements.append(self.parse_statement())
        self.expect_punct("}")
        return self._at(ast.Block(statements=statements), start)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_punct(";"):
            self.advance()
            return self._at(ast.Empty(), token)
        if token.type is TokenType.KEYWORD:
            keyword = token.value
            if keyword in _TYPE_KEYWORDS:
                return self._parse_declaration()
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "return":
                self.advance()
                value = None if self.check_punct(";") else self.parse_expression()
                self.expect_punct(";")
                return self._at(ast.Return(value=value), token)
            if keyword == "break":
                self.advance()
                self.expect_punct(";")
                return self._at(ast.Break(), token)
            if keyword == "continue":
                self.advance()
                self.expect_punct(";")
                return self._at(ast.Continue(), token)
            if keyword == "goto":
                self.advance()
                label = self.advance()
                if label.type is not TokenType.IDENT:
                    raise self.error("expected a label name after goto")
                self.expect_punct(";")
                return self._at(ast.Goto(label=label.value), token)
        if token.type is TokenType.IDENT and self.peek(1).is_punct(":"):
            self.advance()
            self.advance()
            return self._at(ast.Label(name=token.value), token)
        if token.type is TokenType.IDENT and token.value in self.typedefs:
            return self._parse_declaration()
        expr = self.parse_expression()
        self.expect_punct(";")
        return self._at(ast.ExprStatement(expr=expr), token)

    def _parse_declaration(self) -> ast.Stmt:
        start = self.peek()
        declared_type = self.parse_type(consume_pointers=False)
        if self.check_punct("(") and self.peek(1).is_punct("*"):
            # ``int (*fp)(int);`` — a local function-pointer declarator.
            name = self._parse_funcptr_declarator()
            initializer: Optional[ast.Expr] = None
            if self.accept_punct("="):
                initializer = self.parse_assignment()
            self.expect_punct(";")
            return self._at(
                ast.Declaration(type=ast.CType("funcptr", 0), name=name, initializer=initializer),
                start,
            )
        declarations: List[ast.Stmt] = []
        while True:
            # Each declarator may add its own pointer depth: ``char *buf, *p;``
            extra_depth = 0
            while self.accept_punct("*"):
                extra_depth += 1
            name = self.advance()
            if name.type is not TokenType.IDENT:
                raise self.error("expected a variable name")
            var_type = ast.CType(declared_type.base, declared_type.pointer_depth + extra_depth)
            array_size: Optional[ast.Expr] = None
            initializer = None
            if self.accept_punct("["):
                array_size = self.parse_assignment()
                self.expect_punct("]")
            if self.accept_punct("="):
                initializer = self.parse_assignment()
            declarations.append(
                self._at(
                    ast.Declaration(
                        type=var_type, name=name.value, array_size=array_size, initializer=initializer
                    ),
                    name,
                )
            )
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        if len(declarations) == 1:
            return declarations[0]
        return self._at(ast.Block(statements=declarations), start)

    def _parse_if(self) -> ast.Stmt:
        start = self.advance()
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self.accept_keyword("else"):
            else_branch = self.parse_statement()
        return self._at(
            ast.If(condition=condition, then_branch=then_branch, else_branch=else_branch), start
        )

    def _parse_while(self) -> ast.Stmt:
        start = self.advance()
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return self._at(ast.While(condition=condition, body=body), start)

    def _parse_for(self) -> ast.Stmt:
        start = self.advance()
        self.expect_punct("(")
        init = None if self.check_punct(";") else self.parse_expression()
        self.expect_punct(";")
        condition = None if self.check_punct(";") else self.parse_expression()
        self.expect_punct(";")
        step = None if self.check_punct(")") else self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return self._at(ast.For(init=init, condition=condition, step=step, body=body), start)

    # -- expressions ----------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Full expression including the comma operator."""
        start = self.peek()
        first = self.parse_assignment()
        if not self.check_punct(","):
            return first
        parts = [first]
        while self.accept_punct(","):
            parts.append(self.parse_assignment())
        return self._at(ast.Comma(parts=parts), start)

    def parse_assignment(self) -> ast.Expr:
        start = self.peek()
        target = self.parse_ternary()
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            op = token.value[:-1] if token.value != "=" else ""
            return self._at(ast.Assign(target=target, op=op, value=value), start)
        return target

    def parse_ternary(self) -> ast.Expr:
        start = self.peek()
        condition = self.parse_binary(0)
        if self.accept_punct("?"):
            if_true = self.parse_assignment()
            self.expect_punct(":")
            if_false = self.parse_assignment()
            return self._at(
                ast.Ternary(condition=condition, if_true=if_true, if_false=if_false), start
            )
        return condition

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        while True:
            token = self.peek()
            if token.type is TokenType.PUNCT and token.value in _BINARY_LEVELS[level]:
                self.advance()
                right = self.parse_binary(level + 1)
                left = self._at(ast.Binary(op=token.value, left=left, right=right), token)
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.is_punct("++") or token.is_punct("--"):
            self.advance()
            operand = self.parse_unary()
            return self._at(ast.IncDec(target=operand, op=token.value, postfix=False), token)
        if token.type is TokenType.PUNCT and token.value in ("-", "!", "~", "*", "&", "+"):
            self.advance()
            operand = self.parse_unary()
            if token.value == "+":
                return operand
            return self._at(ast.Unary(op=token.value, operand=operand), token)
        if token.is_keyword("sizeof"):
            self.advance()
            self.expect_punct("(")
            size_type = self.parse_type()
            self.expect_punct(")")
            return self._at(ast.SizeOf(type=size_type), token)
        if token.is_punct("(") and self._looks_like_cast():
            self.advance()
            cast_type = self.parse_type()
            self.expect_punct(")")
            operand = self.parse_unary()
            return self._at(ast.Cast(type=cast_type, operand=operand), token)
        return self.parse_postfix()

    def _looks_like_cast(self) -> bool:
        next_token = self.peek(1)
        if next_token.type is TokenType.KEYWORD and next_token.value in _TYPE_KEYWORDS:
            return True
        return next_token.type is TokenType.IDENT and next_token.value in self.typedefs

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if self.accept_punct("["):
                index = self.parse_expression()
                self.expect_punct("]")
                expr = self._at(ast.Index(base=expr, index=index), token)
            elif self.check_punct(".") or self.check_punct("->"):
                op = self.advance().value
                name = self.advance()
                if name.type is not TokenType.IDENT:
                    raise self.error("expected a member name")
                expr = self._at(ast.Member(base=expr, name=name.value, arrow=op == "->"), token)
            elif self.check_punct("("):
                # Call through a computed callee: ``(*fp)(x)``, ``s.fn(x)``.
                expr = self._at(ast.IndirectCall(callee=expr, args=self._parse_args()), token)
            elif self.check_punct("++") or self.check_punct("--"):
                op = self.advance().value
                expr = self._at(ast.IncDec(target=expr, op=op, postfix=True), token)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER or token.type is TokenType.CHAR:
            self.advance()
            return self._at(ast.IntLiteral(value=int(token.value)), token)
        if token.type is TokenType.STRING:
            self.advance()
            return self._at(ast.StringLiteral(value=token.value), token)
        if token.is_keyword("NULL"):
            self.advance()
            return self._at(ast.IntLiteral(value=0), token)
        if token.type is TokenType.IDENT:
            self.advance()
            if self.check_punct("("):
                return self._at(ast.Call(name=token.value, args=self._parse_args()), token)
            return self._at(ast.Identifier(name=token.value), token)
        if self.accept_punct("("):
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise self.error("expected an expression")

    def _parse_args(self) -> List[ast.Expr]:
        self.expect_punct("(")
        args: List[ast.Expr] = []
        if not self.check_punct(")"):
            while True:
                args.append(self.parse_assignment())
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return args


def parse(source: str, includes=None, defines=None) -> ast.TranslationUnit:
    """Tokenize and parse source text into a translation unit."""
    return Parser(tokenize(source, includes=includes, defines=defines)).parse_translation_unit()
