"""Recursive-descent parser for the mini-C subset.

The grammar follows C's expression precedence; the statement forms are the
ones the paper's example code and the test programs need (declarations,
expression statements, ``if``/``else``, ``while``, ``for``, ``return``,
``break``/``continue``, ``goto``/labels, blocks).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import MiniCError
from repro.minic import ast_nodes as ast
from repro.minic.lexer import Token, TokenType, tokenize


class ParseError(MiniCError):
    """Raised when the source does not conform to the supported subset."""


_TYPE_KEYWORDS = {"int", "char", "unsigned", "void", "size_t", "const", "static", "struct"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: Binary operator precedence levels, lowest binding first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Token-stream parser producing a :class:`~repro.minic.ast_nodes.TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers -------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def check_punct(self, text: str) -> bool:
        return self.peek().is_punct(text)

    def accept_punct(self, text: str) -> bool:
        if self.check_punct(text):
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if not token.is_punct(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def accept_keyword(self, text: str) -> bool:
        if self.peek().is_keyword(text):
            self.advance()
            return True
        return False

    def error(self, message: str) -> ParseError:
        token = self.peek()
        shown = token.value if token.type is not TokenType.EOF else "<eof>"
        return ParseError(f"line {token.line}, column {token.column}: {message} (got {shown!r})")

    # -- types ---------------------------------------------------------------------

    def at_type(self) -> bool:
        token = self.peek()
        return token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS

    def parse_type(self, consume_pointers: bool = True) -> ast.CType:
        """Parse a type name: qualifiers, base scalar, and (optionally) ``*`` suffixes.

        Local declarations pass ``consume_pointers=False`` because in C the
        ``*`` belongs to each declarator (``char *p, c;`` declares one pointer
        and one plain char).
        """
        while self.accept_keyword("static") or self.accept_keyword("const"):
            pass
        unsigned = False
        if self.accept_keyword("unsigned"):
            unsigned = True
        base = "int"
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in ("int", "char", "void", "size_t"):
            self.advance()
            base = "int" if token.value == "size_t" else token.value
        elif not unsigned:
            raise self.error("expected a type name")
        while self.accept_keyword("const"):
            pass
        if unsigned:
            base = f"unsigned {base}" if base in ("char", "int") else base
        pointer_depth = 0
        if consume_pointers:
            while self.accept_punct("*"):
                pointer_depth += 1
                while self.accept_keyword("const"):
                    pass
        return ast.CType(base=base, pointer_depth=pointer_depth)

    # -- top level -------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().type is not TokenType.EOF:
            declared_type = self.parse_type()
            name_token = self.peek()
            if name_token.type is not TokenType.IDENT:
                raise self.error("expected an identifier")
            self.advance()
            if self.check_punct("("):
                unit.functions.append(self._parse_function(declared_type, name_token.value))
            else:
                unit.globals.append(self._parse_global(declared_type, name_token.value))
        return unit

    def _parse_function(self, return_type: ast.CType, name: str) -> ast.FunctionDef:
        self.expect_punct("(")
        parameters: List[ast.Parameter] = []
        if not self.check_punct(")"):
            while True:
                if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
                    self.advance()
                    break
                param_type = self.parse_type()
                param_name = self.advance()
                if param_name.type is not TokenType.IDENT:
                    raise self.error("expected a parameter name")
                # Array-style parameters decay to pointers.
                if self.accept_punct("["):
                    self.expect_punct("]")
                    param_type = ast.CType(param_type.base, param_type.pointer_depth + 1)
                parameters.append(ast.Parameter(type=param_type, name=param_name.value))
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        body = self.parse_block()
        return ast.FunctionDef(name=name, return_type=return_type, parameters=parameters, body=body)

    def _parse_global(self, var_type: ast.CType, name: str) -> ast.GlobalVar:
        array_size: Optional[ast.Expr] = None
        initializer: Optional[ast.Expr] = None
        if self.accept_punct("["):
            if not self.check_punct("]"):
                array_size = self.parse_assignment()
            self.expect_punct("]")
        if self.accept_punct("="):
            initializer = self.parse_assignment()
        self.expect_punct(";")
        return ast.GlobalVar(type=var_type, name=name, array_size=array_size, initializer=initializer)

    # -- statements --------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        self.expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self.check_punct("}"):
            if self.peek().type is TokenType.EOF:
                raise self.error("unterminated block")
            statements.append(self.parse_statement())
        self.expect_punct("}")
        return ast.Block(statements=statements)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_punct(";"):
            self.advance()
            return ast.Empty()
        if token.type is TokenType.KEYWORD:
            keyword = token.value
            if keyword in _TYPE_KEYWORDS:
                return self._parse_declaration()
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "return":
                self.advance()
                value = None if self.check_punct(";") else self.parse_expression()
                self.expect_punct(";")
                return ast.Return(value=value)
            if keyword == "break":
                self.advance()
                self.expect_punct(";")
                return ast.Break()
            if keyword == "continue":
                self.advance()
                self.expect_punct(";")
                return ast.Continue()
            if keyword == "goto":
                self.advance()
                label = self.advance()
                if label.type is not TokenType.IDENT:
                    raise self.error("expected a label name after goto")
                self.expect_punct(";")
                return ast.Goto(label=label.value)
        if token.type is TokenType.IDENT and self.peek(1).is_punct(":"):
            self.advance()
            self.advance()
            return ast.Label(name=token.value)
        expr = self.parse_expression()
        self.expect_punct(";")
        return ast.ExprStatement(expr=expr)

    def _parse_declaration(self) -> ast.Stmt:
        declared_type = self.parse_type(consume_pointers=False)
        declarations: List[ast.Stmt] = []
        while True:
            # Each declarator may add its own pointer depth: ``char *buf, *p;``
            extra_depth = 0
            while self.accept_punct("*"):
                extra_depth += 1
            name = self.advance()
            if name.type is not TokenType.IDENT:
                raise self.error("expected a variable name")
            var_type = ast.CType(declared_type.base, declared_type.pointer_depth + extra_depth)
            array_size: Optional[ast.Expr] = None
            initializer: Optional[ast.Expr] = None
            if self.accept_punct("["):
                array_size = self.parse_assignment()
                self.expect_punct("]")
            if self.accept_punct("="):
                initializer = self.parse_assignment()
            declarations.append(
                ast.Declaration(
                    type=var_type, name=name.value, array_size=array_size, initializer=initializer
                )
            )
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(statements=declarations)

    def _parse_if(self) -> ast.Stmt:
        self.advance()
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self.accept_keyword("else"):
            else_branch = self.parse_statement()
        return ast.If(condition=condition, then_branch=then_branch, else_branch=else_branch)

    def _parse_while(self) -> ast.Stmt:
        self.advance()
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.While(condition=condition, body=body)

    def _parse_for(self) -> ast.Stmt:
        self.advance()
        self.expect_punct("(")
        init = None if self.check_punct(";") else self.parse_expression()
        self.expect_punct(";")
        condition = None if self.check_punct(";") else self.parse_expression()
        self.expect_punct(";")
        step = None if self.check_punct(")") else self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.For(init=init, condition=condition, step=step, body=body)

    # -- expressions ----------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Full expression including the comma operator."""
        first = self.parse_assignment()
        if not self.check_punct(","):
            return first
        parts = [first]
        while self.accept_punct(","):
            parts.append(self.parse_assignment())
        return ast.Comma(parts=parts)

    def parse_assignment(self) -> ast.Expr:
        target = self.parse_ternary()
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            op = token.value[:-1] if token.value != "=" else ""
            return ast.Assign(target=target, op=op, value=value)
        return target

    def parse_ternary(self) -> ast.Expr:
        condition = self.parse_binary(0)
        if self.accept_punct("?"):
            if_true = self.parse_assignment()
            self.expect_punct(":")
            if_false = self.parse_assignment()
            return ast.Ternary(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        while True:
            token = self.peek()
            if token.type is TokenType.PUNCT and token.value in _BINARY_LEVELS[level]:
                self.advance()
                right = self.parse_binary(level + 1)
                left = ast.Binary(op=token.value, left=left, right=right)
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.is_punct("++") or token.is_punct("--"):
            self.advance()
            operand = self.parse_unary()
            return ast.IncDec(target=operand, op=token.value, postfix=False)
        if token.type is TokenType.PUNCT and token.value in ("-", "!", "~", "*", "&", "+"):
            self.advance()
            operand = self.parse_unary()
            if token.value == "+":
                return operand
            return ast.Unary(op=token.value, operand=operand)
        if token.is_keyword("sizeof"):
            self.advance()
            self.expect_punct("(")
            size_type = self.parse_type()
            self.expect_punct(")")
            return ast.SizeOf(type=size_type)
        if token.is_punct("(") and self._looks_like_cast():
            self.advance()
            cast_type = self.parse_type()
            self.expect_punct(")")
            operand = self.parse_unary()
            return ast.Cast(type=cast_type, operand=operand)
        return self.parse_postfix()

    def _looks_like_cast(self) -> bool:
        next_token = self.peek(1)
        return next_token.type is TokenType.KEYWORD and next_token.value in _TYPE_KEYWORDS

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept_punct("["):
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.Index(base=expr, index=index)
            elif self.check_punct("++") or self.check_punct("--"):
                op = self.advance().value
                expr = ast.IncDec(target=expr, op=op, postfix=True)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER or token.type is TokenType.CHAR:
            self.advance()
            return ast.IntLiteral(value=int(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.StringLiteral(value=token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.IntLiteral(value=0)
        if token.type is TokenType.IDENT:
            self.advance()
            if self.check_punct("("):
                return self._parse_call(token.value)
            return ast.Identifier(name=token.value)
        if self.accept_punct("("):
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise self.error("expected an expression")

    def _parse_call(self, name: str) -> ast.Expr:
        self.expect_punct("(")
        args: List[ast.Expr] = []
        if not self.check_punct(")"):
            while True:
                args.append(self.parse_assignment())
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return ast.Call(name=name, args=args)


def parse(source: str) -> ast.TranslationUnit:
    """Tokenize and parse source text into a translation unit."""
    return Parser(tokenize(source)).parse_translation_unit()
