"""Tree-walking interpreter executing mini-C over the simulated memory substrate.

Design notes
------------
* Scalar and pointer variables live in an interpreter-side environment;
  arrays, string literals, and heap allocations live in the simulated address
  space, and every element access goes through the policy-mediated accessor.
  This keeps the interpreter small while preserving the property the paper
  cares about: the consequences of an out-of-bounds access are decided by the
  build variant, not by the interpreter.
* Pointers are :class:`TypedPointer` values — a fat pointer plus the pointee
  size — so pointer arithmetic scales correctly and dereferences know how many
  bytes to touch.
* ``goto`` is supported for labels declared at any enclosing block level
  (enough for the paper's ``goto bail`` idiom); loops carry an iteration
  budget so a failure-oblivious run whose manufactured values never satisfy a
  loop condition surfaces as :class:`~repro.errors.InfiniteLoopGuard` instead
  of hanging the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.policy import AccessPolicy
from repro.errors import InfiniteLoopGuard, MiniCError
from repro.memory import cstring
from repro.memory.context import MemoryContext
from repro.memory.pointer import FatPointer
from repro.minic import ast_nodes as ast
from repro.minic.stdlib import BUILTINS

#: Iteration budget per loop construct.
LOOP_LIMIT = 1_000_000


class MiniCRuntimeError(MiniCError):
    """Raised for dynamic errors in interpreted programs (not memory errors)."""


def _position_prefix(node) -> str:
    """``"line L, column C: "`` when the node carries a parser position."""
    pos = getattr(node, "pos", (0, 0)) if node is not None else (0, 0)
    if pos and pos != (0, 0):
        return f"line {pos[0]}, column {pos[1]}: "
    return ""


@dataclass(frozen=True)
class TypedPointer:
    """A pointer value: a fat pointer plus the size of what it points to.

    ``ctype`` optionally records the pointee's declared C type; it is what
    lets ``p->field`` resolve a struct layout at runtime.  Pointer arithmetic
    preserves it (an element step over a struct array stays struct-typed).
    """

    pointer: FatPointer
    elem_size: int = 1
    ctype: Optional[ast.CType] = None

    @property
    def is_null(self) -> bool:
        return self.pointer.is_null

    def offset_by(self, elements: int) -> "TypedPointer":
        return TypedPointer(self.pointer + elements * self.elem_size, self.elem_size, self.ctype)


@dataclass(frozen=True)
class FunctionRef:
    """A function-pointer value: the name of a program or builtin function."""

    name: str


NULL_POINTER = TypedPointer(FatPointer.null(), 1)

Value = Union[int, TypedPointer, FunctionRef]

#: Struct pointer/function-pointer fields live in simulated memory as 4-byte
#: *handles* into a per-instance table.  Handle 0 is NULL; handles the table
#: does not know (zero-fill, attack corruption, manufactured values) decode to
#: NULL, so a failure-oblivious run degrades instead of faulting the VM.
_HANDLE_BASE = 0x40000001


@dataclass
class VarSlot:
    """One environment entry: the current value and the declared type."""

    value: Value
    type: ast.CType


class _ReturnSignal(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _GotoSignal(Exception):
    def __init__(self, label: str) -> None:
        self.label = label


def _truncate(value: Value, ctype: ast.CType) -> Value:
    """Apply C conversion rules when storing into a typed slot."""
    if isinstance(value, (TypedPointer, FunctionRef)) or ctype.is_pointer or ctype.base == "funcptr":
        return value
    if ctype.base == "char":
        value &= 0xFF
        return value - 256 if value >= 128 else value
    if ctype.base == "unsigned char":
        return value & 0xFF
    if ctype.base == "unsigned int":
        return value & 0xFFFFFFFF
    # plain int: wrap to 32-bit two's complement
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


@dataclass(frozen=True)
class StructLayout:
    """Packed byte layout of one struct: total size plus per-field placement."""

    name: str
    size: int
    #: field name -> (byte offset, declared type, stored size in bytes)
    fields: Dict[str, Tuple[int, ast.CType, int]]


class ProgramInstance:
    """One program bound to one memory context (one "compiled" process image)."""

    def __init__(self, unit: ast.TranslationUnit, ctx: MemoryContext) -> None:
        self.unit = unit
        self.ctx = ctx
        self.globals: Dict[str, VarSlot] = {}
        #: Bytes emitted by the ``putchar``/``puts`` builtins, for tests.
        self.output = bytearray()
        self._string_cache: Dict[bytes, TypedPointer] = {}
        self._layouts: Dict[str, StructLayout] = {}
        # Pointer-handle registry: struct pointer/funcptr fields are stored in
        # simulated memory as opaque 4-byte handles into this table.
        self._handles: Dict[int, Value] = {}
        self._handle_ids: Dict[Value, int] = {}
        self._next_handle = _HANDLE_BASE
        self._initialize_globals()

    # -- struct layouts and pointer handles -----------------------------------------

    def _layout(self, name: str, node=None) -> StructLayout:
        """Resolve (and cache) the packed layout of ``struct name``."""
        cached = self._layouts.get(name)
        if cached is not None:
            return cached
        try:
            definition = self.unit.struct(name)
        except KeyError:
            raise MiniCRuntimeError(
                f"{_position_prefix(node)}unknown struct {name!r}"
            ) from None
        fields: Dict[str, Tuple[int, ast.CType, int]] = {}
        offset = 0
        for field_def in definition.fields:
            ftype = field_def.type
            if ftype.is_pointer or ftype.base == "funcptr":
                size = 4
            elif ftype.is_struct:
                raise MiniCRuntimeError(
                    f"{_position_prefix(node)}by-value struct field "
                    f"{field_def.name!r} in struct {name!r} is not supported "
                    "(use a pointer field)"
                )
            else:
                size = ftype.scalar_size
            fields[field_def.name] = (offset, ftype, size)
            offset += size
        layout = StructLayout(name=name, size=max(offset, 1), fields=fields)
        self._layouts[name] = layout
        return layout

    def _type_size(self, ctype: ast.CType, node=None) -> int:
        """Size in bytes of a value of ``ctype`` when stored in memory."""
        if ctype.is_pointer or ctype.base == "funcptr":
            return 4
        if ctype.is_struct:
            return self._layout(ctype.struct_name, node=node).size
        return ctype.scalar_size

    def _retype_pointer(self, value: Value, ctype: ast.CType, node=None) -> Value:
        """Re-view a pointer value through a declared pointer type.

        C pointer conversions change the element stride: assigning a
        ``malloc`` result to ``struct address *`` makes ``p + 1`` step a
        whole struct and gives ``p->field`` its layout.  Non-pointer values
        and NULL pass through unchanged.
        """
        if not isinstance(value, TypedPointer) or not ctype.is_pointer or value.is_null:
            return value
        pointee = ctype.pointee()
        size = self._type_size(pointee, node=node)
        struct_type = ast.CType(pointee.base, 0) if pointee.is_struct and not pointee.is_pointer else None
        if value.elem_size == size and value.ctype == struct_type:
            return value
        return TypedPointer(value.pointer, size, struct_type)

    def _encode_ref(self, value: Value, node=None) -> int:
        """Handle for storing a pointer/function value into simulated memory."""
        if isinstance(value, int):
            if value == 0:
                return 0
            raise MiniCRuntimeError(
                f"{_position_prefix(node)}cannot store a plain integer into a pointer field"
            )
        if isinstance(value, TypedPointer) and value.is_null:
            return 0
        handle = self._handle_ids.get(value)
        if handle is None:
            handle = self._next_handle
            self._next_handle += 1
            self._handle_ids[value] = handle
            self._handles[handle] = value
        return handle

    def _decode_ref(self, raw: int, ctype: ast.CType) -> Value:
        """Value for a 4-byte handle read back out of simulated memory.

        Unknown handles — zero-initialized fields, bytes clobbered by an
        overflow, values manufactured by failure-oblivious reads — decode to
        NULL so the program sees a null pointer rather than the VM faulting.
        """
        value = self._handles.get(raw & 0xFFFFFFFF)
        if value is None:
            return NULL_POINTER
        return value

    def handle_state(self) -> tuple:
        """Snapshot of the handle registry (for server checkpoint/restore)."""
        return dict(self._handles), dict(self._handle_ids), self._next_handle

    def restore_handle_state(self, state: tuple) -> None:
        """Restore a snapshot taken by :meth:`handle_state`."""
        handles, handle_ids, next_handle = state
        self._handles = dict(handles)
        self._handle_ids = dict(handle_ids)
        self._next_handle = next_handle

    # -- setup ----------------------------------------------------------------------

    def _initialize_globals(self) -> None:
        for declaration in self.unit.globals:
            value: Value
            if declaration.initializer is not None:
                value = self._retype_pointer(
                    self._eval(declaration.initializer, {}), declaration.type, node=declaration
                )
            elif declaration.array_size is not None:
                size = self._eval(declaration.array_size, {})
                elem_type = ast.CType(declaration.type.base, declaration.type.pointer_depth)
                elem = self._type_size(elem_type, node=declaration)
                unit = self.ctx.heap.malloc(int(size) * elem, name=f"global:{declaration.name}")
                self.ctx.mem.zero_unit(unit)
                value = TypedPointer(
                    FatPointer(unit), elem, elem_type if elem_type.is_struct else None
                )
            else:
                value = 0 if not declaration.type.is_pointer else NULL_POINTER
            slot_type = declaration.type
            if declaration.array_size is not None or isinstance(value, TypedPointer):
                slot_type = ast.CType(declaration.type.base, max(declaration.type.pointer_depth, 1))
            self.globals[declaration.name] = VarSlot(value=value, type=slot_type)

    def alloc_string(self, data: bytes, name: str = "argument") -> TypedPointer:
        """Allocate a NUL-terminated byte string in the instance's heap."""
        pointer = self.ctx.alloc_c_string(data, name=name)
        return TypedPointer(pointer, 1)

    def read_string(self, value: Union[TypedPointer, FatPointer]) -> bytes:
        """Read a NUL-terminated string result back into Python bytes."""
        pointer = value.pointer if isinstance(value, TypedPointer) else value
        return self.ctx.read_c_string(pointer)

    # -- calls ----------------------------------------------------------------------

    def call(self, name: str, *args: Union[int, bytes, TypedPointer, FatPointer]) -> Value:
        """Call a function defined in the program.

        ``bytes`` arguments are automatically materialized as NUL-terminated
        strings in simulated memory; integers and pointers pass straight
        through.
        """
        function = self.unit.function(name)
        if len(args) != len(function.parameters):
            raise MiniCRuntimeError(
                f"{name} expects {len(function.parameters)} argument(s), got {len(args)}"
            )
        env: Dict[str, VarSlot] = {}
        for parameter, raw in zip(function.parameters, args):
            value: Value
            if isinstance(raw, bytes):
                value = self.alloc_string(raw, name=f"arg:{parameter.name}")
            elif isinstance(raw, FatPointer):
                value = self._retype_pointer(TypedPointer(raw, 1), parameter.type)
            else:
                value = self._retype_pointer(raw, parameter.type)
            env[parameter.name] = VarSlot(value=_truncate(value, parameter.type), type=parameter.type)
        try:
            self._exec_block(function.body, env)
        except _ReturnSignal as signal:
            return signal.value
        except _GotoSignal as signal:
            raise MiniCRuntimeError(f"goto to unknown label {signal.label!r}") from None
        return 0

    # -- statement execution -----------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Dict[str, VarSlot]) -> None:
        self._exec_statements(block.statements, env)

    def _exec_statements(self, statements: List[ast.Stmt], env: Dict[str, VarSlot]) -> None:
        index = 0
        while index < len(statements):
            try:
                self._exec(statements[index], env)
            except _GotoSignal as signal:
                target = self._find_label(statements, signal.label)
                if target is None:
                    raise
                index = target
                continue
            index += 1

    @staticmethod
    def _find_label(statements: List[ast.Stmt], label: str) -> Optional[int]:
        for position, statement in enumerate(statements):
            if isinstance(statement, ast.Label) and statement.name == label:
                return position
        return None

    def _exec(self, statement: ast.Stmt, env: Dict[str, VarSlot]) -> None:
        if isinstance(statement, ast.Block):
            self._exec_statements(statement.statements, env)
        elif isinstance(statement, ast.Declaration):
            self._exec_declaration(statement, env)
        elif isinstance(statement, ast.ExprStatement):
            self._eval(statement.expr, env)
        elif isinstance(statement, ast.If):
            if self._truthy(self._eval(statement.condition, env)):
                self._exec(statement.then_branch, env)
            elif statement.else_branch is not None:
                self._exec(statement.else_branch, env)
        elif isinstance(statement, ast.While):
            iterations = 0
            while self._truthy(self._eval(statement.condition, env)):
                iterations += 1
                if iterations > LOOP_LIMIT:
                    raise InfiniteLoopGuard("while loop exceeded its iteration budget")
                try:
                    self._exec(statement.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self._eval(statement.init, env)
            iterations = 0
            while statement.condition is None or self._truthy(self._eval(statement.condition, env)):
                iterations += 1
                if iterations > LOOP_LIMIT:
                    raise InfiniteLoopGuard("for loop exceeded its iteration budget")
                try:
                    self._exec(statement.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if statement.step is not None:
                    self._eval(statement.step, env)
        elif isinstance(statement, ast.Return):
            value = self._eval(statement.value, env) if statement.value is not None else 0
            raise _ReturnSignal(value)
        elif isinstance(statement, ast.Break):
            raise _BreakSignal()
        elif isinstance(statement, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(statement, ast.Goto):
            raise _GotoSignal(statement.label)
        elif isinstance(statement, (ast.Label, ast.Empty)):
            return
        elif isinstance(statement, ast.LoweredScan):
            self._exec_lowered_scan(statement, env)
        elif isinstance(statement, ast.LoweredScanConsume):
            self._exec_lowered_scan_consume(statement, env)
        elif isinstance(statement, ast.LoweredCopy):
            self._exec_lowered_copy(statement, env)
        elif isinstance(statement, ast.LoweredFillWhile):
            self._exec_lowered_fill_while(statement, env)
        elif isinstance(statement, ast.LoweredFillFor):
            self._exec_lowered_fill_for(statement, env)
        else:  # pragma: no cover - parser cannot produce other nodes
            raise MiniCRuntimeError(f"unsupported statement {type(statement).__name__}")

    # -- lowered span operations ---------------------------------------------------------
    #
    # Each handler checks its runtime preconditions (the matched variables
    # actually hold byte pointers / integers) and otherwise tree-walks the
    # preserved ``original`` loop, so lowering can never change meaning — only
    # batch the policy decisions.  Guard semantics match the tree-walk loops
    # byte for byte: the span paths consume exactly LOOP_LIMIT + 1 elements
    # before raising the same InfiniteLoopGuard the per-byte loop would.

    def _byte_pointer_slot(self, name: str, env: Dict[str, VarSlot]) -> Optional[VarSlot]:
        slot = self._find_slot(name, env)
        if slot is None or not isinstance(slot.value, TypedPointer) or slot.value.elem_size != 1:
            return None
        return slot

    def _exec_lowered_scan(self, statement: ast.LoweredScan, env: Dict[str, VarSlot]) -> None:
        slot = self._byte_pointer_slot(statement.pointer, env)
        if slot is None:
            self._exec(statement.original, env)
            return
        pointer: TypedPointer = slot.value
        try:
            length = cstring.strlen(self.ctx.mem, pointer.pointer, limit=LOOP_LIMIT)
        except InfiniteLoopGuard:
            raise InfiniteLoopGuard("while loop exceeded its iteration budget") from None
        slot.value = pointer.offset_by(length)

    def _exec_lowered_scan_consume(
        self, statement: ast.LoweredScanConsume, env: Dict[str, VarSlot]
    ) -> None:
        pointer_slot = self._byte_pointer_slot(statement.pointer, env)
        var_slot = self._find_slot(statement.var, env)
        if pointer_slot is None or var_slot is None:
            self._exec(statement.original, env)
            return
        pointer: TypedPointer = pointer_slot.value
        try:
            length = cstring.strlen(self.ctx.mem, pointer.pointer, limit=LOOP_LIMIT)
        except InfiniteLoopGuard:
            raise InfiniteLoopGuard("while loop exceeded its iteration budget") from None
        pointer_slot.value = pointer.offset_by(length + 1)
        var_slot.value = _truncate(0, var_slot.type)

    def _exec_lowered_copy(self, statement: ast.LoweredCopy, env: Dict[str, VarSlot]) -> None:
        dst_slot = self._byte_pointer_slot(statement.dst, env)
        src_slot = self._byte_pointer_slot(statement.src, env)
        if dst_slot is None or src_slot is None:
            self._exec(statement.original, env)
            return
        dst: TypedPointer = dst_slot.value
        src: TypedPointer = src_slot.value
        try:
            copied = cstring.copy_c_string(
                self.ctx.mem, dst.pointer, src.pointer, limit=LOOP_LIMIT
            )
        except InfiniteLoopGuard:
            raise InfiniteLoopGuard("while loop exceeded its iteration budget") from None
        dst_slot.value = dst.offset_by(copied)
        src_slot.value = src.offset_by(copied)

    def _fill_span(self, pointer: TypedPointer, value: int, count: int) -> None:
        """Write ``count`` copies of one byte, one policy decision per span/run."""
        if count <= 0:
            return
        cstring.write_bytes(self.ctx.mem, pointer.pointer, bytes([value & 0xFF]) * count)

    def _lowered_fill_value(self, expr: Optional[ast.Expr], env: Dict[str, VarSlot]):
        if expr is None:
            return None
        value = self._eval(expr, env)
        return value if isinstance(value, int) else None

    def _exec_lowered_fill_while(
        self, statement: ast.LoweredFillWhile, env: Dict[str, VarSlot]
    ) -> None:
        counter_slot = self._find_slot(statement.counter, env)
        pointer_slot = self._byte_pointer_slot(statement.pointer, env)
        fill = self._lowered_fill_value(statement.value, env)
        if (
            counter_slot is None
            or pointer_slot is None
            or fill is None
            or not isinstance(counter_slot.value, int)
        ):
            self._exec(statement.original, env)
            return
        count = counter_slot.value
        pointer: TypedPointer = pointer_slot.value
        # A negative (or budget-exceeding) counter stays truthy through the
        # whole budget: the loop writes LOOP_LIMIT bytes, then the guard fires.
        runaway = count < 0 or count > LOOP_LIMIT
        written = LOOP_LIMIT if runaway else count
        self._fill_span(pointer, fill, written)
        if runaway:
            raise InfiniteLoopGuard("while loop exceeded its iteration budget")
        counter_slot.value = _truncate(-1, counter_slot.type)
        pointer_slot.value = pointer.offset_by(written)

    def _exec_lowered_fill_for(
        self, statement: ast.LoweredFillFor, env: Dict[str, VarSlot]
    ) -> None:
        index_slot = self._find_slot(statement.index, env)
        pointer_slot = self._byte_pointer_slot(statement.pointer, env)
        fill = self._lowered_fill_value(statement.value, env)
        limit = self._lowered_fill_value(statement.limit, env)
        if index_slot is None or pointer_slot is None or fill is None or limit is None:
            self._exec(statement.original, env)
            return
        pointer: TypedPointer = pointer_slot.value
        runaway = limit > LOOP_LIMIT
        written = LOOP_LIMIT if runaway else max(limit, 0)
        self._fill_span(pointer, fill, written)
        if runaway:
            raise InfiniteLoopGuard("for loop exceeded its iteration budget")
        index_slot.value = _truncate(max(limit, 0), index_slot.type)

    def _exec_declaration(self, declaration: ast.Declaration, env: Dict[str, VarSlot]) -> None:
        if declaration.array_size is not None:
            length = int(self._eval(declaration.array_size, env))
            elem_type = ast.CType(declaration.type.base, declaration.type.pointer_depth)
            elem = self._type_size(elem_type, node=declaration)
            unit = self.ctx.stack.alloc_local(declaration.name, max(length * elem, 1)) \
                if self.ctx.stack.depth else self.ctx.heap.malloc(max(length * elem, 1), name=declaration.name)
            value: Value = TypedPointer(
                FatPointer(unit), elem, elem_type if elem_type.is_struct else None
            )
            env[declaration.name] = VarSlot(value=value, type=ast.CType(declaration.type.base, 1))
            return
        if declaration.type.is_struct and not declaration.type.is_pointer:
            # A by-value struct local: storage lives in simulated memory and
            # the slot holds a struct-typed pointer to it, so ``a.field``
            # resolves the layout and ``a`` decays where a pointer is needed.
            layout = self._layout(declaration.type.struct_name, node=declaration)
            unit = self.ctx.stack.alloc_local(declaration.name, layout.size) \
                if self.ctx.stack.depth else self.ctx.heap.malloc(layout.size, name=declaration.name)
            self.ctx.mem.zero_unit(unit)
            env[declaration.name] = VarSlot(
                value=TypedPointer(FatPointer(unit), layout.size, declaration.type),
                type=declaration.type,
            )
            return
        if declaration.initializer is not None:
            value = self._retype_pointer(
                self._eval(declaration.initializer, env), declaration.type, node=declaration
            )
        else:
            value = NULL_POINTER if declaration.type.is_pointer else 0
        env[declaration.name] = VarSlot(value=_truncate(value, declaration.type), type=declaration.type)

    # -- expression evaluation ------------------------------------------------------------

    def _truthy(self, value: Value) -> bool:
        if isinstance(value, TypedPointer):
            return not value.is_null
        if isinstance(value, FunctionRef):
            return True
        return value != 0

    def _error(self, message: str, node=None) -> MiniCRuntimeError:
        return MiniCRuntimeError(f"{_position_prefix(node)}{message}")

    def _find_slot(self, name: str, env: Dict[str, VarSlot]) -> Optional[VarSlot]:
        if name in env:
            return env[name]
        return self.globals.get(name)

    def _is_function_name(self, name: str) -> bool:
        return name in BUILTINS or any(f.name == name for f in self.unit.functions)

    def _lookup(self, name: str, env: Dict[str, VarSlot], node=None) -> VarSlot:
        slot = self._find_slot(name, env)
        if slot is None:
            raise self._error(f"undefined variable {name!r}", node)
        return slot

    def _eval(self, expr: ast.Expr, env: Dict[str, VarSlot]) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.StringLiteral):
            return self._string_literal(expr.value)
        if isinstance(expr, ast.Identifier):
            slot = self._find_slot(expr.name, env)
            if slot is not None:
                return slot.value
            if self._is_function_name(expr.name):
                # A bare function name evaluates to a function-pointer value.
                return FunctionRef(expr.name)
            raise self._error(f"undefined variable {expr.name!r}", expr)
        if isinstance(expr, ast.Comma):
            result: Value = 0
            for part in expr.parts:
                result = self._eval(part, env)
            return result
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, env)
        if isinstance(expr, ast.IncDec):
            return self._eval_incdec(expr, env)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Ternary):
            if self._truthy(self._eval(expr.condition, env)):
                return self._eval(expr.if_true, env)
            return self._eval(expr.if_false, env)
        if isinstance(expr, ast.Index):
            pointer, elem = self._index_pointer(expr, env)
            return self._load(pointer, elem)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.IndirectCall):
            callee = self._eval(expr.callee, env)
            args = [self._eval(argument, env) for argument in expr.args]
            return self._call_value(callee, args, node=expr)
        if isinstance(expr, ast.Member):
            return self._load_member(expr, env)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, env)
            if expr.type.is_pointer and isinstance(value, TypedPointer):
                return self._retype_pointer(value, expr.type, node=expr)
            if expr.type.is_pointer and isinstance(value, int) and value == 0:
                return NULL_POINTER
            if isinstance(value, FunctionRef):
                return value
            return _truncate(value, expr.type)
        if isinstance(expr, ast.SizeOf):
            if expr.type.is_pointer:
                return 4
            if expr.type.is_struct:
                return self._layout(expr.type.struct_name, node=expr).size
            return expr.type.scalar_size
        raise self._error(f"unsupported expression {type(expr).__name__}", expr)

    def _string_literal(self, data: bytes) -> TypedPointer:
        if data not in self._string_cache:
            pointer = self.ctx.alloc_c_string(data, name="string-literal")
            self._string_cache[data] = TypedPointer(pointer, 1)
        return self._string_cache[data]

    # -- lvalues and memory ------------------------------------------------------------

    def _index_pointer(self, expr: ast.Index, env: Dict[str, VarSlot]) -> tuple:
        base = self._eval(expr.base, env)
        if not isinstance(base, TypedPointer):
            raise self._error("cannot index a non-pointer value", expr)
        index = self._eval(expr.index, env)
        if isinstance(index, (TypedPointer, FunctionRef)):
            raise self._error("array index must be an integer", expr)
        return base.offset_by(int(index)), base.elem_size

    def _member_access(self, expr: ast.Member, env: Dict[str, VarSlot]) -> tuple:
        """Resolve ``base.name`` / ``base->name`` to (address, field type, field size)."""
        base = self._eval(expr.base, env)
        operator = "->" if expr.arrow else "."
        if not isinstance(base, TypedPointer):
            raise self._error(f"{operator}{expr.name} applied to a non-struct value", expr)
        if base.is_null:
            raise self._error(f"null pointer in {operator}{expr.name}", expr)
        if base.ctype is None or not base.ctype.is_struct:
            raise self._error(
                f"{operator}{expr.name} needs a struct-typed pointer "
                "(cast or declare the struct type first)",
                expr,
            )
        layout = self._layout(base.ctype.struct_name, node=expr)
        if expr.name not in layout.fields:
            raise self._error(f"struct {layout.name!r} has no field {expr.name!r}", expr)
        offset, ftype, fsize = layout.fields[expr.name]
        return base.pointer + offset, ftype, fsize

    def _load_member(self, expr: ast.Member, env: Dict[str, VarSlot]) -> Value:
        address, ftype, fsize = self._member_access(expr, env)
        mem = self.ctx.mem
        if ftype.is_pointer or ftype.base == "funcptr":
            raw = mem.read_int(address, size=4, signed=False)
            return self._decode_ref(raw, ftype)
        if fsize == 1:
            return _truncate(mem.read_byte(address), ftype)
        return mem.read_int(address, size=fsize, signed=ftype.base != "unsigned int")

    def _store_member(self, expr: ast.Member, env: Dict[str, VarSlot], value: Value) -> Value:
        address, ftype, fsize = self._member_access(expr, env)
        mem = self.ctx.mem
        if ftype.is_pointer or ftype.base == "funcptr":
            if ftype.is_pointer:
                value = self._retype_pointer(value, ftype, node=expr)
            raw = self._encode_ref(value, node=expr)
            mem.write_int(address, raw, size=4, signed=False)
            return value
        if isinstance(value, (TypedPointer, FunctionRef)):
            raise self._error("cannot store a pointer into a scalar struct field", expr)
        stored = _truncate(int(value), ftype)
        if fsize == 1:
            mem.write_byte(address, int(stored) & 0xFF)
        else:
            mem.write_int(address, int(stored) & 0xFFFFFFFF, size=fsize, signed=False)
        return stored

    def _load(self, pointer: TypedPointer, elem_size: int) -> int:
        if elem_size == 1:
            return self.ctx.mem.read_byte(pointer.pointer)
        return self.ctx.mem.read_int(pointer.pointer, size=elem_size, signed=True)

    def _store(self, pointer: TypedPointer, elem_size: int, value: Value) -> None:
        if isinstance(value, TypedPointer):
            raise MiniCRuntimeError("storing pointers into simulated memory is not supported")
        if elem_size == 1:
            self.ctx.mem.write_byte(pointer.pointer, int(value) & 0xFF)
        else:
            self.ctx.mem.write_int(pointer.pointer, int(value), size=elem_size, signed=True)

    def _assign_to(self, target: ast.Expr, env: Dict[str, VarSlot], value: Value) -> Value:
        if isinstance(target, ast.Identifier):
            slot = self._lookup(target.name, env, node=target)
            slot.value = _truncate(self._retype_pointer(value, slot.type, node=target), slot.type)
            return slot.value
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self._eval(target.operand, env)
            if not isinstance(pointer, TypedPointer):
                raise self._error("cannot dereference a non-pointer value", target)
            self._store(pointer, pointer.elem_size, value)
            return value
        if isinstance(target, ast.Index):
            pointer, elem = self._index_pointer(target, env)
            self._store(pointer, elem, value)
            return value
        if isinstance(target, ast.Member):
            return self._store_member(target, env, value)
        raise self._error(f"unsupported assignment target {type(target).__name__}", target)

    def _read_lvalue(self, target: ast.Expr, env: Dict[str, VarSlot]) -> Value:
        if isinstance(target, ast.Identifier):
            return self._lookup(target.name, env, node=target).value
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self._eval(target.operand, env)
            if not isinstance(pointer, TypedPointer):
                raise self._error("cannot dereference a non-pointer value", target)
            return self._load(pointer, pointer.elem_size)
        if isinstance(target, ast.Index):
            pointer, elem = self._index_pointer(target, env)
            return self._load(pointer, elem)
        if isinstance(target, ast.Member):
            return self._load_member(target, env)
        raise self._error(f"unsupported lvalue {type(target).__name__}", target)

    # -- operators -----------------------------------------------------------------------

    def _eval_assign(self, expr: ast.Assign, env: Dict[str, VarSlot]) -> Value:
        if expr.op == "":
            value = self._eval(expr.value, env)
            return self._assign_to(expr.target, env, value)
        current = self._read_lvalue(expr.target, env)
        operand = self._eval(expr.value, env)
        combined = self._apply_binary(expr.op, current, operand, node=expr)
        return self._assign_to(expr.target, env, combined)

    def _eval_incdec(self, expr: ast.IncDec, env: Dict[str, VarSlot]) -> Value:
        current = self._read_lvalue(expr.target, env)
        delta = 1 if expr.op == "++" else -1
        if isinstance(current, TypedPointer):
            updated: Value = current.offset_by(delta)
        else:
            updated = current + delta
        self._assign_to(expr.target, env, updated)
        return current if expr.postfix else updated

    def _eval_unary(self, expr: ast.Unary, env: Dict[str, VarSlot]) -> Value:
        if expr.op == "*":
            pointer = self._eval(expr.operand, env)
            if isinstance(pointer, FunctionRef):
                # ``*fp`` on a function pointer is the function itself.
                return pointer
            if not isinstance(pointer, TypedPointer):
                raise self._error("cannot dereference a non-pointer value", expr)
            return self._load(pointer, pointer.elem_size)
        if expr.op == "&":
            raise self._error(
                "the address-of operator is not supported by the mini-C subset", expr
            )
        value = self._eval(expr.operand, env)
        if isinstance(value, FunctionRef):
            if expr.op == "!":
                return 0
            raise self._error(f"unary {expr.op!r} is not defined for function pointers", expr)
        if isinstance(value, TypedPointer):
            if expr.op == "!":
                return 1 if value.is_null else 0
            raise self._error(f"unary {expr.op!r} is not defined for pointers", expr)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if value else 1
        if expr.op == "~":
            return ~value
        raise MiniCRuntimeError(f"unsupported unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.Binary, env: Dict[str, VarSlot]) -> Value:
        if expr.op == "&&":
            left = self._eval(expr.left, env)
            if not self._truthy(left):
                return 0
            return 1 if self._truthy(self._eval(expr.right, env)) else 0
        if expr.op == "||":
            left = self._eval(expr.left, env)
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self._eval(expr.right, env)) else 0
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return self._apply_binary(expr.op, left, right, node=expr)

    def _apply_binary(self, op: str, left: Value, right: Value, node=None) -> Value:
        if isinstance(left, FunctionRef) or isinstance(right, FunctionRef):
            if op in ("==", "!="):
                equal = left == right
                return (1 if equal else 0) if op == "==" else (0 if equal else 1)
            raise self._error(f"operator {op!r} is not defined for function pointers", node)
        left_is_ptr = isinstance(left, TypedPointer)
        right_is_ptr = isinstance(right, TypedPointer)
        if left_is_ptr or right_is_ptr:
            return self._pointer_binary(op, left, right, node=node)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise self._error("integer division by zero", node)
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if op == "%":
            if right == 0:
                raise self._error("integer modulo by zero", node)
            return left - right * ((abs(left) // abs(right)) if (left >= 0) == (right >= 0) else -(abs(left) // abs(right)))
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise self._error(f"unsupported binary operator {op!r}", node)

    def _pointer_binary(self, op: str, left: Value, right: Value, node=None) -> Value:
        if op == "+":
            if isinstance(left, TypedPointer) and not isinstance(right, TypedPointer):
                return left.offset_by(int(right))
            if isinstance(right, TypedPointer) and not isinstance(left, TypedPointer):
                return right.offset_by(int(left))
        if op == "-":
            if isinstance(left, TypedPointer) and isinstance(right, TypedPointer):
                return (left.pointer - right.pointer) // left.elem_size
            if isinstance(left, TypedPointer):
                return left.offset_by(-int(right))
        if op in ("==", "!=", "<", "<=", ">", ">="):
            left_addr = left.pointer.address if isinstance(left, TypedPointer) else int(left)
            right_addr = right.pointer.address if isinstance(right, TypedPointer) else int(right)
            return self._apply_binary(op, left_addr, right_addr, node=node)
        raise self._error(f"unsupported pointer operation {op!r}", node)

    # -- calls ----------------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, env: Dict[str, VarSlot]) -> Value:
        args = [self._eval(argument, env) for argument in expr.args]
        slot = self._find_slot(expr.name, env)
        if slot is not None and (
            isinstance(slot.value, FunctionRef) or slot.type.base == "funcptr"
        ):
            # A function-pointer variable called by name: ``cmp(a, b)``.
            return self._call_value(slot.value, args, node=expr)
        if expr.name in BUILTINS:
            return BUILTINS[expr.name](self, args)
        try:
            function = self.unit.function(expr.name)
        except KeyError:
            raise self._error(f"call to undefined function {expr.name!r}", expr) from None
        return self.call(function.name, *args)

    def _call_value(self, callee: Value, args: List[Value], node=None) -> Value:
        """Dispatch a call through a computed (function-pointer) callee."""
        if not isinstance(callee, FunctionRef):
            raise self._error("call through a non-function value", node)
        if callee.name in BUILTINS and not any(
            f.name == callee.name for f in self.unit.functions
        ):
            return BUILTINS[callee.name](self, args)
        try:
            function = self.unit.function(callee.name)
        except KeyError:
            raise self._error(f"call to undefined function {callee.name!r}", node) from None
        return self.call(function.name, *args)


class Program:
    """A parsed program that can be instantiated against any build variant."""

    def __init__(self, unit: ast.TranslationUnit, source: str = "") -> None:
        self.unit = unit
        self.source = source

    def instantiate(
        self,
        policy: Optional[AccessPolicy] = None,
        ctx: Optional[MemoryContext] = None,
    ) -> ProgramInstance:
        """Bind the program to a policy (the "choose a compiler" step)."""
        context = ctx if ctx is not None else MemoryContext(policy)
        return ProgramInstance(self.unit, context)

    def function_names(self) -> List[str]:
        """Names of the functions defined by the program."""
        return [function.name for function in self.unit.functions]
