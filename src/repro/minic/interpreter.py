"""Tree-walking interpreter executing mini-C over the simulated memory substrate.

Design notes
------------
* Scalar and pointer variables live in an interpreter-side environment;
  arrays, string literals, and heap allocations live in the simulated address
  space, and every element access goes through the policy-mediated accessor.
  This keeps the interpreter small while preserving the property the paper
  cares about: the consequences of an out-of-bounds access are decided by the
  build variant, not by the interpreter.
* Pointers are :class:`TypedPointer` values — a fat pointer plus the pointee
  size — so pointer arithmetic scales correctly and dereferences know how many
  bytes to touch.
* ``goto`` is supported for labels declared at any enclosing block level
  (enough for the paper's ``goto bail`` idiom); loops carry an iteration
  budget so a failure-oblivious run whose manufactured values never satisfy a
  loop condition surfaces as :class:`~repro.errors.InfiniteLoopGuard` instead
  of hanging the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.policy import AccessPolicy
from repro.errors import InfiniteLoopGuard, MiniCError
from repro.memory.context import MemoryContext
from repro.memory.pointer import FatPointer
from repro.minic import ast_nodes as ast
from repro.minic.stdlib import BUILTINS

#: Iteration budget per loop construct.
LOOP_LIMIT = 1_000_000


class MiniCRuntimeError(MiniCError):
    """Raised for dynamic errors in interpreted programs (not memory errors)."""


@dataclass(frozen=True)
class TypedPointer:
    """A pointer value: a fat pointer plus the size of what it points to."""

    pointer: FatPointer
    elem_size: int = 1

    @property
    def is_null(self) -> bool:
        return self.pointer.is_null

    def offset_by(self, elements: int) -> "TypedPointer":
        return TypedPointer(self.pointer + elements * self.elem_size, self.elem_size)


NULL_POINTER = TypedPointer(FatPointer.null(), 1)

Value = Union[int, TypedPointer]


@dataclass
class VarSlot:
    """One environment entry: the current value and the declared type."""

    value: Value
    type: ast.CType


class _ReturnSignal(Exception):
    def __init__(self, value: Value) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _GotoSignal(Exception):
    def __init__(self, label: str) -> None:
        self.label = label


def _truncate(value: Value, ctype: ast.CType) -> Value:
    """Apply C conversion rules when storing into a typed slot."""
    if isinstance(value, TypedPointer) or ctype.is_pointer:
        return value
    if ctype.base == "char":
        value &= 0xFF
        return value - 256 if value >= 128 else value
    if ctype.base == "unsigned char":
        return value & 0xFF
    if ctype.base == "unsigned int":
        return value & 0xFFFFFFFF
    # plain int: wrap to 32-bit two's complement
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


class ProgramInstance:
    """One program bound to one memory context (one "compiled" process image)."""

    def __init__(self, unit: ast.TranslationUnit, ctx: MemoryContext) -> None:
        self.unit = unit
        self.ctx = ctx
        self.globals: Dict[str, VarSlot] = {}
        #: Bytes emitted by the ``putchar``/``puts`` builtins, for tests.
        self.output = bytearray()
        self._string_cache: Dict[bytes, TypedPointer] = {}
        self._initialize_globals()

    # -- setup ----------------------------------------------------------------------

    def _initialize_globals(self) -> None:
        for declaration in self.unit.globals:
            value: Value
            if declaration.initializer is not None:
                value = self._eval(declaration.initializer, {})
            elif declaration.array_size is not None:
                size = self._eval(declaration.array_size, {})
                elem = ast.CType(declaration.type.base, declaration.type.pointer_depth).scalar_size
                unit = self.ctx.heap.malloc(int(size) * elem, name=f"global:{declaration.name}")
                self.ctx.mem.zero_unit(unit)
                value = TypedPointer(FatPointer(unit), elem)
            else:
                value = 0 if not declaration.type.is_pointer else NULL_POINTER
            slot_type = declaration.type
            if declaration.array_size is not None or isinstance(value, TypedPointer):
                slot_type = ast.CType(declaration.type.base, max(declaration.type.pointer_depth, 1))
            self.globals[declaration.name] = VarSlot(value=value, type=slot_type)

    def alloc_string(self, data: bytes, name: str = "argument") -> TypedPointer:
        """Allocate a NUL-terminated byte string in the instance's heap."""
        pointer = self.ctx.alloc_c_string(data, name=name)
        return TypedPointer(pointer, 1)

    def read_string(self, value: Union[TypedPointer, FatPointer]) -> bytes:
        """Read a NUL-terminated string result back into Python bytes."""
        pointer = value.pointer if isinstance(value, TypedPointer) else value
        return self.ctx.read_c_string(pointer)

    # -- calls ----------------------------------------------------------------------

    def call(self, name: str, *args: Union[int, bytes, TypedPointer, FatPointer]) -> Value:
        """Call a function defined in the program.

        ``bytes`` arguments are automatically materialized as NUL-terminated
        strings in simulated memory; integers and pointers pass straight
        through.
        """
        function = self.unit.function(name)
        if len(args) != len(function.parameters):
            raise MiniCRuntimeError(
                f"{name} expects {len(function.parameters)} argument(s), got {len(args)}"
            )
        env: Dict[str, VarSlot] = {}
        for parameter, raw in zip(function.parameters, args):
            value: Value
            if isinstance(raw, bytes):
                value = self.alloc_string(raw, name=f"arg:{parameter.name}")
            elif isinstance(raw, FatPointer):
                value = TypedPointer(raw, parameter.type.pointee().scalar_size if parameter.type.is_pointer else 1)
            else:
                value = raw
            env[parameter.name] = VarSlot(value=_truncate(value, parameter.type), type=parameter.type)
        try:
            self._exec_block(function.body, env)
        except _ReturnSignal as signal:
            return signal.value
        except _GotoSignal as signal:
            raise MiniCRuntimeError(f"goto to unknown label {signal.label!r}") from None
        return 0

    # -- statement execution -----------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Dict[str, VarSlot]) -> None:
        self._exec_statements(block.statements, env)

    def _exec_statements(self, statements: List[ast.Stmt], env: Dict[str, VarSlot]) -> None:
        index = 0
        while index < len(statements):
            try:
                self._exec(statements[index], env)
            except _GotoSignal as signal:
                target = self._find_label(statements, signal.label)
                if target is None:
                    raise
                index = target
                continue
            index += 1

    @staticmethod
    def _find_label(statements: List[ast.Stmt], label: str) -> Optional[int]:
        for position, statement in enumerate(statements):
            if isinstance(statement, ast.Label) and statement.name == label:
                return position
        return None

    def _exec(self, statement: ast.Stmt, env: Dict[str, VarSlot]) -> None:
        if isinstance(statement, ast.Block):
            self._exec_statements(statement.statements, env)
        elif isinstance(statement, ast.Declaration):
            self._exec_declaration(statement, env)
        elif isinstance(statement, ast.ExprStatement):
            self._eval(statement.expr, env)
        elif isinstance(statement, ast.If):
            if self._truthy(self._eval(statement.condition, env)):
                self._exec(statement.then_branch, env)
            elif statement.else_branch is not None:
                self._exec(statement.else_branch, env)
        elif isinstance(statement, ast.While):
            iterations = 0
            while self._truthy(self._eval(statement.condition, env)):
                iterations += 1
                if iterations > LOOP_LIMIT:
                    raise InfiniteLoopGuard("while loop exceeded its iteration budget")
                try:
                    self._exec(statement.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self._eval(statement.init, env)
            iterations = 0
            while statement.condition is None or self._truthy(self._eval(statement.condition, env)):
                iterations += 1
                if iterations > LOOP_LIMIT:
                    raise InfiniteLoopGuard("for loop exceeded its iteration budget")
                try:
                    self._exec(statement.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if statement.step is not None:
                    self._eval(statement.step, env)
        elif isinstance(statement, ast.Return):
            value = self._eval(statement.value, env) if statement.value is not None else 0
            raise _ReturnSignal(value)
        elif isinstance(statement, ast.Break):
            raise _BreakSignal()
        elif isinstance(statement, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(statement, ast.Goto):
            raise _GotoSignal(statement.label)
        elif isinstance(statement, (ast.Label, ast.Empty)):
            return
        else:  # pragma: no cover - parser cannot produce other nodes
            raise MiniCRuntimeError(f"unsupported statement {type(statement).__name__}")

    def _exec_declaration(self, declaration: ast.Declaration, env: Dict[str, VarSlot]) -> None:
        if declaration.array_size is not None:
            length = int(self._eval(declaration.array_size, env))
            elem = declaration.type.scalar_size
            unit = self.ctx.stack.alloc_local(declaration.name, max(length * elem, 1)) \
                if self.ctx.stack.depth else self.ctx.heap.malloc(max(length * elem, 1), name=declaration.name)
            value: Value = TypedPointer(FatPointer(unit), elem)
            env[declaration.name] = VarSlot(value=value, type=ast.CType(declaration.type.base, 1))
            return
        if declaration.initializer is not None:
            value = self._eval(declaration.initializer, env)
        else:
            value = NULL_POINTER if declaration.type.is_pointer else 0
        env[declaration.name] = VarSlot(value=_truncate(value, declaration.type), type=declaration.type)

    # -- expression evaluation ------------------------------------------------------------

    def _truthy(self, value: Value) -> bool:
        if isinstance(value, TypedPointer):
            return not value.is_null
        return value != 0

    def _lookup(self, name: str, env: Dict[str, VarSlot]) -> VarSlot:
        if name in env:
            return env[name]
        if name in self.globals:
            return self.globals[name]
        raise MiniCRuntimeError(f"undefined variable {name!r}")

    def _eval(self, expr: ast.Expr, env: Dict[str, VarSlot]) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.StringLiteral):
            return self._string_literal(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._lookup(expr.name, env).value
        if isinstance(expr, ast.Comma):
            result: Value = 0
            for part in expr.parts:
                result = self._eval(part, env)
            return result
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, env)
        if isinstance(expr, ast.IncDec):
            return self._eval_incdec(expr, env)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Ternary):
            if self._truthy(self._eval(expr.condition, env)):
                return self._eval(expr.if_true, env)
            return self._eval(expr.if_false, env)
        if isinstance(expr, ast.Index):
            pointer, elem = self._index_pointer(expr, env)
            return self._load(pointer, elem)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, env)
            if expr.type.is_pointer and isinstance(value, TypedPointer):
                return TypedPointer(value.pointer, expr.type.pointee().scalar_size)
            if expr.type.is_pointer and value == 0:
                return NULL_POINTER
            return _truncate(value, expr.type)
        if isinstance(expr, ast.SizeOf):
            return expr.type.scalar_size if not expr.type.is_pointer else 4
        raise MiniCRuntimeError(f"unsupported expression {type(expr).__name__}")

    def _string_literal(self, data: bytes) -> TypedPointer:
        if data not in self._string_cache:
            pointer = self.ctx.alloc_c_string(data, name="string-literal")
            self._string_cache[data] = TypedPointer(pointer, 1)
        return self._string_cache[data]

    # -- lvalues and memory ------------------------------------------------------------

    def _index_pointer(self, expr: ast.Index, env: Dict[str, VarSlot]) -> tuple:
        base = self._eval(expr.base, env)
        if not isinstance(base, TypedPointer):
            raise MiniCRuntimeError("cannot index a non-pointer value")
        index = self._eval(expr.index, env)
        if isinstance(index, TypedPointer):
            raise MiniCRuntimeError("array index must be an integer")
        return base.offset_by(int(index)), base.elem_size

    def _load(self, pointer: TypedPointer, elem_size: int) -> int:
        if elem_size == 1:
            return self.ctx.mem.read_byte(pointer.pointer)
        return self.ctx.mem.read_int(pointer.pointer, size=elem_size, signed=True)

    def _store(self, pointer: TypedPointer, elem_size: int, value: Value) -> None:
        if isinstance(value, TypedPointer):
            raise MiniCRuntimeError("storing pointers into simulated memory is not supported")
        if elem_size == 1:
            self.ctx.mem.write_byte(pointer.pointer, int(value) & 0xFF)
        else:
            self.ctx.mem.write_int(pointer.pointer, int(value), size=elem_size, signed=True)

    def _assign_to(self, target: ast.Expr, env: Dict[str, VarSlot], value: Value) -> Value:
        if isinstance(target, ast.Identifier):
            slot = self._lookup(target.name, env)
            slot.value = _truncate(value, slot.type)
            return slot.value
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self._eval(target.operand, env)
            if not isinstance(pointer, TypedPointer):
                raise MiniCRuntimeError("cannot dereference a non-pointer value")
            self._store(pointer, pointer.elem_size, value)
            return value
        if isinstance(target, ast.Index):
            pointer, elem = self._index_pointer(target, env)
            self._store(pointer, elem, value)
            return value
        raise MiniCRuntimeError(f"unsupported assignment target {type(target).__name__}")

    def _read_lvalue(self, target: ast.Expr, env: Dict[str, VarSlot]) -> Value:
        if isinstance(target, ast.Identifier):
            return self._lookup(target.name, env).value
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self._eval(target.operand, env)
            if not isinstance(pointer, TypedPointer):
                raise MiniCRuntimeError("cannot dereference a non-pointer value")
            return self._load(pointer, pointer.elem_size)
        if isinstance(target, ast.Index):
            pointer, elem = self._index_pointer(target, env)
            return self._load(pointer, elem)
        raise MiniCRuntimeError(f"unsupported lvalue {type(target).__name__}")

    # -- operators -----------------------------------------------------------------------

    def _eval_assign(self, expr: ast.Assign, env: Dict[str, VarSlot]) -> Value:
        if expr.op == "":
            value = self._eval(expr.value, env)
            return self._assign_to(expr.target, env, value)
        current = self._read_lvalue(expr.target, env)
        operand = self._eval(expr.value, env)
        combined = self._apply_binary(expr.op, current, operand)
        return self._assign_to(expr.target, env, combined)

    def _eval_incdec(self, expr: ast.IncDec, env: Dict[str, VarSlot]) -> Value:
        current = self._read_lvalue(expr.target, env)
        delta = 1 if expr.op == "++" else -1
        if isinstance(current, TypedPointer):
            updated: Value = current.offset_by(delta)
        else:
            updated = current + delta
        self._assign_to(expr.target, env, updated)
        return current if expr.postfix else updated

    def _eval_unary(self, expr: ast.Unary, env: Dict[str, VarSlot]) -> Value:
        if expr.op == "*":
            pointer = self._eval(expr.operand, env)
            if not isinstance(pointer, TypedPointer):
                raise MiniCRuntimeError("cannot dereference a non-pointer value")
            return self._load(pointer, pointer.elem_size)
        if expr.op == "&":
            raise MiniCRuntimeError(
                "the address-of operator is not supported by the mini-C subset"
            )
        value = self._eval(expr.operand, env)
        if isinstance(value, TypedPointer):
            if expr.op == "!":
                return 1 if value.is_null else 0
            raise MiniCRuntimeError(f"unary {expr.op!r} is not defined for pointers")
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if value else 1
        if expr.op == "~":
            return ~value
        raise MiniCRuntimeError(f"unsupported unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.Binary, env: Dict[str, VarSlot]) -> Value:
        if expr.op == "&&":
            left = self._eval(expr.left, env)
            if not self._truthy(left):
                return 0
            return 1 if self._truthy(self._eval(expr.right, env)) else 0
        if expr.op == "||":
            left = self._eval(expr.left, env)
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self._eval(expr.right, env)) else 0
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return self._apply_binary(expr.op, left, right)

    def _apply_binary(self, op: str, left: Value, right: Value) -> Value:
        left_is_ptr = isinstance(left, TypedPointer)
        right_is_ptr = isinstance(right, TypedPointer)
        if left_is_ptr or right_is_ptr:
            return self._pointer_binary(op, left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise MiniCRuntimeError("integer division by zero")
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if op == "%":
            if right == 0:
                raise MiniCRuntimeError("integer modulo by zero")
            return left - right * ((abs(left) // abs(right)) if (left >= 0) == (right >= 0) else -(abs(left) // abs(right)))
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise MiniCRuntimeError(f"unsupported binary operator {op!r}")

    def _pointer_binary(self, op: str, left: Value, right: Value) -> Value:
        if op == "+":
            if isinstance(left, TypedPointer) and not isinstance(right, TypedPointer):
                return left.offset_by(int(right))
            if isinstance(right, TypedPointer) and not isinstance(left, TypedPointer):
                return right.offset_by(int(left))
        if op == "-":
            if isinstance(left, TypedPointer) and isinstance(right, TypedPointer):
                return (left.pointer - right.pointer) // left.elem_size
            if isinstance(left, TypedPointer):
                return left.offset_by(-int(right))
        if op in ("==", "!=", "<", "<=", ">", ">="):
            left_addr = left.pointer.address if isinstance(left, TypedPointer) else int(left)
            right_addr = right.pointer.address if isinstance(right, TypedPointer) else int(right)
            return self._apply_binary(op, left_addr, right_addr)
        raise MiniCRuntimeError(f"unsupported pointer operation {op!r}")

    # -- calls ----------------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, env: Dict[str, VarSlot]) -> Value:
        args = [self._eval(argument, env) for argument in expr.args]
        if expr.name in BUILTINS:
            return BUILTINS[expr.name](self, args)
        try:
            function = self.unit.function(expr.name)
        except KeyError:
            raise MiniCRuntimeError(f"call to undefined function {expr.name!r}") from None
        return self.call(function.name, *args)


class Program:
    """A parsed program that can be instantiated against any build variant."""

    def __init__(self, unit: ast.TranslationUnit, source: str = "") -> None:
        self.unit = unit
        self.source = source

    def instantiate(
        self,
        policy: Optional[AccessPolicy] = None,
        ctx: Optional[MemoryContext] = None,
    ) -> ProgramInstance:
        """Bind the program to a policy (the "choose a compiler" step)."""
        context = ctx if ctx is not None else MemoryContext(policy)
        return ProgramInstance(self.unit, context)

    def function_names(self) -> List[str]:
        """Names of the functions defined by the program."""
        return [function.name for function in self.unit.functions]
