"""Tokenizer and minimal preprocessor for the mini-C subset.

The preprocessor handles the two directive shapes real server sources lean
on: ``#define NAME replacement`` object macros (expanded at the token level,
so a macro use carries the line/column of the *use site* in diagnostics) and
``#include "name"`` as pure concatenation — the included text is resolved
from a caller-provided mapping and its tokens are spliced in place.  Function
macros, conditionals, and system headers are out of scope; the front end
reports them with a position instead of guessing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.errors import MiniCError


class LexError(MiniCError):
    """Raised on malformed input text."""


class TokenType(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "int",
    "char",
    "unsigned",
    "void",
    "size_t",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "goto",
    "sizeof",
    "static",
    "const",
    "struct",
    "typedef",
    "NULL",
}

#: Multi-character punctuation, longest first so maximal munch works.
PUNCTUATION = [
    "<<=", ">>=", "...",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position for error messages."""

    type: TokenType
    value: object
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        """True if this token is the given punctuation."""
        return self.type is TokenType.PUNCT and self.value == text

    def is_keyword(self, text: str) -> bool:
        """True if this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == text


class _Scanner:
    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def advance(self, count: int = 1) -> str:
        text = self.source[self.position : self.position + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def at_end(self) -> bool:
        return self.position >= len(self.source)

    def error(self, message: str) -> LexError:
        return LexError(f"line {self.line}, column {self.column}: {message}")


def tokenize(
    source: str,
    includes: Optional[Mapping[str, str]] = None,
    defines: Optional[Mapping[str, str]] = None,
) -> List[Token]:
    """Convert source text into a token list ending with an EOF token.

    ``includes`` maps ``#include "name"`` names to their source text (pure
    concatenation — the included tokens are spliced in place and may add
    macros and declarations).  ``defines`` pre-populates object macros, as if
    each entry had been ``#define``-d before line one.
    """
    macros: Dict[str, List[Token]] = {}
    include_map = dict(includes or {})
    for name, text in (defines or {}).items():
        macros[name] = _lex(str(text), {}, {})[0]
    tokens, line, column = _lex(source, include_map, macros)
    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens


def _expand_macro(
    name: str, macros: Dict[str, List[Token]], line: int, column: int, active: frozenset
) -> List[Token]:
    """Expand one object macro, rescanning its body for further macro uses.

    Every produced token carries the *use site* position so diagnostics point
    at the line that invoked the macro, not the ``#define``.  ``active``
    breaks self-referential definitions the way a real preprocessor does.
    """
    out: List[Token] = []
    for token in macros[name]:
        if (
            token.type is TokenType.IDENT
            and token.value in macros
            and token.value not in active
        ):
            out.extend(
                _expand_macro(token.value, macros, line, column, active | {token.value})
            )
        else:
            out.append(Token(token.type, token.value, line, column))
    return out


def _directive(
    scanner: _Scanner,
    tokens: List[Token],
    includes: Mapping[str, str],
    macros: Dict[str, List[Token]],
) -> None:
    """Process one ``#...`` line (the scanner sits on the ``#``)."""
    scanner.advance()  # the '#'
    while scanner.peek() in " \t":
        scanner.advance()
    word = ""
    while not scanner.at_end() and (scanner.peek().isalpha() or scanner.peek() == "_"):
        word += scanner.advance()
    if word == "define":
        while scanner.peek() in " \t":
            scanner.advance()
        name = ""
        while not scanner.at_end() and (scanner.peek().isalnum() or scanner.peek() == "_"):
            name += scanner.advance()
        if not name:
            raise scanner.error("#define needs a macro name")
        if scanner.peek() == "(":
            raise scanner.error(
                f"function-like macro {name!r} is not supported (object macros only)"
            )
        body = ""
        while not scanner.at_end() and scanner.peek() != "\n":
            body += scanner.advance()
        # The body is lexed now but expanded at each use site (rescan model).
        macros[name] = _lex(body, {}, {})[0]
        return
    if word == "include":
        while scanner.peek() in " \t":
            scanner.advance()
        if scanner.peek() != '"':
            raise scanner.error('#include expects a "quoted" name')
        name_token = _scan_string(scanner, scanner.line, scanner.column)
        name = name_token.value.decode("ascii", "replace")
        if name not in includes:
            raise scanner.error(f"#include {name!r} not found (available: {sorted(includes)})")
        included, _line, _column = _lex(includes[name], includes, macros)
        tokens.extend(included)
        while not scanner.at_end() and scanner.peek() != "\n":
            scanner.advance()
        return
    raise scanner.error(f"unsupported preprocessor directive #{word or '<none>'}")


def _lex(
    source: str,
    includes: Mapping[str, str],
    macros: Dict[str, List[Token]],
) -> tuple:
    """Lex one source text (no EOF token); returns (tokens, end line, end column)."""
    scanner = _Scanner(source)
    tokens: List[Token] = []
    while not scanner.at_end():
        ch = scanner.peek()
        if ch in " \t\r\n":
            scanner.advance()
            continue
        if ch == "#":
            _directive(scanner, tokens, includes, macros)
            continue
        if ch == "/" and scanner.peek(1) == "/":
            while not scanner.at_end() and scanner.peek() != "\n":
                scanner.advance()
            continue
        if ch == "/" and scanner.peek(1) == "*":
            scanner.advance(2)
            while not scanner.at_end() and not (scanner.peek() == "*" and scanner.peek(1) == "/"):
                scanner.advance()
            if scanner.at_end():
                raise scanner.error("unterminated block comment")
            scanner.advance(2)
            continue
        line, column = scanner.line, scanner.column
        if ch.isalpha() or ch == "_":
            text = ""
            while not scanner.at_end() and (scanner.peek().isalnum() or scanner.peek() == "_"):
                text += scanner.advance()
            if text in macros:
                tokens.extend(_expand_macro(text, macros, line, column, frozenset({text})))
                continue
            token_type = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
            tokens.append(Token(token_type, text, line, column))
            continue
        if ch.isdigit():
            tokens.append(_scan_number(scanner, line, column))
            continue
        if ch == "'":
            tokens.append(_scan_char(scanner, line, column))
            continue
        if ch == '"':
            tokens.append(_scan_string(scanner, line, column))
            continue
        punct = _scan_punct(scanner)
        if punct is None:
            raise scanner.error(f"unexpected character {ch!r}")
        tokens.append(Token(TokenType.PUNCT, punct, line, column))
    return tokens, scanner.line, scanner.column


def _scan_number(scanner: _Scanner, line: int, column: int) -> Token:
    text = ""
    if scanner.peek() == "0" and scanner.peek(1) in ("x", "X"):
        text += scanner.advance(2)
        while not scanner.at_end() and scanner.peek() in "0123456789abcdefABCDEF":
            text += scanner.advance()
        value = int(text, 16)
    else:
        while not scanner.at_end() and scanner.peek().isdigit():
            text += scanner.advance()
        value = int(text)
    # Swallow integer suffixes (u, l, ul, ...) — the subset treats them all as int.
    while not scanner.at_end() and scanner.peek() in "uUlL":
        scanner.advance()
    return Token(TokenType.NUMBER, value, line, column)


def _scan_escape(scanner: _Scanner) -> int:
    ch = scanner.advance()
    if ch != "\\":
        return ord(ch)
    escape = scanner.advance()
    if escape == "x":
        digits = ""
        while not scanner.at_end() and scanner.peek() in "0123456789abcdefABCDEF":
            digits += scanner.advance()
        if not digits:
            raise scanner.error("empty hex escape")
        return int(digits, 16) & 0xFF
    if escape in _ESCAPES:
        return _ESCAPES[escape]
    raise scanner.error(f"unknown escape sequence \\{escape}")


def _scan_char(scanner: _Scanner, line: int, column: int) -> Token:
    scanner.advance()  # opening quote
    if scanner.at_end():
        raise scanner.error("unterminated character literal")
    value = _scan_escape(scanner)
    if scanner.peek() != "'":
        raise scanner.error("character literal too long")
    scanner.advance()
    return Token(TokenType.CHAR, value, line, column)


def _scan_string(scanner: _Scanner, line: int, column: int) -> Token:
    scanner.advance()  # opening quote
    data = bytearray()
    while True:
        if scanner.at_end():
            raise scanner.error("unterminated string literal")
        if scanner.peek() == '"':
            scanner.advance()
            break
        data.append(_scan_escape(scanner))
    return Token(TokenType.STRING, bytes(data), line, column)


def _scan_punct(scanner: _Scanner) -> str:
    for punct in PUNCTUATION:
        if scanner.source.startswith(punct, scanner.position):
            scanner.advance(len(punct))
            return punct
    return None
