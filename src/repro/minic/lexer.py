"""Tokenizer for the mini-C subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import MiniCError


class LexError(MiniCError):
    """Raised on malformed input text."""


class TokenType(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "int",
    "char",
    "unsigned",
    "void",
    "size_t",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "goto",
    "sizeof",
    "static",
    "const",
    "struct",
    "NULL",
}

#: Multi-character punctuation, longest first so maximal munch works.
PUNCTUATION = [
    "<<=", ">>=", "...",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position for error messages."""

    type: TokenType
    value: object
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        """True if this token is the given punctuation."""
        return self.type is TokenType.PUNCT and self.value == text

    def is_keyword(self, text: str) -> bool:
        """True if this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == text


class _Scanner:
    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def advance(self, count: int = 1) -> str:
        text = self.source[self.position : self.position + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def at_end(self) -> bool:
        return self.position >= len(self.source)

    def error(self, message: str) -> LexError:
        return LexError(f"line {self.line}, column {self.column}: {message}")


def tokenize(source: str) -> List[Token]:
    """Convert source text into a token list ending with an EOF token."""
    scanner = _Scanner(source)
    tokens: List[Token] = []
    while not scanner.at_end():
        ch = scanner.peek()
        if ch in " \t\r\n":
            scanner.advance()
            continue
        if ch == "/" and scanner.peek(1) == "/":
            while not scanner.at_end() and scanner.peek() != "\n":
                scanner.advance()
            continue
        if ch == "/" and scanner.peek(1) == "*":
            scanner.advance(2)
            while not scanner.at_end() and not (scanner.peek() == "*" and scanner.peek(1) == "/"):
                scanner.advance()
            if scanner.at_end():
                raise scanner.error("unterminated block comment")
            scanner.advance(2)
            continue
        line, column = scanner.line, scanner.column
        if ch.isalpha() or ch == "_":
            text = ""
            while not scanner.at_end() and (scanner.peek().isalnum() or scanner.peek() == "_"):
                text += scanner.advance()
            token_type = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
            tokens.append(Token(token_type, text, line, column))
            continue
        if ch.isdigit():
            tokens.append(_scan_number(scanner, line, column))
            continue
        if ch == "'":
            tokens.append(_scan_char(scanner, line, column))
            continue
        if ch == '"':
            tokens.append(_scan_string(scanner, line, column))
            continue
        punct = _scan_punct(scanner)
        if punct is None:
            raise scanner.error(f"unexpected character {ch!r}")
        tokens.append(Token(TokenType.PUNCT, punct, line, column))
    tokens.append(Token(TokenType.EOF, None, scanner.line, scanner.column))
    return tokens


def _scan_number(scanner: _Scanner, line: int, column: int) -> Token:
    text = ""
    if scanner.peek() == "0" and scanner.peek(1) in ("x", "X"):
        text += scanner.advance(2)
        while not scanner.at_end() and scanner.peek() in "0123456789abcdefABCDEF":
            text += scanner.advance()
        value = int(text, 16)
    else:
        while not scanner.at_end() and scanner.peek().isdigit():
            text += scanner.advance()
        value = int(text)
    # Swallow integer suffixes (u, l, ul, ...) — the subset treats them all as int.
    while not scanner.at_end() and scanner.peek() in "uUlL":
        scanner.advance()
    return Token(TokenType.NUMBER, value, line, column)


def _scan_escape(scanner: _Scanner) -> int:
    ch = scanner.advance()
    if ch != "\\":
        return ord(ch)
    escape = scanner.advance()
    if escape == "x":
        digits = ""
        while not scanner.at_end() and scanner.peek() in "0123456789abcdefABCDEF":
            digits += scanner.advance()
        if not digits:
            raise scanner.error("empty hex escape")
        return int(digits, 16) & 0xFF
    if escape in _ESCAPES:
        return _ESCAPES[escape]
    raise scanner.error(f"unknown escape sequence \\{escape}")


def _scan_char(scanner: _Scanner, line: int, column: int) -> Token:
    scanner.advance()  # opening quote
    if scanner.at_end():
        raise scanner.error("unterminated character literal")
    value = _scan_escape(scanner)
    if scanner.peek() != "'":
        raise scanner.error("character literal too long")
    scanner.advance()
    return Token(TokenType.CHAR, value, line, column)


def _scan_string(scanner: _Scanner, line: int, column: int) -> Token:
    scanner.advance()  # opening quote
    data = bytearray()
    while True:
        if scanner.at_end():
            raise scanner.error("unterminated string literal")
        if scanner.peek() == '"':
            scanner.advance()
            break
        data.append(_scan_escape(scanner))
    return Token(TokenType.STRING, bytes(data), line, column)


def _scan_punct(scanner: _Scanner) -> str:
    for punct in PUNCTUATION:
        if scanner.source.startswith(punct, scanner.position):
            scanner.advance(len(punct))
            return punct
    return None
