"""A mini-C front end and interpreter over the simulated memory substrate.

The paper's adoption story is "recompile the same C source with a different
compiler".  This package makes that story literal inside the reproduction: a
small C-like language is lexed, parsed, and interpreted, with every variable,
array, and heap block allocated in the simulated address space and every load
and store routed through the active access policy.  The same source therefore
behaves like the Standard, Bounds Check, or Failure Oblivious build depending
only on the policy the program was *compiled* (bound) with.

The subset is deliberately small but real: ``int``/``char``/``unsigned char``
scalars, pointers, arrays, ``struct``-free imperative code with ``if``/
``while``/``for``/``goto``/``return``, function definitions and calls, pointer
arithmetic, and the handful of libc routines the paper's example needs
(``safe_malloc``, ``safe_realloc``, ``safe_free``, ``strlen``, ``strcpy``,
``strcat``, ``memset``).  It is enough to run the paper's Figure 1
(``utf8_to_utf7``) verbatim-in-spirit; see ``examples/mutt_figure1.py``.

Public API
----------
* :func:`compile_program` — parse source into a :class:`~repro.minic.interpreter.Program`.
* :class:`~repro.minic.interpreter.Program` — bind to a policy and call functions.
"""

from repro.minic.compiler import compile_program
from repro.minic.interpreter import Program, MiniCRuntimeError
from repro.minic.lexer import tokenize, Token, TokenType
from repro.minic.parser import parse

__all__ = [
    "compile_program",
    "Program",
    "MiniCRuntimeError",
    "tokenize",
    "Token",
    "TokenType",
    "parse",
]
