"""A mini-C front end, span-lowering compiler, and interpreter over the substrate.

The paper's adoption story is "recompile the same C source with a different
compiler".  This package makes that story literal inside the reproduction: a
small C-like language is lexed, preprocessed, parsed, idiom-lowered, and
interpreted, with every variable, array, and heap block allocated in the
simulated address space and every load and store routed through the active
access policy.  The same source therefore behaves like the Standard, Bounds
Check, or Failure Oblivious build depending only on the policy the program
was *compiled* (bound) with.

The subset is real enough for the paper's server functions: ``int``/``char``/
``unsigned`` scalars, pointers, arrays, ``struct`` definitions with member
access, ``typedef``, function pointers, ``sizeof``, a minimal preprocessor
(``#define`` object macros, ``#include``-as-concatenation), imperative code
with ``if``/``while``/``for``/``goto``/``return``, function definitions and
calls, pointer arithmetic, and the libc routines the ported functions need
(``safe_malloc``, ``strlen``, ``strcpy``, ``strncat``, ``strchr``,
``sprintf``, ...).  Figure 1 (``utf8_to_utf7``) and the Pine/Sendmail
overflow sites run on it; see ``examples/mutt_figure1.py`` and
``examples/minic_servers.py``.

String-walking loops (scans, strcpy-style copies, bounded fills) are
recognized by :mod:`repro.minic.lower` and executed through the bulk span
primitives — one policy decision per span or invalid run instead of per
byte — with ``compile_program(source, lower=False)`` keeping the frozen
per-byte tree-walk as the reference path.

Public API
----------
* :func:`compile_program` — parse + check + span-lower into a
  :class:`~repro.minic.interpreter.Program`.
* :class:`~repro.minic.interpreter.Program` — bind to a policy and call functions.
"""

from repro.minic.lower import CompileError, compile_program, lowered_count
from repro.minic.interpreter import Program, MiniCRuntimeError
from repro.minic.lexer import tokenize, Token, TokenType
from repro.minic.parser import parse

__all__ = [
    "compile_program",
    "CompileError",
    "lowered_count",
    "Program",
    "MiniCRuntimeError",
    "tokenize",
    "Token",
    "TokenType",
    "parse",
]
