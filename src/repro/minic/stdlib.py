"""Built-in library functions available to mini-C programs.

These are the handful of libc-style routines the paper's example code uses
(Mutt's ``safe_malloc`` family) plus the common string/memory functions the
test programs exercise.  Every one of them operates on simulated memory
through the instance's accessor, so their behaviour — overflow, termination,
or oblivious continuation — is governed by the bound policy exactly as it is
for code written directly against :mod:`repro.memory`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.memory import cstring


def _as_pointer(instance, value, function_name: str):
    from repro.minic.interpreter import MiniCRuntimeError, TypedPointer, NULL_POINTER

    if isinstance(value, TypedPointer):
        return value
    if value == 0:
        return NULL_POINTER
    raise MiniCRuntimeError(f"{function_name} expects a pointer argument")


def _builtin_malloc(instance, args: List) -> object:
    from repro.minic.interpreter import TypedPointer

    size = int(args[0])
    pointer = instance.ctx.malloc(size, name="minic_malloc")
    return TypedPointer(pointer, 1)


def _builtin_calloc(instance, args: List) -> object:
    from repro.minic.interpreter import TypedPointer

    count, size = int(args[0]), int(args[1])
    pointer = instance.ctx.calloc(count, size, name="minic_calloc")
    return TypedPointer(pointer, 1)


def _builtin_free(instance, args: List) -> int:
    pointer = _as_pointer(instance, args[0], "free")
    if not pointer.is_null:
        instance.ctx.free(pointer.pointer)
    return 0


def _builtin_realloc(instance, args: List) -> object:
    from repro.minic.interpreter import TypedPointer

    pointer = _as_pointer(instance, args[0], "realloc")
    size = int(args[1])
    base = None if pointer.is_null else pointer.pointer
    new_pointer = instance.ctx.realloc(base, size, name="minic_realloc")
    return TypedPointer(new_pointer, pointer.elem_size if not pointer.is_null else 1)


def _builtin_strlen(instance, args: List) -> int:
    pointer = _as_pointer(instance, args[0], "strlen")
    return cstring.strlen(instance.ctx.mem, pointer.pointer)


def _builtin_strcpy(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "strcpy")
    src = _as_pointer(instance, args[1], "strcpy")
    cstring.strcpy(instance.ctx.mem, dst.pointer, src.pointer)
    return dst


def _builtin_strncpy(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "strncpy")
    src = _as_pointer(instance, args[1], "strncpy")
    cstring.strncpy(instance.ctx.mem, dst.pointer, src.pointer, int(args[2]))
    return dst


def _builtin_strcat(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "strcat")
    src = _as_pointer(instance, args[1], "strcat")
    cstring.strcat(instance.ctx.mem, dst.pointer, src.pointer)
    return dst


def _builtin_strcmp(instance, args: List) -> int:
    left = _as_pointer(instance, args[0], "strcmp")
    right = _as_pointer(instance, args[1], "strcmp")
    return cstring.strcmp(instance.ctx.mem, left.pointer, right.pointer)


def _builtin_memset(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "memset")
    cstring.memset(instance.ctx.mem, dst.pointer, int(args[1]), int(args[2]))
    return dst


def _builtin_memcpy(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "memcpy")
    src = _as_pointer(instance, args[1], "memcpy")
    cstring.memcpy(instance.ctx.mem, dst.pointer, src.pointer, int(args[2]))
    return dst


def _builtin_putchar(instance, args: List) -> int:
    instance.output.append(int(args[0]) & 0xFF)
    return int(args[0])


def _builtin_puts(instance, args: List) -> int:
    pointer = _as_pointer(instance, args[0], "puts")
    instance.output.extend(instance.read_string(pointer) + b"\n")
    return 0


def _builtin_abort(instance, args: List) -> int:
    from repro.minic.interpreter import MiniCRuntimeError

    raise MiniCRuntimeError("program called abort()")


#: Mapping of callable name to implementation.  The ``safe_`` aliases mirror
#: the wrappers Mutt uses in the paper's Figure 1.
BUILTINS: Dict[str, Callable] = {
    "malloc": _builtin_malloc,
    "safe_malloc": _builtin_malloc,
    "calloc": _builtin_calloc,
    "safe_calloc": _builtin_calloc,
    "free": _builtin_free,
    "safe_free": _builtin_free,
    "realloc": _builtin_realloc,
    "safe_realloc": _builtin_realloc,
    "strlen": _builtin_strlen,
    "strcpy": _builtin_strcpy,
    "strncpy": _builtin_strncpy,
    "strcat": _builtin_strcat,
    "strcmp": _builtin_strcmp,
    "memset": _builtin_memset,
    "memcpy": _builtin_memcpy,
    "putchar": _builtin_putchar,
    "puts": _builtin_puts,
    "abort": _builtin_abort,
}
