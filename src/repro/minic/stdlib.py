"""Built-in library functions available to mini-C programs.

These are the handful of libc-style routines the paper's example code uses
(Mutt's ``safe_malloc`` family) plus the common string/memory functions the
test programs exercise.  Every one of them operates on simulated memory
through the instance's accessor, so their behaviour — overflow, termination,
or oblivious continuation — is governed by the bound policy exactly as it is
for code written directly against :mod:`repro.memory`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.memory import cstring


def _as_pointer(instance, value, function_name: str):
    from repro.minic.interpreter import MiniCRuntimeError, TypedPointer, NULL_POINTER

    if isinstance(value, TypedPointer):
        return value
    if value == 0:
        return NULL_POINTER
    raise MiniCRuntimeError(f"{function_name} expects a pointer argument")


def _builtin_malloc(instance, args: List) -> object:
    from repro.minic.interpreter import TypedPointer

    size = int(args[0])
    pointer = instance.ctx.malloc(size, name="minic_malloc")
    return TypedPointer(pointer, 1)


def _builtin_calloc(instance, args: List) -> object:
    from repro.minic.interpreter import TypedPointer

    count, size = int(args[0]), int(args[1])
    pointer = instance.ctx.calloc(count, size, name="minic_calloc")
    return TypedPointer(pointer, 1)


def _builtin_free(instance, args: List) -> int:
    pointer = _as_pointer(instance, args[0], "free")
    if not pointer.is_null:
        instance.ctx.free(pointer.pointer)
    return 0


def _builtin_realloc(instance, args: List) -> object:
    from repro.minic.interpreter import TypedPointer

    pointer = _as_pointer(instance, args[0], "realloc")
    size = int(args[1])
    base = None if pointer.is_null else pointer.pointer
    new_pointer = instance.ctx.realloc(base, size, name="minic_realloc")
    return TypedPointer(new_pointer, pointer.elem_size if not pointer.is_null else 1)


def _builtin_strlen(instance, args: List) -> int:
    pointer = _as_pointer(instance, args[0], "strlen")
    return cstring.strlen(instance.ctx.mem, pointer.pointer)


def _builtin_strcpy(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "strcpy")
    src = _as_pointer(instance, args[1], "strcpy")
    cstring.strcpy(instance.ctx.mem, dst.pointer, src.pointer)
    return dst


def _builtin_strncpy(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "strncpy")
    src = _as_pointer(instance, args[1], "strncpy")
    cstring.strncpy(instance.ctx.mem, dst.pointer, src.pointer, int(args[2]))
    return dst


def _builtin_strcat(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "strcat")
    src = _as_pointer(instance, args[1], "strcat")
    cstring.strcat(instance.ctx.mem, dst.pointer, src.pointer)
    return dst


def _builtin_strncat(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "strncat")
    src = _as_pointer(instance, args[1], "strncat")
    cstring.strncat(instance.ctx.mem, dst.pointer, src.pointer, int(args[2]))
    return dst


def _builtin_strchr(instance, args: List) -> object:
    from repro.minic.interpreter import NULL_POINTER, TypedPointer

    s = _as_pointer(instance, args[0], "strchr")
    result = cstring.strchr(instance.ctx.mem, s.pointer, int(args[1]))
    if result is None:
        return NULL_POINTER
    return TypedPointer(result, 1)


def _builtin_sprintf(instance, args: List) -> int:
    """``sprintf`` for the ``%s``/``%d``/``%c``/``%%`` subset the servers use.

    The format string and every ``%s`` argument are read through the
    policy-mediated accessor, and the rendered output is written back through
    the span fast path — so an output that exceeds the destination buffer
    overflows under whatever policy is bound, exactly like the C original.
    """
    from repro.minic.interpreter import MiniCRuntimeError, TypedPointer

    if len(args) < 2:
        raise MiniCRuntimeError("sprintf needs a destination and a format string")
    dst = _as_pointer(instance, args[0], "sprintf")
    fmt_ptr = _as_pointer(instance, args[1], "sprintf")
    mem = instance.ctx.mem
    fmt = cstring.read_c_string(mem, fmt_ptr.pointer)
    out = bytearray()
    arg_index = 2

    def next_arg(directive: str):
        nonlocal arg_index
        if arg_index >= len(args):
            raise MiniCRuntimeError(f"sprintf: missing argument for %{directive}")
        value = args[arg_index]
        arg_index += 1
        return value

    i = 0
    while i < len(fmt):
        byte = fmt[i]
        if byte != ord("%"):
            out.append(byte)
            i += 1
            continue
        if i + 1 >= len(fmt):
            raise MiniCRuntimeError("sprintf: trailing '%' in format string")
        directive = chr(fmt[i + 1])
        i += 2
        if directive == "%":
            out.append(ord("%"))
        elif directive == "d":
            out += str(int(next_arg("d"))).encode("ascii")
        elif directive == "c":
            out.append(int(next_arg("c")) & 0xFF)
        elif directive == "s":
            value = next_arg("s")
            if not isinstance(value, TypedPointer):
                raise MiniCRuntimeError("sprintf: %s needs a string pointer")
            out += cstring.read_c_string(mem, value.pointer)
        else:
            raise MiniCRuntimeError(
                f"sprintf: unsupported directive %{directive} (supported: %s %d %c %%)"
            )
    cstring.write_bytes(mem, dst.pointer, bytes(out) + b"\x00")
    return len(out)


def _builtin_strcmp(instance, args: List) -> int:
    left = _as_pointer(instance, args[0], "strcmp")
    right = _as_pointer(instance, args[1], "strcmp")
    return cstring.strcmp(instance.ctx.mem, left.pointer, right.pointer)


def _builtin_memset(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "memset")
    cstring.memset(instance.ctx.mem, dst.pointer, int(args[1]), int(args[2]))
    return dst


def _builtin_memcpy(instance, args: List) -> object:
    dst = _as_pointer(instance, args[0], "memcpy")
    src = _as_pointer(instance, args[1], "memcpy")
    cstring.memcpy(instance.ctx.mem, dst.pointer, src.pointer, int(args[2]))
    return dst


def _builtin_putchar(instance, args: List) -> int:
    instance.output.append(int(args[0]) & 0xFF)
    return int(args[0])


def _builtin_puts(instance, args: List) -> int:
    pointer = _as_pointer(instance, args[0], "puts")
    instance.output.extend(instance.read_string(pointer) + b"\n")
    return 0


def _builtin_abort(instance, args: List) -> int:
    from repro.minic.interpreter import MiniCRuntimeError

    raise MiniCRuntimeError("program called abort()")


#: Mapping of callable name to implementation.  The ``safe_`` aliases mirror
#: the wrappers Mutt uses in the paper's Figure 1.
BUILTINS: Dict[str, Callable] = {
    "malloc": _builtin_malloc,
    "safe_malloc": _builtin_malloc,
    "calloc": _builtin_calloc,
    "safe_calloc": _builtin_calloc,
    "free": _builtin_free,
    "safe_free": _builtin_free,
    "realloc": _builtin_realloc,
    "safe_realloc": _builtin_realloc,
    "strlen": _builtin_strlen,
    "strcpy": _builtin_strcpy,
    "strncpy": _builtin_strncpy,
    "strcat": _builtin_strcat,
    "strncat": _builtin_strncat,
    "strchr": _builtin_strchr,
    "sprintf": _builtin_sprintf,
    "strcmp": _builtin_strcmp,
    "memset": _builtin_memset,
    "memcpy": _builtin_memcpy,
    "putchar": _builtin_putchar,
    "puts": _builtin_puts,
    "abort": _builtin_abort,
}
