"""The paper's vulnerable server functions, ported to mini-C.

These are the two overflow sites the in-VM server scenarios host
(:mod:`repro.servers.minic_host`): the same C idioms the paper compiled with
its failure-oblivious compiler, expressed in the mini-C subset so every load
and store goes through the bound access policy and the scanner/copy loops run
on the span fast path after idiom lowering.

* :data:`PINE_EST_SIZE_SOURCE` — Pine 4.44's From-field quoting overflow
  (paper §4.2).  ``est_size`` walks a ``struct address`` linked list and
  under-counts the growth caused by quoting ``"`` and ``\\`` characters;
  ``addr_string`` then copies the quoted form into the undersized buffer.
* :data:`SENDMAIL_CRACKADDR_SOURCE` — the Sendmail ``crackaddr``-style
  comment-balancing buffer walk.  The open-parenthesis case reserves one byte
  of headroom and the close-parenthesis case gives it back, but the balancing
  characters themselves are written without a bounds check, so an address
  that is mostly parentheses walks the cursor past the fixed buffer.

Both sources are plain strings: tests and examples can recompile them with
``lower=False`` to run the frozen per-byte tree-walk reference instead.
"""

from __future__ import annotations

#: Pine's From-field quoting overflow (§4.2) as a mini-C translation unit.
#:
#: The address book is a ``struct address`` linked list built through
#: ``abook_add`` (struct pointer fields exercise the interpreter's
#: pointer-handle registry).  ``est_size`` is the paper's buggy length
#: estimate: it charges each personal name its unquoted length plus the
#: surrounding quotes, so every ``"`` or ``\\`` that quoting doubles writes
#: one byte past the allocation in ``addr_string``.  ``addr_string_safe`` is
#: the correct translation used by the message-reading path (§4.2.2).
PINE_EST_SIZE_SOURCE = r"""
struct address {
    char *personal;
    char *mailbox;
    char *host;
    struct address *next;
};

struct address *abook;
char line[80];

struct address *make_address(char *personal, char *mailbox, char *host) {
    struct address *a;
    a = safe_malloc(sizeof(struct address));
    a->personal = personal;
    a->mailbox = mailbox;
    a->host = host;
    a->next = 0;
    return a;
}

int abook_add(char *personal, char *mailbox, char *host) {
    struct address *a;
    a = make_address(personal, mailbox, host);
    a->next = abook;
    abook = a;
    return abook_len();
}

int abook_len() {
    struct address *a;
    int n;
    n = 0;
    a = abook;
    while (a) {
        n = n + 1;
        a = a->next;
    }
    return n;
}

/* 1 when some entry's mailbox matches, 0 otherwise. */
int abook_has(char *mbox) {
    struct address *a;
    a = abook;
    while (a) {
        if (strcmp(a->mailbox, mbox) == 0) {
            return 1;
        }
        a = a->next;
    }
    return 0;
}

/* The buggy size estimate (the paper's est_size): quoting may double the
   personal name, but the estimate only charges the quotes themselves. */
int est_size(struct address *a) {
    int size;
    size = 0;
    while (a) {
        if (a->personal) {
            size = size + strlen(a->personal) + 3;
        }
        size = size + strlen(a->mailbox) + strlen(a->host) + 3;
        a = a->next;
    }
    return size + 1;
}

/* The worst-case-correct estimate used by the §4.2.2 reading path. */
int safe_size(struct address *a) {
    int size;
    size = 0;
    while (a) {
        if (a->personal) {
            size = size + strlen(a->personal) * 2 + 3;
        }
        size = size + strlen(a->mailbox) + strlen(a->host) + 3;
        a = a->next;
    }
    return size + 1;
}

/* Quote one list into a buffer sized by the given estimate. */
char *quote_list(struct address *a, int size) {
    char *buf;
    char *dst;
    char *src;
    int c;
    buf = safe_malloc(size);
    dst = buf;
    while (a) {
        src = a->personal;
        if (src) {
            *dst++ = '"';
            while ((c = *src++) != 0) {
                if (c == '"') { *dst++ = '\\'; }
                if (c == '\\') { *dst++ = '\\'; }
                *dst++ = c;
            }
            *dst++ = '"';
            *dst++ = ' ';
        }
        src = a->mailbox;
        while ((c = *src++) != 0) { *dst++ = c; }
        *dst++ = '@';
        src = a->host;
        while ((c = *src++) != 0) { *dst++ = c; }
        if (a->next) { *dst++ = ','; *dst++ = ' '; }
        a = a->next;
    }
    *dst = 0;
    return buf;
}

/* The vulnerable index-building path: the undersized est_size buffer. */
char *addr_string() {
    return quote_list(abook, est_size(abook));
}

/* The correct message-reading path (§4.2.2). */
char *addr_string_safe() {
    return quote_list(abook, safe_size(abook));
}

/* One index display line, clipped with strncat into a fixed-width buffer. */
int index_line(char *from, char *subject) {
    line[0] = 0;
    strncat(line, from, 24);
    strncat(line, "  ", 3);
    strncat(line, subject, 40);
    return strlen(line);
}

int release(char *p) {
    free(p);
    return 0;
}
"""


#: The Sendmail ``crackaddr``-style comment-balancing walk as mini-C.
#:
#: ``crackaddr`` copies an address into the fixed global ``outbuf``.
#: Ordinary characters are bounds-checked against the headroom pointer
#: ``end``, but the comment-balancing parentheses are written unchecked —
#: the '(' case reserves a byte of headroom for the matching ')' and the
#: ')' case restores it, and the trailing close-out loop emits every still
#: open ')' with no check at all.  An address made of parentheses therefore
#: walks the cursor arbitrarily far past ``outbuf``.  ``format_header``
#: applies the post-parse length check, which is what turns the discarded
#: out-of-bounds writes of the failure-oblivious build into sendmail's own
#: "address too long" rejection.
SENDMAIL_CRACKADDR_SOURCE = r"""
#define BUFSIZE 128

char outbuf[BUFSIZE];
char header[256];

int crackaddr(char *addr) {
    char *p;
    char *q;
    char *end;
    int c;
    int cmtlev;
    p = addr;
    q = outbuf;
    end = outbuf + BUFSIZE - 1;
    cmtlev = 0;
    while ((c = *p++) != 0) {
        if (c == '(') {
            cmtlev = cmtlev + 1;
            *q++ = c;
            end--;
        } else if (c == ')') {
            if (cmtlev > 0) {
                cmtlev = cmtlev - 1;
                *q++ = c;
                end++;
            }
        } else {
            if (q < end) {
                *q++ = c;
            }
        }
    }
    while (cmtlev > 0) {
        *q++ = ')';
        cmtlev = cmtlev - 1;
    }
    *q = 0;
    return q - outbuf;
}

/* 1 when the address names a remote host, 0 for a local address. */
int is_remote(char *addr) {
    char *at;
    at = strchr(addr, '@');
    if (!at) { return 0; }
    return 1;
}

/* Parse the sender and render the spooled header line.  Returns the parsed
   length, or -1 when the post-parse length check rejects the address. */
int format_header(char *sender, int seq) {
    int n;
    n = crackaddr(sender);
    if (n + 1 >= BUFSIZE) {
        return 0 - 1;
    }
    sprintf(header, "From: %s (msg %d)", outbuf, seq);
    return n;
}
"""
