"""Compatibility alias for the compile entry point.

The compile pipeline (well-formedness checks + the span-lowering idiom pass)
lives in :mod:`repro.minic.lower`; this module keeps the historical import
path ``repro.minic.compiler`` working.  As before there is deliberately no
code generation — the only thing that changes between the Standard, Bounds
Check, and Failure Oblivious builds is what happens at each memory access,
decided when the program is *instantiated* against a policy.
"""

from __future__ import annotations

from repro.minic.lower import CompileError, compile_program, lower_unit, lowered_count

__all__ = ["CompileError", "compile_program", "lower_unit", "lowered_count"]
