"""The "compiler" entry point: source text to a policy-bindable Program.

There is deliberately no code generation — the compile step is parsing plus a
handful of well-formedness checks — because the paper's point is that the only
thing that changes between the Standard, Bounds Check, and Failure Oblivious
builds is what happens at each memory access, and in this reproduction that is
decided when the program is *instantiated* against a policy.
"""

from __future__ import annotations

from typing import Set

from repro.errors import MiniCError
from repro.minic import ast_nodes as ast
from repro.minic.interpreter import Program
from repro.minic.parser import parse
from repro.minic.stdlib import BUILTINS


class CompileError(MiniCError):
    """Raised when the translation unit fails the well-formedness checks."""


def _collect_calls(node, found: Set[str]) -> None:
    if isinstance(node, ast.Call):
        found.add(node.name)
    if hasattr(node, "__dict__"):
        for value in vars(node).values():
            if isinstance(value, list):
                for item in value:
                    _collect_calls(item, found)
            elif isinstance(value, (ast.Expr, ast.Stmt)):
                _collect_calls(value, found)


def compile_program(source: str) -> Program:
    """Parse ``source`` and verify that every called function is defined.

    Returns a :class:`~repro.minic.interpreter.Program` that can be
    instantiated against any :class:`~repro.core.policy.AccessPolicy`.
    """
    unit = parse(source)
    defined = {function.name for function in unit.functions}
    duplicates = [name for name in defined if sum(f.name == name for f in unit.functions) > 1]
    if duplicates:
        raise CompileError(f"duplicate function definition(s): {sorted(set(duplicates))}")
    called: Set[str] = set()
    for function in unit.functions:
        _collect_calls(function.body, called)
    unknown = called - defined - set(BUILTINS)
    if unknown:
        raise CompileError(f"call(s) to undefined function(s): {sorted(unknown)}")
    return Program(unit, source=source)
