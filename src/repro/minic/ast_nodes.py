"""AST node definitions for the mini-C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class CType:
    """A (very) simplified C type: a base scalar plus a pointer depth."""

    base: str  # "int", "char", "unsigned char", "unsigned int", "void", "size_t"
    pointer_depth: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def scalar_size(self) -> int:
        """Size in bytes of the base scalar (pointers are 4 bytes)."""
        if self.is_pointer:
            return 4
        if self.base in ("char", "unsigned char"):
            return 1
        if self.base == "void":
            return 1
        return 4

    def pointee(self) -> "CType":
        """The type pointed to (one pointer level removed)."""
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.base, self.pointer_depth - 1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.base + "*" * self.pointer_depth


# -- expressions -----------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class StringLiteral(Expr):
    value: bytes


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """``target op= value`` where op may be empty for plain assignment."""

    target: Expr
    op: str
    value: Expr


@dataclass
class IncDec(Expr):
    """``++x``, ``--x``, ``x++``, ``x--``."""

    target: Expr
    op: str
    postfix: bool


@dataclass
class Call(Expr):
    name: str
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    type: CType
    operand: Expr


@dataclass
class SizeOf(Expr):
    type: CType


@dataclass
class Ternary(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class Comma(Expr):
    """The comma operator: evaluate all, yield the last."""

    parts: List[Expr]


# -- statements ------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""


@dataclass
class Declaration(Stmt):
    """A local variable declaration, possibly an array, possibly initialized."""

    type: CType
    name: str
    array_size: Optional[Expr] = None
    initializer: Optional[Expr] = None


@dataclass
class ExprStatement(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Optional[Expr]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Label(Stmt):
    name: str


@dataclass
class Empty(Stmt):
    pass


# -- top level -------------------------------------------------------------------


@dataclass
class Parameter:
    type: CType
    name: str


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    parameters: List[Parameter]
    body: Block


@dataclass
class GlobalVar:
    type: CType
    name: str
    array_size: Optional[Expr] = None
    initializer: Optional[Expr] = None


@dataclass
class TranslationUnit:
    """A parsed source file: global variables and function definitions."""

    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        """Look up a function definition by name."""
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r}")
