"""AST node definitions for the mini-C subset.

Every expression and statement node carries a ``pos`` attribute — the
``(line, column)`` of the token that started it, attached by the parser — so
compile-time and runtime diagnostics can point at the offending source line.
``pos`` is a plain class attribute rather than a dataclass field to keep
every existing positional constructor call valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class CType:
    """A (very) simplified C type: a base scalar plus a pointer depth.

    ``base`` may also be ``"struct <name>"`` (layout resolved against the
    translation unit's struct definitions) or ``"funcptr"`` (a function
    pointer — opaque, 4 bytes, callable).
    """

    base: str  # "int", "char", "unsigned char", "unsigned int", "void", "size_t"
    pointer_depth: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_struct(self) -> bool:
        return self.base.startswith("struct ")

    @property
    def struct_name(self) -> str:
        """The tag of a ``struct ...`` base type."""
        if not self.is_struct:
            raise ValueError(f"{self} is not a struct type")
        return self.base[len("struct "):]

    @property
    def scalar_size(self) -> int:
        """Size in bytes of the base scalar (pointers are 4 bytes)."""
        if self.is_pointer:
            return 4
        if self.base in ("char", "unsigned char"):
            return 1
        if self.base == "void":
            return 1
        if self.base == "funcptr":
            return 4
        if self.is_struct:
            raise ValueError(f"sizeof({self}) needs the struct layout, not scalar_size")
        return 4

    def pointee(self) -> "CType":
        """The type pointed to (one pointer level removed)."""
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.base, self.pointer_depth - 1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.base + "*" * self.pointer_depth


# -- expressions -----------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""

    # (line, column) of the starting token; overwritten per instance by the
    # parser.  Class-level so positional dataclass constructors stay valid.
    pos = (0, 0)  # type: Tuple[int, int]


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class StringLiteral(Expr):
    value: bytes


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """``target op= value`` where op may be empty for plain assignment."""

    target: Expr
    op: str
    value: Expr


@dataclass
class IncDec(Expr):
    """``++x``, ``--x``, ``x++``, ``x--``."""

    target: Expr
    op: str
    postfix: bool


@dataclass
class Call(Expr):
    name: str
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """``base.name`` (``arrow`` False) or ``base->name`` (``arrow`` True)."""

    base: Expr
    name: str
    arrow: bool = False


@dataclass
class IndirectCall(Expr):
    """A call through a computed callee (function pointer value)."""

    callee: Expr
    args: List[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    type: CType
    operand: Expr


@dataclass
class SizeOf(Expr):
    type: CType


@dataclass
class Ternary(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class Comma(Expr):
    """The comma operator: evaluate all, yield the last."""

    parts: List[Expr]


# -- statements ------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""

    pos = (0, 0)  # type: Tuple[int, int]


@dataclass
class Declaration(Stmt):
    """A local variable declaration, possibly an array, possibly initialized."""

    type: CType
    name: str
    array_size: Optional[Expr] = None
    initializer: Optional[Expr] = None


@dataclass
class ExprStatement(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Optional[Expr]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Label(Stmt):
    name: str


@dataclass
class Empty(Stmt):
    pass


# -- lowered span operations -------------------------------------------------------
#
# Produced only by the idiom-recognition pass in :mod:`repro.minic.lower`,
# never by the parser.  Each node keeps the ``original`` loop statement so the
# interpreter can fall back to the frozen per-byte tree-walk whenever a
# runtime precondition (the variable actually holds a byte pointer) fails.


@dataclass
class LoweredScan(Stmt):
    """``while (*p) p++;`` — advance ``p`` to its NUL in span-sized strides."""

    pointer: str
    original: Stmt = None


@dataclass
class LoweredScanConsume(Stmt):
    """``while ((c = *p++) != 0);`` — scan past the NUL, leaving ``c`` zero."""

    var: str
    pointer: str
    original: Stmt = None


@dataclass
class LoweredCopy(Stmt):
    """``while ((*d++ = *s++) != 0);`` — the strcpy idiom, span-batched."""

    dst: str
    src: str
    original: Stmt = None


@dataclass
class LoweredFillWhile(Stmt):
    """``while (n--) *p++ = c;`` — bounded fill, one span write per run."""

    counter: str
    pointer: str
    value: Expr = None
    original: Stmt = None


@dataclass
class LoweredFillFor(Stmt):
    """``for (i = 0; i < n; i++) p[i] = c;`` — indexed bounded fill."""

    index: str
    limit: Expr
    pointer: str
    value: Expr = None
    original: Stmt = None


# -- top level -------------------------------------------------------------------


@dataclass
class Parameter:
    type: CType
    name: str


@dataclass
class StructField:
    """One scalar or pointer field of a struct (arrays are not supported)."""

    type: CType
    name: str


@dataclass
class StructDef:
    """A top-level ``struct <name> { fields };`` definition."""

    name: str
    fields: List[StructField] = field(default_factory=list)

    pos = (0, 0)  # type: Tuple[int, int]


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    parameters: List[Parameter]
    body: Block

    pos = (0, 0)  # type: Tuple[int, int]


@dataclass
class GlobalVar:
    type: CType
    name: str
    array_size: Optional[Expr] = None
    initializer: Optional[Expr] = None

    pos = (0, 0)  # type: Tuple[int, int]


@dataclass
class TranslationUnit:
    """A parsed source file: structs, global variables, and function definitions."""

    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    structs: List[StructDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        """Look up a function definition by name."""
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r}")

    def struct(self, name: str) -> StructDef:
        """Look up a struct definition by tag."""
        for struct in self.structs:
            if struct.name == name:
                return struct
        raise KeyError(f"no struct named {name!r}")
