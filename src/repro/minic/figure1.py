"""The paper's Figure 1 (Mutt's ``utf8_to_utf7``) as mini-C source.

The transcription follows the figure line for line, with two mechanical
adaptations forced by the mini-C subset (both noted in DESIGN.md):

* ``safe_realloc((void **) &buf, p - buf)`` becomes
  ``buf = safe_realloc(buf, p - buf)`` (the subset has no address-of), and
* ``safe_free((void **) &buf)`` becomes ``safe_free(buf)``.

Crucially, the buggy allocation — ``safe_malloc(u8len * 2 + 1)`` where a safe
length would be ``u8len * 4 + 1`` — is preserved exactly, so the behaviour of
the routine under the Standard, Bounds Check, and Failure Oblivious builds is
the behaviour the paper describes in §2.
"""

FIGURE1_SOURCE = r"""
static char *B64Chars =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+,";

char *utf8_to_utf7(const char *u8, size_t u8len) {
    char *buf;
    char *p;
    int ch;
    int n;
    int i;
    int b = 0;
    int k = 0;
    int base64 = 0;

    /* The following line allocates the return string.  The allocated string
       is too small; instead of u8len*2+1, a safe length would be u8len*4+1. */
    p = buf = safe_malloc(u8len * 2 + 1);

    while (u8len) {
        unsigned char c = *u8;
        if (c < 0x80) ch = c, n = 0;
        else if (c < 0xc2) goto bail;
        else if (c < 0xe0) ch = c & 0x1f, n = 1;
        else if (c < 0xf0) ch = c & 0x0f, n = 2;
        else if (c < 0xf8) ch = c & 0x07, n = 3;
        else if (c < 0xfc) ch = c & 0x03, n = 4;
        else if (c < 0xfe) ch = c & 0x01, n = 5;
        else goto bail;
        u8++, u8len--;
        if (n > u8len) goto bail;
        for (i = 0; i < n; i++) {
            if ((u8[i] & 0xc0) != 0x80) goto bail;
            ch = (ch << 6) | (u8[i] & 0x3f);
        }
        if (n > 1 && !(ch >> (n * 5 + 1))) goto bail;
        u8 += n, u8len -= n;

        if (ch < 0x20 || ch >= 0x7f) {
            if (!base64) {
                *p++ = '&';
                base64 = 1;
                b = 0;
                k = 10;
            }
            if (ch & ~0xffff) ch = 0xfffe;
            *p++ = B64Chars[b | ch >> k];
            k -= 6;
            for (; k >= 0; k -= 6)
                *p++ = B64Chars[(ch >> k) & 0x3f];
            b = (ch << (-k)) & 0x3f;
            k += 16;
        } else {
            if (base64) {
                if (k > 10) *p++ = B64Chars[b];
                *p++ = '-';
                base64 = 0;
            }
            *p++ = ch;
            if (ch == '&') *p++ = '-';
        }
    }
    if (base64) {
        if (k > 10) *p++ = B64Chars[b];
        *p++ = '-';
    }
    *p++ = '\0';
    buf = safe_realloc(buf, p - buf);
    return buf;
bail:
    safe_free(buf);
    return 0;
}
"""
