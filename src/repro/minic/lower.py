"""Idiom-recognition pass: compile mini-C loops onto the span fast path.

The tree-walking interpreter pays one policy decision per byte for the
string-walking loops that dominate the paper's vulnerable functions.  This
pass recognizes the handful of loop shapes those functions are made of and
rewrites each into a ``Lowered*`` statement the interpreter executes with the
bulk ``scan_span``/``read_span_until``/``write_span`` primitives — one policy
decision per contiguous span (PR 2) or invalid run (PR 4) instead of per byte.

Recognized idioms
-----------------
* ``while (*s) s++;`` (also ``while (*s != 0)``) — terminator scan.
* ``while ((c = *p++) != 0);`` — scan that consumes the terminator.
* ``while ((*d++ = *s++) != 0);`` — the strcpy copy loop.
* ``while (n--) *p++ = c;`` — counted fill.
* ``for (i = 0; i < n; i++) p[i] = c;`` — indexed fill.

Each lowered node keeps the ``original`` statement, and the interpreter falls
back to tree-walking it whenever a runtime precondition fails (the matched
variable does not hold a byte pointer), so lowering is always meaning-
preserving.  The differential Hypothesis suite
(``tests/test_minic_lowering_differential.py``) proves lowered and tree-walk
execution observably identical under all five policies.

Deliberately **not** lowered: ``while (*src) *dst++ = *src++;`` reads the
source byte twice per iteration (condition and body), producing a
read/read/write event stream per byte that span batching cannot reproduce.

This module also owns the compile entry point (``compile_program``), keeping
``repro.minic.compiler`` as a thin compatibility alias.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import MiniCError
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse
from repro.minic.stdlib import BUILTINS


class CompileError(MiniCError):
    """Raised when the translation unit fails the well-formedness checks."""


# -- small matchers --------------------------------------------------------------


def _ident(expr) -> Optional[str]:
    """Name of a plain identifier expression, else None."""
    return expr.name if isinstance(expr, ast.Identifier) else None


def _deref_ident(expr) -> Optional[str]:
    """``*name`` — name of the dereferenced identifier, else None."""
    if isinstance(expr, ast.Unary) and expr.op == "*":
        return _ident(expr.operand)
    return None


def _deref_post_inc(expr) -> Optional[str]:
    """``*name++`` — name of the post-incremented, dereferenced identifier."""
    if isinstance(expr, ast.Unary) and expr.op == "*":
        target = expr.operand
        if isinstance(target, ast.IncDec) and target.op == "++" and target.postfix:
            return _ident(target.target)
    return None


def _is_zero(expr) -> bool:
    return isinstance(expr, ast.IntLiteral) and expr.value == 0


def _nonzero_test(cond):
    """Strip a ``!= 0`` comparison: both ``X`` and ``X != 0`` test X."""
    if isinstance(cond, ast.Binary) and cond.op == "!=" and _is_zero(cond.right):
        return cond.left
    return cond


def _empty_body(stmt) -> bool:
    if isinstance(stmt, ast.Empty):
        return True
    if isinstance(stmt, ast.Block):
        return all(_empty_body(inner) for inner in stmt.statements)
    return False


def _pure_fill_value(expr, excluded: Set[str]) -> bool:
    """True for fill values safe to evaluate once: literals, or identifiers
    the loop itself does not modify."""
    if isinstance(expr, ast.IntLiteral):
        return True
    name = _ident(expr)
    return name is not None and name not in excluded


def _stmt_expr(stmt) -> Optional[ast.Expr]:
    """The expression of a single-statement body (unwrapping one block level)."""
    if isinstance(stmt, ast.Block):
        real = [s for s in stmt.statements if not isinstance(s, ast.Empty)]
        if len(real) != 1:
            return None
        stmt = real[0]
    if isinstance(stmt, ast.ExprStatement):
        return stmt.expr
    return None


# -- idiom recognition ------------------------------------------------------------


def _match_while(stmt: ast.While) -> Optional[ast.Stmt]:
    cond = _nonzero_test(stmt.condition)

    # while (*s) s++;  — terminator scan advancing the scanned pointer.
    scanned = _deref_ident(cond)
    if scanned is not None:
        body = _stmt_expr(stmt.body)
        if (
            isinstance(body, ast.IncDec)
            and body.op == "++"
            and _ident(body.target) == scanned
        ):
            return ast.LoweredScan(pointer=scanned, original=stmt)
        return None

    # while ((c = *p++) != 0);  — scan consuming the terminator into c.
    if isinstance(cond, ast.Assign) and cond.op == "":
        var = _ident(cond.target)
        if var is not None:
            pointer = _deref_post_inc(cond.value)
            if pointer is not None and pointer != var and _empty_body(stmt.body):
                return ast.LoweredScanConsume(var=var, pointer=pointer, original=stmt)
        # while ((*d++ = *s++) != 0);  — the strcpy loop.
        dst = _deref_post_inc(cond.target)
        src = _deref_post_inc(cond.value)
        if dst is not None and src is not None and dst != src and _empty_body(stmt.body):
            return ast.LoweredCopy(dst=dst, src=src, original=stmt)
        return None

    # while (n--) *p++ = c;  — counted fill.
    if isinstance(cond, ast.IncDec) and cond.op == "--" and cond.postfix:
        counter = _ident(cond.target)
        body = _stmt_expr(stmt.body)
        if (
            counter is not None
            and isinstance(body, ast.Assign)
            and body.op == ""
        ):
            pointer = _deref_post_inc(body.target)
            if (
                pointer is not None
                and pointer != counter
                and _pure_fill_value(body.value, {counter, pointer})
            ):
                return ast.LoweredFillWhile(
                    counter=counter, pointer=pointer, value=body.value, original=stmt
                )
    return None


def _match_for(stmt: ast.For) -> Optional[ast.Stmt]:
    # for (i = 0; i < n; i++) p[i] = c;  — indexed fill.
    init = stmt.init
    cond = stmt.condition
    step = stmt.step
    if not (
        isinstance(init, ast.Assign)
        and init.op == ""
        and _is_zero(init.value)
        and isinstance(cond, ast.Binary)
        and cond.op == "<"
        and isinstance(step, ast.IncDec)
        and step.op == "++"
    ):
        return None
    index = _ident(init.target)
    if index is None or _ident(cond.left) != index or _ident(step.target) != index:
        return None
    limit = cond.right
    if not (isinstance(limit, ast.IntLiteral) or (_ident(limit) and _ident(limit) != index)):
        return None
    body = _stmt_expr(stmt.body)
    if not (isinstance(body, ast.Assign) and body.op == ""):
        return None
    target = body.target
    if not (isinstance(target, ast.Index) and _ident(target.index) == index):
        return None
    pointer = _ident(target.base)
    if pointer is None or pointer == index:
        return None
    excluded = {index, pointer}
    limit_name = _ident(limit)
    if limit_name:
        excluded.add(limit_name)
    if limit_name == pointer:
        return None
    if not _pure_fill_value(body.value, excluded):
        return None
    return ast.LoweredFillFor(
        index=index, limit=limit, pointer=pointer, value=body.value, original=stmt
    )


def _lower_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.Block):
        stmt.statements = [_lower_stmt(inner) for inner in stmt.statements]
        return stmt
    if isinstance(stmt, ast.If):
        stmt.then_branch = _lower_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            stmt.else_branch = _lower_stmt(stmt.else_branch)
        return stmt
    if isinstance(stmt, ast.While):
        lowered = _match_while(stmt)
        if lowered is not None:
            return lowered
        stmt.body = _lower_stmt(stmt.body)
        return stmt
    if isinstance(stmt, ast.For):
        lowered = _match_for(stmt)
        if lowered is not None:
            return lowered
        stmt.body = _lower_stmt(stmt.body)
        return stmt
    return stmt


def lower_unit(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Rewrite recognized loop idioms into span-lowered statements, in place.

    The matched loop statements survive unchanged inside each lowered node's
    ``original`` field (the interpreter's fallback path), so no information is
    lost.
    """
    for function in unit.functions:
        function.body = _lower_stmt(function.body)
    return unit


def lowered_count(unit: ast.TranslationUnit) -> int:
    """Number of lowered statements in the unit (used by tests and the CLI)."""
    count = 0

    def visit(node) -> None:
        nonlocal count
        if isinstance(
            node,
            (
                ast.LoweredScan,
                ast.LoweredScanConsume,
                ast.LoweredCopy,
                ast.LoweredFillWhile,
                ast.LoweredFillFor,
            ),
        ):
            count += 1
        if hasattr(node, "__dict__") or hasattr(node, "__dataclass_fields__"):
            for value in vars(node).values():
                if isinstance(value, list):
                    for item in value:
                        if isinstance(item, (ast.Expr, ast.Stmt)):
                            visit(item)
                elif isinstance(value, (ast.Expr, ast.Stmt)):
                    visit(value)

    for function in unit.functions:
        visit(function.body)
    return count


# -- compile entry point -----------------------------------------------------------


def _collect_calls(node, found, declared) -> None:
    if isinstance(node, ast.Call):
        found.add(node.name)
    if isinstance(node, ast.Declaration):
        declared.add(node.name)
    values = vars(node).values() if hasattr(node, "__dict__") else ()
    for value in values:
        if isinstance(value, list):
            for item in value:
                if isinstance(item, (ast.Expr, ast.Stmt)):
                    _collect_calls(item, found, declared)
        elif isinstance(value, (ast.Expr, ast.Stmt)):
            _collect_calls(value, found, declared)


def compile_program(source: str, lower: bool = True, includes=None, defines=None):
    """Parse ``source``, check well-formedness, and (by default) span-lower it.

    ``lower=False`` keeps the frozen per-byte tree-walk — the reference path
    the differential suite compares against.  There is still no code
    generation: the policy is chosen when the returned Program is
    *instantiated*, exactly as before.
    """
    from repro.minic.interpreter import Program

    unit = parse(source, includes=includes, defines=defines)
    defined = [function.name for function in unit.functions]
    duplicates = sorted({name for name in defined if defined.count(name) > 1})
    if duplicates:
        raise CompileError(f"duplicate function definition(s): {duplicates}")
    variables = {declaration.name for declaration in unit.globals}
    called: Set[str] = set()
    for function in unit.functions:
        _collect_calls(function.body, called, variables)
        variables.update(parameter.name for parameter in function.parameters)
    # A called name may also be a function-pointer variable (parameter or
    # global) dispatched at runtime; only reject names that are neither.
    unknown = called - set(defined) - set(BUILTINS) - variables
    if unknown:
        raise CompileError(f"call(s) to undefined function(s): {sorted(unknown)}")
    if lower:
        lower_unit(unit)
    return Program(unit, source=source)
