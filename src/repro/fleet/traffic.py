"""The fleet workload model: seeded arrival processes over mixed request streams.

A fleet run drives N server instances at once, so the workload is not one
request list but a *timeline*: per-instance streams of mixed benign/attack
requests (the :func:`~repro.workloads.streams.mixed_stream` recipe), each
paired with virtual arrival times drawn from that instance's arrival process
(Poisson, bursty, ramp, or uniform), merged into one sequence ordered by
``(arrival time, instance, per-instance seq)``.

Everything is deterministic in ``(seed, instance index)`` alone:

* each instance's request content comes from
  ``random.Random(derive_seed(seed, "traffic", index))``,
* each instance's arrival times from
  ``random.Random(derive_seed(seed, "arrival", index))``,

so the timeline is bit-identical regardless of how many scheduler shards or
fork-pool workers later consume it — the invariance the serial-vs-pooled
regression tests pin down.  :func:`derive_seed` hashes with SHA-256 rather
than Python's per-process-salted ``hash()`` so derived seeds survive process
boundaries and interpreter restarts.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence

from repro.servers.base import Request
from repro.workloads.attacks import attack_request_for
from repro.workloads.benign import random_legitimate_request


def derive_seed(*parts: object) -> int:
    """Derive a child RNG seed from a root seed plus distinguishing labels.

    Stable across processes and Python versions (unlike ``hash()``, which is
    salted per process): the parts' ``repr`` is SHA-256 hashed and the first
    8 bytes become the seed.  Used for per-instance traffic streams, arrival
    processes, and per-shard worker RNGs, so no derived stream ever depends
    on worker count or spawn order.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


class ArrivalProcess:
    """Base class: generates inter-arrival gaps (virtual seconds) from an RNG."""

    name = "arrival"

    def inter_arrivals(self, count: int, rng: random.Random) -> List[float]:
        """``count`` successive gaps between request arrivals."""
        raise NotImplementedError

    def arrival_times(self, count: int, rng: random.Random) -> List[float]:
        """Cumulative arrival times for ``count`` requests, starting at the first gap."""
        times: List[float] = []
        now = 0.0
        for gap in self.inter_arrivals(count, rng):
            now += gap
            times.append(now)
        return times


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps at ``rate`` requests/virtual-second."""

    rate: float = 100.0
    name = "poisson"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def inter_arrivals(self, count: int, rng: random.Random) -> List[float]:
        return [rng.expovariate(self.rate) for _ in range(count)]


@dataclass
class UniformArrivals(ArrivalProcess):
    """Evenly spaced arrivals at ``rate`` requests/virtual-second (no jitter)."""

    rate: float = 100.0
    name = "uniform"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def inter_arrivals(self, count: int, rng: random.Random) -> List[float]:
        gap = 1.0 / self.rate
        return [gap] * count

    def arrival_times(self, count: int, rng: random.Random) -> List[float]:
        gap = 1.0 / self.rate
        return [gap * (index + 1) for index in range(count)]


@dataclass
class BurstyArrivals(ArrivalProcess):
    """Bursts of back-to-back arrivals separated by long idle gaps.

    Models flash crowds / mail fetch storms: requests arrive in bursts of
    (on average) ``burst_size``, tightly spaced at ``rate`` within a burst,
    with an idle gap ``idle_factor`` times the mean in-burst gap between
    bursts.  The long-run average rate is below ``rate``; what matters for
    the scheduler is the ordering pressure bursts create when several
    instances' bursts collide.
    """

    rate: float = 100.0
    burst_size: int = 8
    idle_factor: float = 20.0
    name = "bursty"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.idle_factor < 1.0:
            raise ValueError("idle_factor must be >= 1")

    def inter_arrivals(self, count: int, rng: random.Random) -> List[float]:
        gaps: List[float] = []
        in_burst_gap = 1.0 / self.rate
        remaining_in_burst = 0
        for _ in range(count):
            if remaining_in_burst <= 0:
                # Start a new burst after an idle gap (geometric burst length
                # keeps the process memoryless at the burst level).
                gaps.append(rng.expovariate(1.0 / (in_burst_gap * self.idle_factor)))
                remaining_in_burst = 1 + rng.randrange(2 * self.burst_size - 1)
            else:
                gaps.append(rng.expovariate(self.rate))
            remaining_in_burst -= 1
        return gaps


@dataclass
class RampArrivals(ArrivalProcess):
    """Arrivals that accelerate linearly from ``start_rate`` to ``end_rate``.

    Models a ramping load test: the instantaneous rate interpolates between
    the endpoints over the stream, so early requests are sparse and late
    requests dense (or the reverse, for a ramp-down).
    """

    start_rate: float = 20.0
    end_rate: float = 200.0
    name = "ramp"

    def __post_init__(self) -> None:
        if self.start_rate <= 0 or self.end_rate <= 0:
            raise ValueError("rates must be positive")

    def inter_arrivals(self, count: int, rng: random.Random) -> List[float]:
        gaps: List[float] = []
        for index in range(count):
            frac = index / max(count - 1, 1)
            rate = self.start_rate + (self.end_rate - self.start_rate) * frac
            gaps.append(rng.expovariate(rate))
        return gaps


#: Named arrival-process constructors for the CLI: name -> rate -> process.
ARRIVALS: Dict[str, Callable[[float], ArrivalProcess]] = {
    "poisson": lambda rate: PoissonArrivals(rate=rate),
    "uniform": lambda rate: UniformArrivals(rate=rate),
    "bursty": lambda rate: BurstyArrivals(rate=rate),
    "ramp": lambda rate: RampArrivals(start_rate=max(rate / 10.0, 1e-6), end_rate=rate),
}


def make_arrival(name: str, rate: float = 100.0) -> ArrivalProcess:
    """Construct a registered arrival process by name at the given peak rate."""
    try:
        factory = ARRIVALS[name]
    except KeyError:
        raise KeyError(
            f"unknown arrival process {name!r} (choose from {sorted(ARRIVALS)})"
        ) from None
    return factory(rate)


# ---------------------------------------------------------------------------
# The timeline
# ---------------------------------------------------------------------------


@dataclass
class FleetRequest:
    """One scheduled request: which instance, when (virtual), and what."""

    __slots__ = ("instance", "at", "seq", "request")

    instance: int
    at: float
    seq: int
    request: Request


@dataclass
class InstanceTraffic:
    """The traffic recipe for one fleet instance (content + arrival shape)."""

    server: str
    arrival: ArrivalProcess = field(default_factory=PoissonArrivals)
    weight: float = 1.0
    attack_every: int = 10

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be >= 0")


def split_by_weight(total: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``total`` requests across weights (largest-remainder method).

    Deterministic, exact (counts sum to ``total``), and independent of any
    scheduler parameter — the per-instance request counts are part of the
    workload definition.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if not weights:
        return []
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    shares = [total * weight / weight_sum for weight in weights]
    counts = [int(share) for share in shares]
    remainders = sorted(
        range(len(weights)),
        key=lambda index: (counts[index] + 1 - shares[index], index),
    )
    for index in remainders[: total - sum(counts)]:
        counts[index] += 1
    return counts


class TrafficModel:
    """Composes per-instance arrival processes into one fleet timeline.

    Parameters
    ----------
    instances:
        One :class:`InstanceTraffic` per fleet instance, in instance order.
    total_requests:
        Requests across the whole fleet, apportioned by instance weight.
    seed:
        Root seed; all per-instance randomness derives from it via
        :func:`derive_seed`, never from global state.
    """

    def __init__(
        self,
        instances: Sequence[InstanceTraffic],
        total_requests: int,
        seed: int = 20040101,
    ) -> None:
        if not instances:
            raise ValueError("a fleet needs at least one instance")
        if total_requests <= 0:
            raise ValueError("total_requests must be positive")
        self.instances = list(instances)
        self.total_requests = total_requests
        self.seed = seed
        self.counts = split_by_weight(
            total_requests, [traffic.weight for traffic in self.instances]
        )

    def instance_requests(self, index: int) -> List[Request]:
        """The request content for one instance (mixed benign/attack)."""
        traffic = self.instances[index]
        rng = random.Random(derive_seed(self.seed, "traffic", index))
        requests: List[Request] = []
        attack_every = traffic.attack_every
        for seq in range(self.counts[index]):
            if attack_every > 0 and seq > 0 and seq % attack_every == 0:
                requests.append(attack_request_for(traffic.server))
            else:
                requests.append(random_legitimate_request(traffic.server, rng))
        return requests

    def instance_arrivals(self, index: int) -> List[float]:
        """The virtual arrival times for one instance's requests."""
        traffic = self.instances[index]
        rng = random.Random(derive_seed(self.seed, "arrival", index))
        return traffic.arrival.arrival_times(self.counts[index], rng)

    def timeline(self) -> List[FleetRequest]:
        """The merged fleet timeline, ordered by (arrival, instance, seq).

        Ties (identical virtual arrival times, e.g. two uniform processes at
        the same rate) break by instance index then per-instance sequence, so
        the ordering is total and reproducible.
        """
        merged: List[FleetRequest] = []
        for index in range(len(self.instances)):
            arrivals = self.instance_arrivals(index)
            requests = self.instance_requests(index)
            merged.extend(
                FleetRequest(instance=index, at=at, seq=seq, request=request)
                for seq, (at, request) in enumerate(zip(arrivals, requests))
            )
        merged.sort(key=lambda fr: (fr.at, fr.instance, fr.seq))
        return merged

    def describe(self) -> str:
        """One-line workload summary for reports and logs."""
        shapes = ", ".join(
            f"{traffic.server}:{traffic.arrival.name}" for traffic in self.instances
        )
        return (
            f"{self.total_requests} requests over {len(self.instances)} "
            f"instances (seed {self.seed}; {shapes})"
        )


def interleave(streams: Iterable[Sequence[FleetRequest]]) -> List[FleetRequest]:
    """Merge already-ordered per-instance streams by (arrival, instance, seq)."""
    merged: List[FleetRequest] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda fr: (fr.at, fr.instance, fr.seq))
    return merged


__all__ = [
    "ARRIVALS",
    "ArrivalProcess",
    "BurstyArrivals",
    "FleetRequest",
    "InstanceTraffic",
    "PoissonArrivals",
    "RampArrivals",
    "TrafficModel",
    "UniformArrivals",
    "derive_seed",
    "interleave",
    "make_arrival",
    "split_by_weight",
]
