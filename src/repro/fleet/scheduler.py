"""The fleet scheduler: N cloned server instances under one traffic timeline.

:func:`run_fleet` is the cluster-scale counterpart of
:func:`~repro.harness.soak.run_soak_experiment`.  Where a soak shards one
server's stream, a fleet instantiates *many* servers — any mix of the five
profiles x five policies — and drives them with the
:class:`~repro.fleet.traffic.TrafficModel` timeline, interleaved by virtual
arrival time.  The mechanics reuse the PR 5 substrate end to end:

* one **template** is booted per distinct ``(server, policy, config)`` group
  and its post-boot :class:`~repro.servers.base.ProcessImage` captured; every
  instance of the group is then cloned via
  :meth:`~repro.servers.base.Server.adopt_image` (boot cost paid once per
  group, not per instance);
* a dead instance is restored O(dirty-bytes) from its image by the monitor,
  exactly like the soak's in-shard restarts;
* instances are partitioned into ``shards`` **contiguous groups of
  instances** and fanned over the same forked pool.  Instances are
  independent processes, so per-instance tallies cannot observe the
  partition: shard boundaries depend only on ``shards`` (never ``workers``),
  the timeline is generated in the parent, and each worker's RNG is seeded
  from ``(seed, shard index)`` — pooled runs are bit-identical to serial.

Requests that arrive while their instance is down (or after the wall-clock
budget expires) are **dropped**: the scheduler emits a synthetic
:class:`~repro.telemetry.events.RequestEnd` with outcome ``"dropped"`` on the
instance's bus.  That one decision is what makes ``repro fleet report``
exact — the live tallies and any streaming export (SQLite spills merged in
shard order, JSONL session spills) see the *same* event stream, so counts
re-derived from an export equal the live ones by construction.  Monitor
restarts flow through the stream too
(:class:`~repro.telemetry.events.RollbackPerformed` with
``to_boot_image=True`` and no request id); only boot failures and the
clone-time boot retry remain live-only bookkeeping (no sink is attached
yet when they happen).

PR 10 adds the self-healing mode: ``run_fleet(recovery=...)`` wraps every
live instance in a
:class:`~repro.recovery.supervisor.RecoverySupervisor` (incremental
snapshots, rollback + retry on fatal faults, poison-request quarantine),
optionally driven by per-instance seeded fault injection — all of it
flowing through the same event stream, so the export-equals-live property
extends to rollbacks, quarantines, and injected faults.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.traffic import (
    FleetRequest,
    InstanceTraffic,
    TrafficModel,
    derive_seed,
    make_arrival,
)
from repro.harness.stability import WorkloadTallySink
from repro.memory.shared_image import SharedImageStore
from repro.recovery.faults import FAULT_KINDS, FaultInjector
from repro.recovery.supervisor import RecoveryPolicy, RecoverySupervisor
from repro.servers.base import ProcessImage, Server, bounded_history_limit
from repro.telemetry.events import (
    FaultInjected,
    RequestEnd,
    RequestQuarantined,
    RollbackPerformed,
    SnapshotTaken,
)
from repro.telemetry.session import current_session
from repro.telemetry.sqlite import SqliteSink, merge_sqlite
from repro.telemetry.stats import StatsSink

#: Outcome stamped on the synthetic RequestEnd the scheduler emits for a
#: request that never reached a live server (instance down past restart).
#: Distinct from every RequestOutcome value.
DROPPED_OUTCOME = "dropped"

#: Outcome stamped on requests dropped because the wall-clock budget
#: (``max_seconds``) expired.  A distinct outcome so an export alone answers
#: "did this run hit its deadline, and how much of the tail was cut?".
DEADLINE_OUTCOME = "dropped-deadline"

#: State inherited by forked shard workers (set immediately before the pool
#: is created, cleared after; never pickled).
_POOL_FLEET: Optional["_FleetRun"] = None

#: The most recent run's shared-image store (test hook: lets the leak test
#: assert that the run's /dev/shm segments were actually released).
_LAST_IMAGE_STORE: Optional[SharedImageStore] = None


def _share_process_image(store: SharedImageStore, image: ProcessImage) -> ProcessImage:
    """Rebind a boot image's address-space payload into shared memory.

    Everything a clone restores stays bit-identical; only where the template
    segment bytes live changes (one shared block instead of one ``bytes``
    copy per image per process).
    """
    shared_ctx = store.share_image(image.ctx)
    if shared_ctx is image.ctx:
        return image
    return replace(image, ctx=shared_ctx)


class FleetTallySink(WorkloadTallySink):
    """The soak tally semantics, extended with the scheduler's drop events.

    A dropped legitimate request counts as failed service (the soak's
    ``unserved_while_down`` accounting, now flowing through the event stream
    instead of a side counter); a dropped attack counts as neither survived
    nor fatal — the attack never ran.  Because drops are ordinary events,
    re-feeding an export through this sink reproduces the live tallies.

    The recovery events extend the same contract:

    * :class:`~repro.telemetry.events.RollbackPerformed` carrying a
      ``request_id`` cancels that attempt's failure count for legitimate
      requests — the supervisor's retry or quarantine is the terminal word
      on the request, so the rolled-back attempt must not count as failed
      service (``server_deaths`` stands: the attempt really did kill the
      server);
    * :class:`~repro.telemetry.events.RequestQuarantined` is the terminal
      disposition of a poison request (tallied separately — neither served
      nor failed, and excluded from the availability denominator);
    * deadline drops (:data:`DEADLINE_OUTCOME`) count as drops *and* feed a
      ``deadline_dropped`` counter, so a wall-clock-budget run is
      interpretable from its export alone.
    """

    def __init__(self) -> None:
        super().__init__()
        self.legitimate_dropped = 0
        self.attacks_dropped = 0
        self.deadline_dropped = 0
        self.rollbacks = 0
        self.boot_restarts = 0
        self.quarantined = 0
        self.quarantined_attacks = 0
        self.snapshots = 0
        self.faults_injected = 0

    def emit(self, event: object) -> None:
        if isinstance(event, RequestEnd) and event.outcome in (
            DROPPED_OUTCOME, DEADLINE_OUTCOME,
        ):
            if event.outcome == DEADLINE_OUTCOME:
                self.deadline_dropped += 1
            if event.is_attack:
                self.attacks_dropped += 1
            else:
                self.legitimate_dropped += 1
            return
        if isinstance(event, RollbackPerformed):
            if event.to_boot_image:
                self.boot_restarts += 1
            else:
                self.rollbacks += 1
            if event.request_id is not None and not event.is_attack:
                # Cancel the rolled-back attempt's failure: its RequestEnd
                # already counted legitimate_failed, but retry/quarantine is
                # the terminal disposition for this request.
                self.legitimate_failed -= 1
            return
        if isinstance(event, RequestQuarantined):
            if event.is_attack:
                self.quarantined_attacks += 1
            else:
                self.quarantined += 1
            return
        if isinstance(event, SnapshotTaken):
            self.snapshots += 1
            return
        if isinstance(event, FaultInjected):
            self.faults_injected += 1
            return
        super().emit(event)


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass
class InstanceSpec:
    """One line of a fleet spec: ``count`` instances of a (server, policy).

    ``weight`` scales each instance's share of the fleet's total requests;
    ``arrival``/``rate`` pick its arrival process
    (:data:`~repro.fleet.traffic.ARRIVALS`); ``attack_every`` mixes the
    server's documented attack into its benign stream at that period
    (0 disables attacks).
    """

    server: str
    policy: str
    count: int = 1
    weight: float = 1.0
    attack_every: int = 10
    arrival: str = "poisson"
    rate: float = 100.0
    config: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class FleetInstance:
    """One expanded instance (an InstanceSpec line contributes ``count`` of these)."""

    index: int
    server: str
    policy: str
    weight: float
    attack_every: int
    arrival: str
    rate: float
    config: Optional[Dict[str, object]] = None

    @property
    def group_key(self) -> Tuple[str, str, str]:
        """Instances sharing a key share one booted template image."""
        config = self.config or {}
        return (self.server, self.policy, repr(sorted(config.items())))

    @property
    def label(self) -> str:
        return f"{self.server}/{self.policy}"


def expand_instances(specs: Sequence[InstanceSpec]) -> List[FleetInstance]:
    """Expand spec lines into concrete instances, indexed in spec order.

    The index doubles as the instance's scenario id in telemetry exports, so
    spec order is the export order.
    """
    if not specs:
        raise ValueError("a fleet needs at least one InstanceSpec")
    expanded: List[FleetInstance] = []
    for spec in specs:
        for _ in range(spec.count):
            expanded.append(
                FleetInstance(
                    index=len(expanded),
                    server=spec.server,
                    policy=spec.policy,
                    weight=spec.weight,
                    attack_every=spec.attack_every,
                    arrival=spec.arrival,
                    rate=spec.rate,
                    config=dict(spec.config) if spec.config else None,
                )
            )
    return expanded


# ---------------------------------------------------------------------------
# Tallies
# ---------------------------------------------------------------------------


@dataclass
class InstanceTally:
    """Per-instance counts (the rows of ``repro fleet report``).

    All fields except ``boot_deaths`` and ``restarts`` are derived from the
    instance's event stream, so an export re-derives them exactly; the two
    live-only fields track monitor work no request event can carry.
    """

    index: int
    server: str
    policy: str
    requests: int = 0
    attack_requests: int = 0
    legitimate_served: int = 0
    legitimate_failed: int = 0
    dropped: int = 0
    deadline_dropped: int = 0
    attacks_survived: int = 0
    server_deaths: int = 0
    boot_deaths: int = 0
    restarts: int = 0
    rollbacks: int = 0
    quarantined: int = 0
    quarantined_attacks: int = 0
    snapshots: int = 0
    faults_injected: int = 0
    memory_errors_logged: int = 0
    error_sites: Dict[str, int] = field(default_factory=dict)

    @property
    def legitimate_requests(self) -> int:
        return self.requests - self.attack_requests

    @property
    def availability(self) -> float:
        """Fraction of legitimate requests served (1.0 when none arrived).

        Quarantined requests are excluded from the denominator: the
        supervisor's retry budget established they are poison inputs, and
        the interesting ratio is how the server treated the traffic it could
        have served.
        """
        eligible = self.legitimate_requests - self.quarantined
        if eligible <= 0:
            return 1.0
        return self.legitimate_served / eligible

    def as_dict(self) -> Dict[str, object]:
        """Order-independent tally dict (what serial == pooled compares)."""
        return {
            "index": self.index,
            "server": self.server,
            "policy": self.policy,
            "requests": self.requests,
            "attack_requests": self.attack_requests,
            "legitimate_served": self.legitimate_served,
            "legitimate_failed": self.legitimate_failed,
            "dropped": self.dropped,
            "deadline_dropped": self.deadline_dropped,
            "attacks_survived": self.attacks_survived,
            "server_deaths": self.server_deaths,
            "boot_deaths": self.boot_deaths,
            "restarts": self.restarts,
            "rollbacks": self.rollbacks,
            "quarantined": self.quarantined,
            "quarantined_attacks": self.quarantined_attacks,
            "snapshots": self.snapshots,
            "faults_injected": self.faults_injected,
            "memory_errors_logged": self.memory_errors_logged,
            "error_sites": dict(sorted(self.error_sites.items())),
        }


@dataclass
class FleetResult:
    """Outcome of one fleet run (per-instance tallies in instance order)."""

    instances: List[InstanceTally]
    shard_count: int
    workers: int
    seed: int
    boot_fatal: Dict[str, bool]
    wall_seconds: float
    stats: StatsSink
    sqlite_path: Optional[str] = None
    deadline_hit: bool = False

    def _sum(self, field_name: str) -> int:
        return sum(getattr(tally, field_name) for tally in self.instances)

    @property
    def total_requests(self) -> int:
        return self._sum("requests")

    @property
    def attack_requests(self) -> int:
        return self._sum("attack_requests")

    @property
    def legitimate_requests(self) -> int:
        return self.total_requests - self.attack_requests

    @property
    def legitimate_served(self) -> int:
        return self._sum("legitimate_served")

    @property
    def legitimate_failed(self) -> int:
        return self._sum("legitimate_failed")

    @property
    def dropped(self) -> int:
        return self._sum("dropped")

    @property
    def deadline_dropped(self) -> int:
        return self._sum("deadline_dropped")

    @property
    def attacks_survived(self) -> int:
        return self._sum("attacks_survived")

    @property
    def server_deaths(self) -> int:
        return self._sum("server_deaths")

    @property
    def restarts(self) -> int:
        return self._sum("restarts")

    @property
    def rollbacks(self) -> int:
        return self._sum("rollbacks")

    @property
    def quarantined(self) -> int:
        return self._sum("quarantined") + self._sum("quarantined_attacks")

    @property
    def snapshots(self) -> int:
        return self._sum("snapshots")

    @property
    def faults_injected(self) -> int:
        return self._sum("faults_injected")

    @property
    def availability(self) -> float:
        """Fleet-wide fraction of legitimate requests served.

        Like the per-instance ratio, quarantined legitimate requests are
        excluded from the denominator.
        """
        eligible = self.legitimate_requests - self._sum("quarantined")
        if eligible <= 0:
            return 1.0
        return self.legitimate_served / eligible

    @property
    def requests_per_sec(self) -> float:
        """End-to-end fleet throughput (templates + all shards, wall clock)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_requests / self.wall_seconds

    def tally(self) -> List[Dict[str, object]]:
        """Per-instance tally dicts (the serial == pooled invariant)."""
        return [tally.as_dict() for tally in self.instances]


# ---------------------------------------------------------------------------
# The run plan (inherited across the fork)
# ---------------------------------------------------------------------------


@dataclass
class _FleetGroup:
    """One booted template: its image plus whether the boot was fatal."""

    image: object
    boot_fatal: bool


@dataclass
class _FleetRun:
    """Everything a shard worker needs, inherited across the fork."""

    instances: List[FleetInstance]
    groups: Dict[Tuple[str, str, str], _FleetGroup]
    shard_instances: List[List[FleetInstance]]
    shard_timelines: List[List[FleetRequest]]
    seed: int
    scale: float
    history_limit: Optional[int]
    restart_on_death: bool
    stats_every: int
    spill_dir: Optional[str]
    deadline: Optional[float]
    recovery: Optional[RecoveryPolicy] = None
    fault_rate: float = 0.0
    fault_every: Optional[int] = None
    fault_kinds: Tuple[str, ...] = FAULT_KINDS

    @property
    def inject_faults(self) -> bool:
        return self.fault_rate > 0.0 or self.fault_every is not None

    def build_clone(self, instance: FleetInstance) -> Server:
        from repro.harness.engine import ENGINE

        server = ENGINE.build_server(
            instance.server, instance.policy, config=instance.config,
            plant_attack=True, scale=self.scale,
        )
        server.limit_history(self.history_limit)
        server.adopt_image(self.groups[instance.group_key].image)
        return server


@dataclass
class _FleetShardOutcome:
    """One shard's results: its instances' tallies plus the shard aggregates."""

    index: int
    tallies: List[InstanceTally]
    stats: StatsSink
    spill_path: Optional[str]
    deadline_hit: bool
    wall_seconds: float


def split_instances(instances: Sequence[FleetInstance], shards: int) -> List[List[FleetInstance]]:
    """Partition instances into ``shards`` contiguous, near-equal groups.

    The shard is the scheduler's unit of parallelism *and* of determinism:
    boundaries depend only on ``shards``, never on ``workers``, and because
    instances are independent processes the partition cannot change any
    per-instance tally.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    instances = list(instances)
    shards = min(shards, max(len(instances), 1))
    base, extra = divmod(len(instances), shards)
    groups: List[List[FleetInstance]] = []
    position = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        groups.append(instances[position:position + size])
        position += size
    return groups


# ---------------------------------------------------------------------------
# Shard execution
# ---------------------------------------------------------------------------


def _drop(
    server: Server, fleet_request: FleetRequest, outcome: str = DROPPED_OUTCOME
) -> None:
    """Emit the synthetic dropped RequestEnd for a request that never ran."""
    request = fleet_request.request
    server.ctx.bus.emit(
        RequestEnd(
            request_id=request.request_id,
            kind=request.kind,
            outcome=outcome,
            is_attack=request.is_attack,
        )
    )


def _run_fleet_shard(run: "_FleetRun", index: int) -> _FleetShardOutcome:
    """Drive one shard's instances through its slice of the timeline.

    Every per-shard random source is seeded from ``(seed, shard index)`` —
    the worker that happens to execute the shard contributes nothing — and
    all request content/order was fixed in the parent, so this function is a
    pure function of the run plan.
    """
    import random as _random

    _random.seed(derive_seed(run.seed, "worker", index))
    started = time.perf_counter()
    instances = run.shard_instances[index]
    timeline = run.shard_timelines[index]
    stats = StatsSink(flush_every=run.stats_every)
    spill_path: Optional[str] = None
    sqlite_sink: Optional[SqliteSink] = None
    if run.spill_dir is not None:
        spill_path = os.path.join(run.spill_dir, f"shard-{index:04d}.sqlite")
        sqlite_sink = SqliteSink(spill_path)

    servers: Dict[int, Server] = {}
    sinks: Dict[int, FleetTallySink] = {}
    supervisors: Dict[int, RecoverySupervisor] = {}
    boot_deaths: Dict[int, int] = {}
    restarts: Dict[int, int] = {}
    for instance in instances:
        server = run.build_clone(instance)
        boot_deaths[instance.index] = 0
        restarts[instance.index] = 0
        if not server.alive:
            # Fatal boot image (Pine/Mutt style persistent triggers): mirror
            # the soak accounting — the failed boot is a death, the monitor
            # retries once up front, and the request loop retries per request.
            boot_deaths[instance.index] += 1
            if run.restart_on_death:
                server.restart()
                restarts[instance.index] += 1
                if not server.alive:
                    boot_deaths[instance.index] += 1
        sinks[instance.index] = server.add_telemetry_sink(FleetTallySink())
        server.add_telemetry_sink(stats.view(instance.server, instance.policy))
        if sqlite_sink is not None:
            server.add_telemetry_sink(
                sqlite_sink.scoped(dict(server.ctx.bus.scope), instance.index)
            )
        if run.recovery is not None and server.alive:
            # Self-healing mode: every live instance gets a supervisor (its
            # base snapshot is this post-clone state) and, when fault
            # injection is on, a per-*instance* injector — the schedule is a
            # pure function of (seed, instance index), so serial and pooled
            # runs inject identically.
            injector = None
            if run.inject_faults:
                injector = FaultInjector(
                    derive_seed(run.seed, "faults", instance.index),
                    rate=run.fault_rate,
                    every=run.fault_every,
                    kinds=run.fault_kinds,
                )
            supervisors[instance.index] = RecoverySupervisor(
                server, run.recovery, injector=injector
            )
        servers[instance.index] = server

    session = current_session()
    deadline_hit = False

    def dispatch(server: Server, fleet_request: FleetRequest) -> None:
        nonlocal deadline_hit
        if deadline_hit:
            _drop(server, fleet_request, DEADLINE_OUTCOME)
            return
        if run.deadline is not None and time.monotonic() > run.deadline:
            # Budget exhausted: the rest of the timeline is dropped through
            # the event stream, so exports stay exact even in wall-clock mode.
            deadline_hit = True
            _drop(server, fleet_request, DEADLINE_OUTCOME)
            return
        supervisor = supervisors.get(fleet_request.instance)
        if supervisor is not None:
            # The supervisor owns the recovery path: the server is alive
            # when submit returns (rollback, retry, quarantine, or
            # boot-image degradation all end with a serving instance).
            supervisor.submit(fleet_request.request)
            return
        if not server.alive:
            if run.restart_on_death:
                server.restart()
                restarts[fleet_request.instance] += 1
                # Monitor restarts also flow through the event stream (boot
                # retries at clone time stay live-only: no sink is attached
                # yet), so exports can count restart work.
                server.ctx.bus.emit(RollbackPerformed(
                    snapshot_index=0, request_id=None, to_boot_image=True,
                ))
                if not server.alive:
                    boot_deaths[fleet_request.instance] += 1
            if not server.alive:
                _drop(server, fleet_request)
                return
        server.process(fleet_request.request)

    # Dispatch in batches: the timeline is walked in order, but the maximal
    # consecutive run of requests for one instance — the stretch between two
    # virtual-time barriers, where the schedule stays on one process — pays
    # the server lookup and the session scenario scope once, not per request.
    # Request order (and hence every tally) is bit-identical to the
    # one-request-at-a-time loop this replaces.
    position = 0
    total = len(timeline)
    while position < total:
        instance_index = timeline[position].instance
        end = position + 1
        while end < total and timeline[end].instance == instance_index:
            end += 1
        server = servers[instance_index]
        if session is not None:
            # Stamp each instance's events with its index as the scenario id,
            # so JSONL session exports merge in instance order like the
            # engine's scenarios do.
            with session.scenario_scope(instance_index):
                for offset in range(position, end):
                    dispatch(server, timeline[offset])
        else:
            for offset in range(position, end):
                dispatch(server, timeline[offset])
        position = end

    tallies: List[InstanceTally] = []
    for instance in instances:
        server = servers[instance.index]
        server.stop()
        sink = sinks[instance.index]
        instance_requests = [
            fr for fr in timeline if fr.instance == instance.index
        ]
        supervisor = supervisors.get(instance.index)
        tallies.append(
            InstanceTally(
                index=instance.index,
                server=instance.server,
                policy=instance.policy,
                requests=len(instance_requests),
                attack_requests=sum(
                    1 for fr in instance_requests if fr.request.is_attack
                ),
                legitimate_served=sink.legitimate_served,
                legitimate_failed=sink.legitimate_failed + sink.legitimate_dropped,
                dropped=sink.legitimate_dropped + sink.attacks_dropped,
                deadline_dropped=sink.deadline_dropped,
                attacks_survived=sink.attacks_survived,
                server_deaths=sink.server_deaths,
                boot_deaths=boot_deaths[instance.index],
                restarts=restarts[instance.index]
                + (supervisor.boot_restarts if supervisor is not None else 0),
                rollbacks=sink.rollbacks,
                quarantined=sink.quarantined,
                quarantined_attacks=sink.quarantined_attacks,
                snapshots=sink.snapshots,
                faults_injected=sink.faults_injected,
                memory_errors_logged=sink.memory_errors,
                error_sites=dict(sink.error_sites),
            )
        )
    stats.flush()
    if sqlite_sink is not None:
        sqlite_sink.close()
    return _FleetShardOutcome(
        index=index,
        tallies=tallies,
        stats=stats,
        spill_path=spill_path,
        deadline_hit=deadline_hit,
        wall_seconds=time.perf_counter() - started,
    )


def _pool_run_fleet_shard(index: int) -> _FleetShardOutcome:
    """Entry point inside a forked worker (the plan travels via the fork)."""
    return _run_fleet_shard(_POOL_FLEET, index)


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def run_fleet(
    specs: Sequence[InstanceSpec],
    total_requests: int = 2000,
    seed: int = 20040101,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    scale: float = 0.25,
    restart_on_death: bool = True,
    history_limit: Optional[int] = 256,
    allow_unbounded_history: bool = False,
    sqlite_path: Optional[str] = None,
    stats_every: int = 10_000,
    max_seconds: Optional[float] = None,
    recovery: Optional[RecoveryPolicy] = None,
    fault_rate: float = 0.0,
    fault_every: Optional[int] = None,
    fault_kinds: Sequence[str] = FAULT_KINDS,
) -> FleetResult:
    """Run a fleet soak: boot one template per group, clone, schedule, tally.

    ``shards`` defaults to the instance count (one shard per instance —
    maximal parallelism); any smaller value groups contiguous instances.
    ``workers`` of None/0/1 runs the shards serially through the *same*
    shard function, so pooled runs are tally-identical to serial ones by
    construction.  ``sqlite_path`` streams every event to per-shard SQLite
    spill databases merged (in shard order) into one database at that path.
    ``max_seconds`` is a wall-clock budget: past it, remaining requests are
    dropped through the event stream (tallies then depend on machine speed —
    use the request-count budget for reproducible runs).

    ``recovery`` switches every live instance into self-healing mode: a
    :class:`~repro.recovery.supervisor.RecoverySupervisor` per instance
    replaces boot-image restarts with last-good-snapshot rollbacks, bounded
    retries, and poison-request quarantine.  ``fault_rate``/``fault_every``
    add a per-instance seeded
    :class:`~repro.recovery.faults.FaultInjector` (kinds drawn from
    ``fault_kinds``); fault injection implies supervision, so a default
    :class:`~repro.recovery.supervisor.RecoveryPolicy` is used when faults
    are requested without an explicit policy.

    The per-request history of every instance is bounded (``history_limit``),
    and — because a fleet is the 10^6-request path — an unbounded history is
    refused unless ``allow_unbounded_history=True`` is passed explicitly.
    """
    global _POOL_FLEET
    if recovery is None and (fault_rate > 0.0 or fault_every is not None):
        recovery = RecoveryPolicy()
    history_limit = bounded_history_limit(
        history_limit, allow_unbounded=allow_unbounded_history, harness="run_fleet"
    )
    instances = expand_instances(specs)
    model = TrafficModel(
        [
            InstanceTraffic(
                server=instance.server,
                arrival=make_arrival(instance.arrival, instance.rate),
                weight=instance.weight,
                attack_every=instance.attack_every,
            )
            for instance in instances
        ],
        total_requests=total_requests,
        seed=seed,
    )
    timeline = model.timeline()

    shard_count = len(instances) if shards is None else shards
    shard_groups = split_instances(instances, shard_count)
    shard_of = {
        instance.index: shard_index
        for shard_index, group in enumerate(shard_groups)
        for instance in group
    }
    shard_timelines: List[List[FleetRequest]] = [[] for _ in shard_groups]
    for fleet_request in timeline:
        shard_timelines[shard_of[fleet_request.instance]].append(fleet_request)

    started = time.perf_counter()
    from repro.harness.engine import ENGINE

    global _LAST_IMAGE_STORE
    store = SharedImageStore()
    _LAST_IMAGE_STORE = store
    groups: Dict[Tuple[str, str, str], _FleetGroup] = {}
    boot_fatal: Dict[str, bool] = {}
    for instance in instances:
        key = instance.group_key
        if key in groups:
            continue
        template = ENGINE.build_server(
            instance.server, instance.policy, config=instance.config,
            plant_attack=True, scale=scale,
        )
        template.limit_history(history_limit)
        fatal = template.start().fatal
        image = template.boot_image
        if not fatal:
            # Session setup (the stability experiments' follow-up requests,
            # e.g. Mutt re-opening the INBOX after the planted startup folder
            # was rejected), then re-checkpoint: every clone AND every
            # monitor restart restores the serving state, paid once per group.
            for setup_request in ENGINE.profile(instance.server).make_follow_ups():
                template.process(setup_request)
            image = template.recheckpoint()
        # One shared copy of the template bytes per group: clones (serial or
        # across the fork) restore straight out of the shared block.
        groups[key] = _FleetGroup(
            image=_share_process_image(store, image), boot_fatal=fatal
        )
        boot_fatal[instance.label] = fatal
        template.stop()

    spill_dir: Optional[str] = None
    if sqlite_path is not None:
        spill_dir = sqlite_path + ".spills"
        os.makedirs(spill_dir, exist_ok=True)

    run = _FleetRun(
        instances=instances,
        groups=groups,
        shard_instances=shard_groups,
        shard_timelines=shard_timelines,
        seed=seed,
        scale=scale,
        history_limit=history_limit,
        restart_on_death=restart_on_death,
        stats_every=stats_every,
        spill_dir=spill_dir,
        deadline=(time.monotonic() + max_seconds) if max_seconds is not None else None,
        recovery=recovery,
        fault_rate=fault_rate,
        fault_every=fault_every,
        fault_kinds=tuple(fault_kinds),
    )

    count = 0 if workers is None else int(workers)
    outcomes: List[_FleetShardOutcome] = []
    try:
        if count > 1 and len(shard_groups) > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = None
            if context is not None:
                _POOL_FLEET = run
                try:
                    with ProcessPoolExecutor(
                        max_workers=min(count, len(shard_groups)), mp_context=context
                    ) as pool:
                        outcomes = list(
                            pool.map(_pool_run_fleet_shard, range(len(shard_groups)))
                        )
                finally:
                    _POOL_FLEET = None
        if not outcomes:
            outcomes = [
                _run_fleet_shard(run, index) for index in range(len(shard_groups))
            ]
    finally:
        # Release the shared template images whether the run finished or a
        # worker died mid-run: the parent created the /dev/shm segments, so
        # the parent closes and unlinks them (children only ever inherited
        # the mapping).  Nothing restores from the images past this point.
        store.close()

    stats = StatsSink(flush_every=0)
    tallies: List[InstanceTally] = []
    deadline_hit = False
    for outcome in outcomes:
        tallies.extend(outcome.tallies)
        stats.merge(outcome.stats)
        deadline_hit = deadline_hit or outcome.deadline_hit
    tallies.sort(key=lambda tally: tally.index)

    if sqlite_path is not None:
        spills = [
            outcome.spill_path for outcome in outcomes
            if outcome.spill_path is not None
        ]
        merge_sqlite(spills, sqlite_path)
        shutil.rmtree(spill_dir, ignore_errors=True)

    return FleetResult(
        instances=tallies,
        shard_count=len(shard_groups),
        workers=count,
        seed=seed,
        boot_fatal=boot_fatal,
        wall_seconds=time.perf_counter() - started,
        stats=stats,
        sqlite_path=sqlite_path,
        deadline_hit=deadline_hit,
    )


__all__ = [
    "DEADLINE_OUTCOME",
    "DROPPED_OUTCOME",
    "FleetInstance",
    "FleetResult",
    "FleetTallySink",
    "InstanceSpec",
    "InstanceTally",
    "expand_instances",
    "run_fleet",
    "split_instances",
]
