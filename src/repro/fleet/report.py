"""Fleet reporting: per-instance availability tables, live or from an export.

Two entry points, one semantics:

* :func:`format_fleet_table` renders a live
  :class:`~repro.fleet.scheduler.FleetResult` (or any list of
  :class:`~repro.fleet.scheduler.InstanceTally`) as the per-instance
  availability/error table ``repro fleet run`` prints.
* :func:`fleet_report_from_trace` re-derives those tallies from an exported
  trace (SQLite or JSONL — sniffed), by replaying each instance's events
  through the *same* :class:`~repro.fleet.scheduler.FleetTallySink` the live
  scheduler attaches.  Because the scheduler also routes drops through the
  event stream, every stream-derived column matches the live run exactly.
  Recovery extends the replay: a
  :class:`~repro.telemetry.events.RollbackPerformed` carrying a request id
  cancels that attempt's request count (retry or quarantine is the terminal
  disposition), a :class:`~repro.telemetry.events.RequestQuarantined` *is*
  the terminal disposition, and monitor restarts appear as boot-image
  rollbacks with no request id.  Only boot deaths and the clone-time boot
  retry remain live-only (they happen before any sink is attached) — the
  ``restarts`` column here counts the stream-visible restart work.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from repro.fleet.scheduler import FleetResult, FleetTallySink, InstanceTally
from repro.harness.report import format_simple_table
from repro.telemetry.events import (
    RequestEnd,
    RequestQuarantined,
    RollbackPerformed,
    from_record,
)
from repro.telemetry.summary import iter_trace_records


def fleet_report_from_trace(path: str) -> List[InstanceTally]:
    """Rebuild per-instance tallies from an exported fleet trace.

    Records are grouped by their ``scenario`` stamp (the scheduler uses the
    instance index as the scenario id) and each group's events replay through
    a fresh :class:`~repro.fleet.scheduler.FleetTallySink`.  Unscoped records
    (scenario ``None`` — e.g. engine-level bookkeeping) are ignored.
    """
    sinks: Dict[int, FleetTallySink] = {}
    tallies: Dict[int, InstanceTally] = {}
    for record in iter_trace_records(path):
        scenario = record.get("scenario")
        if not isinstance(scenario, int):
            continue
        try:
            event = from_record(record)
        except (ValueError, KeyError, TypeError):
            continue
        if scenario not in sinks:
            scope = record.get("scope") or {}
            sinks[scenario] = FleetTallySink()
            tallies[scenario] = InstanceTally(
                index=scenario,
                server=str(scope.get("server", "?")),
                policy=str(scope.get("policy", "?")),
            )
        sinks[scenario].emit(event)
        if isinstance(event, RequestEnd) and event.kind != "__startup__":
            tallies[scenario].requests += 1
            if event.is_attack:
                tallies[scenario].attack_requests += 1
        elif isinstance(event, RollbackPerformed) and event.request_id is not None:
            # A rolled-back attempt is not a request: the supervisor retried
            # or quarantined it, and that terminal event carries the count.
            tallies[scenario].requests -= 1
            if event.is_attack:
                tallies[scenario].attack_requests -= 1
        elif isinstance(event, RequestQuarantined):
            tallies[scenario].requests += 1
            if event.is_attack:
                tallies[scenario].attack_requests += 1
    for scenario, sink in sinks.items():
        tally = tallies[scenario]
        tally.legitimate_served = sink.legitimate_served
        tally.legitimate_failed = sink.legitimate_failed + sink.legitimate_dropped
        tally.dropped = sink.legitimate_dropped + sink.attacks_dropped
        tally.deadline_dropped = sink.deadline_dropped
        tally.attacks_survived = sink.attacks_survived
        tally.server_deaths = sink.server_deaths
        tally.restarts = sink.boot_restarts
        tally.rollbacks = sink.rollbacks
        tally.quarantined = sink.quarantined
        tally.quarantined_attacks = sink.quarantined_attacks
        tally.snapshots = sink.snapshots
        tally.faults_injected = sink.faults_injected
        tally.memory_errors_logged = sink.memory_errors
        tally.error_sites = dict(sink.error_sites)
    return [tallies[scenario] for scenario in sorted(tallies)]


def _rows(tallies: Iterable[InstanceTally]) -> List[Sequence[object]]:
    return [
        (
            tally.index,
            tally.server,
            tally.policy,
            tally.requests,
            tally.legitimate_served,
            tally.legitimate_failed,
            tally.dropped,
            tally.attacks_survived,
            tally.server_deaths,
            tally.restarts,
            tally.rollbacks,
            tally.quarantined + tally.quarantined_attacks,
            tally.memory_errors_logged,
            f"{tally.availability:.4f}",
        )
        for tally in tallies
    ]


_HEADERS = (
    "inst", "server", "policy", "requests", "served", "failed", "dropped",
    "survived", "deaths", "restarts", "rollbacks", "quarantined", "errors",
    "availability",
)


def _recovery_footer(tallies: Sequence[InstanceTally]) -> List[str]:
    """Summary lines derivable from tallies alone (live or from-trace)."""
    lines: List[str] = []
    deadline_dropped = sum(t.deadline_dropped for t in tallies)
    if deadline_dropped:
        lines.append(
            f"DEADLINE HIT: {deadline_dropped} request(s) dropped by the "
            "wall-clock budget"
        )
    rollbacks = sum(t.rollbacks for t in tallies)
    quarantined = sum(t.quarantined + t.quarantined_attacks for t in tallies)
    snapshots = sum(t.snapshots for t in tallies)
    faults = sum(t.faults_injected for t in tallies)
    if rollbacks or quarantined or snapshots or faults:
        lines.append(
            f"recovery: {snapshots} snapshots, {rollbacks} rollbacks, "
            f"{quarantined} quarantined, {faults} faults injected"
        )
    return lines


def format_fleet_table(
    result: Union[FleetResult, Sequence[InstanceTally]],
    title: str = "Fleet soak: per-instance availability",
) -> str:
    """The per-instance availability/error table (live result or tally list)."""
    if isinstance(result, FleetResult):
        tallies: Sequence[InstanceTally] = result.instances
        lines = [format_simple_table(_HEADERS, _rows(tallies), title=title)]
        lines.append("")
        lines.append(
            f"fleet: {result.total_requests} requests "
            f"({result.attack_requests} attack) over {len(tallies)} instances, "
            f"{result.shard_count} shards, workers={result.workers}, "
            f"seed={result.seed}"
        )
        lines.append(
            f"availability {result.availability:.4f}; "
            f"{result.server_deaths} deaths, {result.restarts} restarts, "
            f"{result.requests_per_sec:,.0f} req/s over "
            f"{result.wall_seconds:.2f}s"
            + ("; DEADLINE HIT (wall-clock budget)" if result.deadline_hit else "")
        )
        lines.extend(_recovery_footer(tallies))
        if result.sqlite_path:
            lines.append(f"telemetry: {result.sqlite_path} (SQLite)")
        return "\n".join(lines)
    lines = [format_simple_table(_HEADERS, _rows(result), title=title)]
    lines.extend(_recovery_footer(result))
    return "\n".join(lines)


__all__ = ["fleet_report_from_trace", "format_fleet_table"]
