"""Fleet soak service: a heterogeneous multi-server traffic scheduler.

The :mod:`repro.harness.soak` harness shards *one* server's stream; this
package drives the paper's §4.x.4 stability story at its "millions of users"
shape — many server instances (any mix of profiles x policies), each cloned
from a post-boot checkpoint image, fed mixed benign/attack request streams
whose arrival times come from seeded stochastic processes, with streaming
telemetry sinks so runs are bounded by counters and SQLite batches instead of
ring memory or flat JSONL files.

* :mod:`repro.fleet.traffic` — the workload model: per-instance arrival
  processes (Poisson / bursty / ramp / uniform) over mixed benign/attack
  generators, merged into one virtual-arrival-time timeline.  Deterministic
  per (seed, instance index), so traffic never depends on worker count.
* :mod:`repro.fleet.scheduler` — :func:`~repro.fleet.scheduler.run_fleet`:
  boots one template per (server, policy, config) group, clones instances
  from the template images over the fork pool, interleaves each shard's
  instances by arrival time, restores dead instances O(dirty-bytes), and
  tallies per instance (serial == pooled by construction).
* :mod:`repro.fleet.report` — per-instance availability/error tables, both
  from a live :class:`~repro.fleet.scheduler.FleetResult` and re-derived
  from a SQLite export (``repro fleet report``).
"""

from repro.fleet.report import fleet_report_from_trace, format_fleet_table
from repro.fleet.scheduler import (
    FleetResult,
    InstanceSpec,
    InstanceTally,
    expand_instances,
    run_fleet,
)
from repro.fleet.traffic import (
    ARRIVALS,
    ArrivalProcess,
    BurstyArrivals,
    FleetRequest,
    PoissonArrivals,
    RampArrivals,
    TrafficModel,
    UniformArrivals,
    derive_seed,
    make_arrival,
)

__all__ = [
    "ARRIVALS",
    "ArrivalProcess",
    "BurstyArrivals",
    "FleetRequest",
    "FleetResult",
    "InstanceSpec",
    "InstanceTally",
    "PoissonArrivals",
    "RampArrivals",
    "TrafficModel",
    "UniformArrivals",
    "derive_seed",
    "expand_instances",
    "fleet_report_from_trace",
    "format_fleet_table",
    "make_arrival",
    "run_fleet",
]
