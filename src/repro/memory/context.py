"""MemoryContext: the bundle of substrate objects a simulated C program runs in.

A context owns one address space, one object table, one heap allocator, one
call stack, and one policy-mediated accessor.  The server reimplementations
treat it as their process image plus libc: ``ctx.malloc`` / ``ctx.free`` for the
heap, ``ctx.stack_frame`` for stack-allocated locals, and ``ctx.mem`` for loads
and stores.  Swapping the policy is the analogue of recompiling the same source
with a different compiler — nothing else about the program changes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.core.policy import AccessPolicy
from repro.core.policies import FailureObliviousPolicy
from repro.memory.accessor import MemoryAccessor
from repro.memory.address_space import (
    AddressSpace,
    AddressSpaceCheckpoint,
    AddressSpaceDelta,
)
from repro.memory.allocator import HeapAllocator, HeapAllocatorCheckpoint
from repro.memory.cstring import read_c_string, write_c_string
from repro.memory.object_table import ObjectTable, ObjectTableCheckpoint
from repro.memory.pointer import FatPointer
from repro.memory.stack import CallStack, CallStackCheckpoint, StackFrame


@dataclass(frozen=True)
class MemoryImage:
    """A complete, pure-data checkpoint of one simulated process image.

    Composes the per-component checkpoints (address space bytes, object
    table, allocator, call stack) with the accessor's attribution labels and
    the policy's side state (statistics, error log, manufactured-value
    generators, boundless store).  Because no live object is referenced, one
    image can be restored into its own context any number of times *and*
    into other compatible contexts — which is how the pre-fork child pool
    clones workers from a single template boot.
    """

    policy_name: str
    space: AddressSpaceCheckpoint
    table: ObjectTableCheckpoint
    heap: HeapAllocatorCheckpoint
    stack: CallStackCheckpoint
    site: str
    request_id: Optional[int]
    policy_state: dict


@dataclass(frozen=True)
class MemoryDelta:
    """An incremental checkpoint: dirty segment blocks plus full side state.

    The address-space bytes dominate checkpoint cost by orders of magnitude,
    so only they are captured incrementally
    (:class:`~repro.memory.address_space.AddressSpaceDelta`); the object
    table, allocator, stack, and policy side state are small pure-data
    records and are captured whole — a delta is therefore self-contained for
    everything except segment bytes, and restoring snapshot *k* is "replay
    block deltas up to *k*, then adopt delta *k*'s components verbatim".
    """

    policy_name: str
    space: AddressSpaceDelta
    table: ObjectTableCheckpoint
    heap: HeapAllocatorCheckpoint
    stack: CallStackCheckpoint
    site: str
    request_id: Optional[int]
    policy_state: dict


class MemoryContext:
    """One simulated process image bound to one access policy.

    Parameters
    ----------
    policy:
        The build variant.  Defaults to the failure-oblivious policy so that
        quickstart examples demonstrate the paper's contribution by default.
    heap_size / stack_size / globals_size:
        Segment sizes, forwarded to :class:`~repro.memory.address_space.AddressSpace`.
    decision_cache:
        Whether the accessor may cache the last fully-validated referent
        (default on; the cached/uncached equivalence property turns it off
        for its reference context).
    """

    def __init__(
        self,
        policy: Optional[AccessPolicy] = None,
        heap_size: int = 4 * 1024 * 1024,
        stack_size: int = 256 * 1024,
        globals_size: int = 64 * 1024,
        decision_cache: bool = True,
    ) -> None:
        self.policy = policy if policy is not None else FailureObliviousPolicy()
        #: The unified telemetry bus for this process image (owned by the
        #: policy's error log, shared by the allocator and the server loop).
        self.bus = self.policy.bus
        self.space = AddressSpace(
            globals_size=globals_size, heap_size=heap_size, stack_size=stack_size
        )
        self.table = ObjectTable()
        self.heap = HeapAllocator(self.space, self.table, bus=self.bus)
        self.stack = CallStack(self.space, self.table)
        self.mem = MemoryAccessor(
            self.space, self.table, self.policy, decision_cache=decision_cache
        )
        # Policies holding per-unit side state (the boundless store) reclaim
        # it at unit death.  The object table is the single definition of
        # death — heap frees and stack frame pops both unregister there — so
        # this covers shapes the allocator's AllocFree event cannot (a soak
        # overflowing a different stack local every request).
        release = getattr(self.policy, "release_unit", None)
        if release is not None:
            self.table.add_death_hook(lambda unit: release(unit.label(), unit.size))

    # -- heap conveniences ---------------------------------------------------------

    def malloc(self, size: int, name: str = "malloc") -> FatPointer:
        """Allocate ``size`` bytes and return a pointer to the new unit."""
        return FatPointer(self.heap.malloc(size, name=name))

    def calloc(self, count: int, size: int, name: str = "calloc") -> FatPointer:
        """Allocate and zero ``count * size`` bytes."""
        return FatPointer(self.heap.calloc(count, size, name=name))

    def free(self, ptr: FatPointer) -> None:
        """Free the allocation ``ptr`` points into (must point to its base)."""
        self.heap.free(ptr.referent)

    def realloc(self, ptr: Optional[FatPointer], size: int, name: str = "realloc") -> FatPointer:
        """Resize an allocation, returning a pointer to the (possibly moved) block."""
        unit = ptr.referent if ptr is not None else None
        return FatPointer(self.heap.realloc(unit, size, name=name))

    def alloc_c_string(self, text: bytes, name: str = "string") -> FatPointer:
        """Allocate a heap buffer holding ``text`` plus a terminating NUL."""
        ptr = self.malloc(len(text) + 1, name=name)
        write_c_string(self.mem, ptr, text)
        return ptr

    def read_c_string(self, ptr: FatPointer) -> bytes:
        """Read a NUL-terminated string back out of simulated memory."""
        return read_c_string(self.mem, ptr)

    # -- stack conveniences ----------------------------------------------------------

    @contextlib.contextmanager
    def stack_frame(self, function: str) -> Iterator[StackFrame]:
        """Context manager entering and leaving a simulated stack frame.

        The frame is popped even if the body raises, and popping verifies the
        saved return address — so an unchecked overflow inside the body turns
        into a crash or hijack at return time, as on real hardware.
        """
        frame = self.stack.push_frame(function)
        try:
            yield frame
        finally:
            self.stack.pop_frame()

    def stack_buffer(self, name: str, size: int) -> FatPointer:
        """Allocate a local buffer in the current frame."""
        return FatPointer(self.stack.alloc_local(name, size))

    def seal_frame(self) -> None:
        """Finish frame layout (place the saved return address after the locals)."""
        self.stack.seal_frame()

    # -- policy plumbing --------------------------------------------------------------

    @property
    def error_log(self):
        """The policy's memory-error log (§3's administrator log)."""
        return self.policy.error_log

    def set_site(self, site: str) -> None:
        """Label subsequent accesses with a source site for the error log."""
        self.mem.set_site(site)

    def set_request(self, request_id: Optional[int]) -> None:
        """Stamp subsequent error and telemetry events with a request id."""
        self.mem.set_request(request_id)
        self.bus.current_request_id = request_id

    def check_cost(self) -> int:
        """Number of bounds checks executed so far (the overhead measure)."""
        return self.policy.stats.checks_performed

    # -- checkpoint / restore --------------------------------------------------------

    def checkpoint(self) -> MemoryImage:
        """Capture the whole process image as pure data.

        The server lifecycle calls this once after boot; every subsequent
        restart is then a :meth:`restore` instead of a rebuild-and-reboot.
        """
        return MemoryImage(
            policy_name=self.policy.name,
            space=self.space.checkpoint(),
            table=self.table.checkpoint(),
            heap=self.heap.checkpoint(),
            stack=self.stack.checkpoint(),
            site=self.mem.current_site,
            request_id=self.mem.current_request_id,
            policy_state=self.policy.checkpoint_state(),
        )

    def delta_checkpoint(self) -> MemoryDelta:
        """Capture an incremental checkpoint: O(dirty blocks) of segment bytes.

        Chains from the most recent :meth:`checkpoint` or
        :meth:`delta_checkpoint` (the space refuses to produce a delta with
        no base to chain from).  Non-segment components are captured whole —
        they are small pure-data records — so the delta restores via
        :meth:`restore_components` exactly like a full image once the
        segment bytes have been replayed.
        """
        return MemoryDelta(
            policy_name=self.policy.name,
            space=self.space.delta_checkpoint(),
            table=self.table.checkpoint(),
            heap=self.heap.checkpoint(),
            stack=self.stack.checkpoint(),
            site=self.mem.current_site,
            request_id=self.mem.current_request_id,
            policy_state=self.policy.checkpoint_state(),
        )

    def restore_components(
        self,
        *,
        table: ObjectTableCheckpoint,
        heap: HeapAllocatorCheckpoint,
        stack: CallStackCheckpoint,
        site: str,
        request_id: Optional[int],
        policy_state: dict,
        restore_space: Optional[Callable[[], None]] = None,
    ) -> None:
        """Restore everything around the segment bytes, in dependency order.

        ``restore_space`` is invoked between the table rebuild and the
        allocator/stack restores — the point where :meth:`restore` resets
        the segment bytes.  Callers that replay bytes some other way (the
        checkpoint stream's block patches) pass their replay here so the
        ordering invariants hold for them too.
        """
        units_by_base = self.table.restore(table)
        # The table rebuild does not fire death hooks (an image swap is not a
        # program-visible unit death), so the accessor's decision cache —
        # which may hold a pre-restore unit — is evicted explicitly.
        self.mem.invalidate_cache()
        if restore_space is not None:
            restore_space()
        self.heap.restore(heap, units_by_base)
        self.stack.restore(stack, units_by_base)
        self.mem.set_site(site)
        self.mem.set_request(request_id)
        self.bus.current_request_id = request_id
        self.policy.restore_state(policy_state)

    def restore(self, image: MemoryImage) -> None:
        """Reset the process image to a checkpoint.

        Restores segment bytes (O(dirty blocks) when this context took the
        checkpoint), rebuilds the object table / allocator / stack against
        one shared set of fresh units, and resets the policy's side state.
        The context keeps its identity — policy, bus, attached sinks, and
        death-hook wiring stay in place — so external observers keep
        observing the same process slot across restarts.
        """
        if image.policy_name != self.policy.name:
            raise ValueError(
                f"cannot restore a {image.policy_name!r} image into a "
                f"{self.policy.name!r} context"
            )
        self.restore_components(
            table=image.table,
            heap=image.heap,
            stack=image.stack,
            site=image.site,
            request_id=image.request_id,
            policy_state=image.policy_state,
            restore_space=lambda: self.space.restore(image.space),
        )
