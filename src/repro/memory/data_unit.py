"""Data units: the granularity at which the bounds checker reasons.

Following Jones & Kelly, every struct, array, variable, and allocated memory
block is a *data unit*.  A pointer is legal only while it stays inside the data
unit it was derived from; crossing from one unit into another is exactly the
class of error the paper's checks detect.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_unit_serial = itertools.count(1)


class UnitKind(enum.Enum):
    """Where a data unit lives, which determines what corruption it can cause."""

    HEAP = "heap"
    STACK = "stack"
    GLOBAL = "global"
    #: Pseudo-unit used as the referent of the null pointer.
    NULL = "null"


@dataclass(eq=False, slots=True)
class DataUnit:
    """One allocated object known to the object table.

    Attributes
    ----------
    name:
        Human readable label, e.g. ``"utf7_buf"`` or ``"prescan.pvpbuf"``; used
        in error-log events and reports.
    base:
        First address of the unit in the simulated address space.
    size:
        Extent in bytes.
    kind:
        Heap, stack, or global.
    alive:
        False once the unit has been freed (heap) or its frame popped (stack).
        Accesses to dead units are use-after-free errors for checked builds.
    owner:
        Optional tag identifying the allocation site or stack frame.
    """

    name: str
    base: int
    size: int
    kind: UnitKind
    alive: bool = True
    owner: str = ""
    serial: int = field(default_factory=lambda: next(_unit_serial))

    @property
    def end(self) -> int:
        """One past the last byte of the unit."""
        return self.base + self.size

    def contains_address(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address+length)`` is entirely inside the unit."""
        return self.base <= address and address + length <= self.end

    def contains_offset(self, offset: int, length: int = 1) -> bool:
        """True if ``[offset, offset+length)`` is a valid in-bounds range."""
        return 0 <= offset and offset + length <= self.size

    def label(self) -> str:
        """Return a unique label combining name and serial (for logs)."""
        return f"{self.name}#{self.serial}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else "dead"
        return (
            f"<DataUnit {self.label()} {self.kind.value} base={self.base:#x} "
            f"size={self.size} {status}>"
        )


#: The referent of null pointers.  Zero-sized, never alive, so every access
#: through it is invalid under checked policies and faults raw under Standard.
NULL_UNIT = DataUnit(name="<null>", base=0, size=0, kind=UnitKind.NULL, alive=False)


def make_unit(
    name: str,
    base: int,
    size: int,
    kind: UnitKind,
    owner: str = "",
    serial: Optional[int] = None,
) -> DataUnit:
    """Create a data unit (thin helper that keeps call sites short).

    ``serial`` overrides the global allocation counter.  The allocator and
    call stack pass serials drawn from their object table so that unit labels
    are deterministic per process image — which is what lets a checkpoint
    restore reproduce the exact labels a from-scratch reboot would produce.
    """
    if serial is None:
        return DataUnit(name=name, base=base, size=size, kind=kind, owner=owner)
    return DataUnit(name=name, base=base, size=size, kind=kind, owner=owner,
                    serial=serial)
