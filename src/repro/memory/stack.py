"""A simulated call stack with overwritable return-address slots.

The Apache, Sendmail, and Midnight Commander vulnerabilities are stack buffer
overruns: an unchecked write runs past the end of a stack-allocated buffer and
overwrites the saved return address (or neighbouring locals).  The paper's
Standard builds then either crash with a segmentation violation or, for a
crafted payload, jump to attacker-injected code.

This module reproduces that failure mode.  Each frame lays out its locals at
increasing addresses followed by an 8-byte return-address slot, mirroring the
downward-growing x86 stack where locals sit *below* the saved return address,
so an overflow that runs forward out of a local buffer reaches the slot.  When
a frame is popped, the slot is compared against the value saved at push time:

* intact           -> normal return;
* overwritten with bytes that look like an attacker payload -> :class:`~repro.errors.ControlFlowHijack`;
* otherwise corrupted -> :class:`~repro.errors.SegmentationFault`.

Stack memory is deliberately *not* cleared between frames, so uninitialized
locals expose stale bytes — which is exactly the Midnight Commander bug
(§4.5.1: "the buffer is never initialized").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ControlFlowHijack, SegmentationFault
from repro.memory.address_space import AddressSpace
from repro.memory.data_unit import DataUnit, UnitKind, make_unit
from repro.memory.object_table import ObjectTable


@dataclass(frozen=True)
class FrameCheckpoint:
    """Pure-data image of one stack frame (locals referenced by base address)."""

    function: str
    base: int
    return_slot_addr: int
    saved_return_value: int
    cursor: int
    local_bases: Tuple[int, ...]


@dataclass(frozen=True)
class CallStackCheckpoint:
    """Immutable snapshot of the frame list and counters."""

    top: int
    frames: Tuple[FrameCheckpoint, ...]
    frame_counter: int
    pushes: int
    pops: int

#: Size of the saved return address slot at the top of each frame.
RETURN_SLOT_SIZE = 8

#: Byte patterns that the harness's attack payloads embed.  If a corrupted
#: return slot contains one of these patterns the corruption is classified as
#: a successful control-flow hijack rather than a plain crash.
ATTACK_MARKERS = (b"\x41\x41\x41\x41", b"\x90\x90\x90\x90", b"\xde\xad\xbe\xef")

_RETURN_STRUCT = struct.Struct("<Q")


@dataclass
class StackFrame:
    """One activation record on the simulated stack."""

    function: str
    base: int
    return_slot_addr: int = 0
    saved_return_value: int = 0
    locals: List[DataUnit] = field(default_factory=list)
    #: Next free address for local allocation inside this frame.
    cursor: int = 0

    def local_named(self, name: str) -> Optional[DataUnit]:
        """Return the local with the given name, if any."""
        for unit in self.locals:
            if unit.name == name:
                return unit
        return None


class CallStack:
    """Simulated call stack allocating frames in the ``stack`` segment."""

    def __init__(self, address_space: AddressSpace, object_table: ObjectTable) -> None:
        self.space = address_space
        self.table = object_table
        segment = address_space.stack
        self._stack_base = segment.base
        self._stack_end = segment.end
        self._top = segment.base
        self._frames: List[StackFrame] = []
        self._frame_counter = 0
        self.pushes = 0
        self.pops = 0

    # -- frame management ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current number of live frames."""
        return len(self._frames)

    def current_frame(self) -> StackFrame:
        """Return the innermost live frame."""
        if not self._frames:
            raise RuntimeError("no live stack frame")
        return self._frames[-1]

    def push_frame(self, function: str) -> StackFrame:
        """Enter a function: reserve a frame with a saved return address slot."""
        self._frame_counter += 1
        frame = StackFrame(function=function, base=self._top, cursor=self._top)
        self._frames.append(frame)
        self.pushes += 1
        return frame

    def alloc_local(self, name: str, size: int) -> DataUnit:
        """Allocate a local buffer/variable in the current frame.

        The memory is not cleared: stale bytes from earlier frames remain
        visible, as on a real stack.
        """
        if size <= 0:
            raise ValueError("local size must be positive")
        frame = self.current_frame()
        if frame.return_slot_addr:
            raise RuntimeError(
                f"cannot allocate local {name!r} after the frame of {frame.function!r} "
                "was sealed"
            )
        base = frame.cursor
        if base + size > self._stack_end:
            raise SegmentationFault(base, "stack overflow (out of simulated stack)")
        unit = make_unit(name=name, base=base, size=size, kind=UnitKind.STACK,
                         owner=frame.function, serial=self.table.next_serial())
        self.table.register(unit)
        frame.locals.append(unit)
        frame.cursor = base + size
        return unit

    def seal_frame(self) -> None:
        """Finish laying out the frame: place the saved return address slot.

        Server code calls this after declaring its locals (the analogue of the
        compiler emitting the function prologue).  Any unchecked write that
        runs forward out of the last local lands on this slot.
        """
        frame = self.current_frame()
        if frame.return_slot_addr:
            return
        slot_addr = frame.cursor
        if slot_addr + RETURN_SLOT_SIZE > self._stack_end:
            raise SegmentationFault(slot_addr, "stack overflow placing return slot")
        saved = 0x00400000 + self._frame_counter * 0x10  # synthetic text address
        self.space.write(slot_addr, _RETURN_STRUCT.pack(saved))
        frame.return_slot_addr = slot_addr
        frame.saved_return_value = saved
        frame.cursor = slot_addr + RETURN_SLOT_SIZE
        self._top = frame.cursor

    def pop_frame(self) -> None:
        """Leave a function, verifying the saved return address.

        Raises
        ------
        ControlFlowHijack
            If the slot was overwritten with attacker-marked bytes.
        SegmentationFault
            If the slot was otherwise corrupted (a wild jump / crash).
        """
        frame = self.current_frame()
        hijack: Optional[BaseException] = None
        if frame.return_slot_addr:
            raw = self.space.read(frame.return_slot_addr, RETURN_SLOT_SIZE)
            (value,) = _RETURN_STRUCT.unpack(raw)
            if value != frame.saved_return_value:
                if any(marker in raw for marker in ATTACK_MARKERS):
                    hijack = ControlFlowHijack(value, payload_tag=raw.hex())
                else:
                    hijack = SegmentationFault(
                        value, f"return to corrupted address {value:#x}"
                    )
        for unit in frame.locals:
            if unit.alive:
                self.table.unregister(unit)
        self._frames.pop()
        self._top = frame.base
        self.pops += 1
        if hijack is not None:
            raise hijack

    # -- convenience --------------------------------------------------------------

    def frame_for_unit(self, unit: DataUnit) -> Optional[StackFrame]:
        """Return the live frame owning ``unit``, if any."""
        for frame in self._frames:
            if unit in frame.locals:
                return frame
        return None

    def return_slot_intact(self, frame: StackFrame) -> bool:
        """True if the frame's saved return address has not been modified."""
        if not frame.return_slot_addr:
            return True
        raw = self.space.read(frame.return_slot_addr, RETURN_SLOT_SIZE)
        (value,) = _RETURN_STRUCT.unpack(raw)
        return value == frame.saved_return_value

    # -- checkpoint / restore -----------------------------------------------------

    def checkpoint(self) -> CallStackCheckpoint:
        """Snapshot the live frames (locals by base address) and counters."""
        return CallStackCheckpoint(
            top=self._top,
            frames=tuple(
                FrameCheckpoint(
                    function=frame.function,
                    base=frame.base,
                    return_slot_addr=frame.return_slot_addr,
                    saved_return_value=frame.saved_return_value,
                    cursor=frame.cursor,
                    local_bases=tuple(unit.base for unit in frame.locals),
                )
                for frame in self._frames
            ),
            frame_counter=self._frame_counter,
            pushes=self.pushes,
            pops=self.pops,
        )

    def restore(self, cp: CallStackCheckpoint, units_by_base: Dict[int, DataUnit]) -> None:
        """Rebuild the frame list from a checkpoint.

        ``units_by_base`` maps live-unit bases to the objects rebuilt by the
        object table's restore, so frames and table agree on identity.  The
        frame counter is restored too: the synthetic return addresses sealed
        into post-restore frames match a from-scratch reboot's exactly.
        """
        self._frames = [
            StackFrame(
                function=frame.function,
                base=frame.base,
                return_slot_addr=frame.return_slot_addr,
                saved_return_value=frame.saved_return_value,
                cursor=frame.cursor,
                locals=[units_by_base[base] for base in frame.local_bases],
            )
            for frame in cp.frames
        ]
        self._top = cp.top
        self._frame_counter = cp.frame_counter
        self.pushes = cp.pushes
        self.pops = cp.pops
