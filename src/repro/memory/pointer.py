"""Fat pointers that remember their intended referent.

Ruwase & Lam's extension to the Jones & Kelly scheme (the checker the paper
builds on) keeps out-of-bounds pointers usable by associating them with an
*out-of-bounds object* that records the unit the pointer was derived from.
:class:`FatPointer` captures the same idea directly: a pointer is a (data unit,
byte offset) pair, and the offset is allowed to wander outside ``[0, size)``.
Whether dereferencing such a pointer corrupts memory, terminates the program,
or is absorbed obliviously is decided by the active policy, not by the pointer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.memory.data_unit import DataUnit, NULL_UNIT


@dataclass(frozen=True, slots=True)
class FatPointer:
    """A typed pointer into the simulated address space.

    Attributes
    ----------
    referent:
        The data unit the pointer was derived from.
    offset:
        Byte offset relative to the referent's base.  May be negative or past
        the end of the unit; such pointers are legal to hold (and compare) but
        dereferencing them is a memory error.
    """

    referent: DataUnit
    offset: int = 0

    # -- constructors -------------------------------------------------------------

    @classmethod
    def null(cls) -> "FatPointer":
        """Return the null pointer."""
        return cls(referent=NULL_UNIT, offset=0)

    @classmethod
    def to_unit(cls, unit: DataUnit, offset: int = 0) -> "FatPointer":
        """Return a pointer to ``unit`` at ``offset``."""
        return cls(referent=unit, offset=offset)

    # -- properties ---------------------------------------------------------------

    @property
    def address(self) -> int:
        """The raw address this pointer designates."""
        return self.referent.base + self.offset

    @property
    def is_null(self) -> bool:
        """True for the null pointer (and any pointer into the null unit)."""
        return self.referent is NULL_UNIT

    @property
    def in_bounds(self) -> bool:
        """True if dereferencing one byte here would be legal."""
        return self.referent.alive and self.referent.contains_offset(self.offset)

    def remaining(self) -> int:
        """Length of the contiguous safe span starting at this pointer.

        This is the in-bounds window query the bulk substrate paths are built
        on: the number of bytes that can be accessed from here without any
        policy intervention.  Zero for dead units and for pointers that start
        out of bounds (including negative offsets), so a positive return value
        guarantees ``[offset, offset + remaining())`` is entirely legal.
        """
        unit = self.referent
        if not unit.alive or not (0 <= self.offset < unit.size):
            return 0
        return unit.size - self.offset

    # -- arithmetic ---------------------------------------------------------------

    def __add__(self, delta: int) -> "FatPointer":
        """Pointer arithmetic: ``p + n`` moves ``n`` bytes forward."""
        return FatPointer(self.referent, self.offset + delta)

    def __sub__(self, other: Union[int, "FatPointer"]) -> Union["FatPointer", int]:
        """``p - n`` moves backwards; ``p - q`` yields the byte distance."""
        if isinstance(other, FatPointer):
            return self.address - other.address
        return FatPointer(self.referent, self.offset - other)

    def advance(self, delta: int = 1) -> "FatPointer":
        """Alias for ``self + delta`` that reads naturally in loops."""
        return FatPointer(self.referent, self.offset + delta)

    # -- comparisons --------------------------------------------------------------
    #
    # C permits comparing pointers; the paper notes that Pine and Midnight
    # Commander even compare out-of-bounds pointers.  Comparisons are therefore
    # defined on raw addresses and never raise.

    def __lt__(self, other: "FatPointer") -> bool:
        return self.address < other.address

    def __le__(self, other: "FatPointer") -> bool:
        return self.address <= other.address

    def __gt__(self, other: "FatPointer") -> bool:
        return self.address > other.address

    def __ge__(self, other: "FatPointer") -> bool:
        return self.address >= other.address

    def same_unit(self, other: "FatPointer") -> bool:
        """True if both pointers were derived from the same data unit."""
        return self.referent is other.referent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marker = "" if self.in_bounds else " OOB"
        return f"<FatPointer {self.referent.label()}+{self.offset}{marker}>"
