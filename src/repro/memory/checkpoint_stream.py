"""Incremental checkpoint streams: a base image plus chained block deltas.

A :class:`CheckpointStream` turns one :class:`~repro.memory.context.MemoryContext`
into a time-travel substrate.  Snapshot 0 is a full
:class:`~repro.memory.context.MemoryImage`; every later snapshot is a
:class:`~repro.memory.context.MemoryDelta` capturing only the 4 KiB blocks
dirtied since the previous snapshot — O(dirty) to take, which makes
per-request cadences affordable.  The stream indexes every captured block by
(segment, block, snapshot), so it can

* :meth:`restore` the context to *any* snapshot by patching exactly the
  blocks that differ (rollback is O(blocks written since the target), not
  O(image size));
* :meth:`space_checkpoint` / :meth:`image_at` materialize any snapshot as a
  stand-alone full checkpoint (the forensics save path and the bit-identity
  property's oracle);
* :meth:`changed_blocks` report exactly which blocks changed between two
  snapshots — the corruption-propagation measurement the paper never had.

Restoring to snapshot *k* truncates the snapshots after *k*: history forks
at the rollback point, exactly like a process that resumed from a checkpoint.

Pass a :class:`~repro.memory.shared_image.SharedImageStore` to append the
base payloads and every delta's blocks into shared memory
(:meth:`SharedImageStore.share_payload`), giving forked workers a zero-copy
view of the whole snapshot history through the inherited mapping.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.memory.address_space import (
    DIRTY_BLOCK,
    AddressSpaceCheckpoint,
    AddressSpaceDelta,
)
from repro.memory.context import MemoryContext, MemoryDelta, MemoryImage
from repro.memory.shared_image import SharedImageStore


class CheckpointStream:
    """A growing chain of snapshots over one memory context.

    Snapshot indices are dense: 0 is the base image taken at construction,
    ``len(stream)`` - 1 is the newest.  The context must not be checkpointed
    or restored behind the stream's back between snapshots — the chain
    detects a broken epoch link and refuses to append.
    """

    def __init__(
        self,
        ctx: MemoryContext,
        store: Optional[SharedImageStore] = None,
    ) -> None:
        self.ctx = ctx
        self._store = store
        base = ctx.checkpoint()
        if store is not None:
            base = store.share_image(base)
        self.base = base
        #: deltas[i] is snapshot i + 1.
        self.deltas: List[MemoryDelta] = []
        #: Epoch of each snapshot, parallel to the snapshot indices.
        self._epochs: List[int] = [base.space.epoch]
        #: Per segment: block index -> [(snapshot_index, payload), ...] in
        #: ascending snapshot order.  The replay index: the newest entry with
        #: snapshot_index <= k is the block's contents at snapshot k (no
        #: entry: the base payload slice, zeros if never touched).
        self._versions: Dict[str, Dict[int, List[Tuple[int, bytes]]]] = {
            name: {} for name, _base, _payload in base.space.segments
        }
        self._base_payload = {
            name: payload for name, _addr, payload in base.space.segments
        }
        self._base_addr = {name: addr for name, addr, _payload in base.space.segments}
        self._base_touched = {
            name: frozenset(blocks) for name, blocks in base.space.touched_blocks
        }

    def __len__(self) -> int:
        return len(self.deltas) + 1

    @property
    def latest(self) -> int:
        """Index of the newest snapshot."""
        return len(self.deltas)

    @property
    def delta_bytes(self) -> int:
        """Total payload bytes held by the delta chain (excludes the base)."""
        return sum(delta.space.payload_bytes for delta in self.deltas)

    # -- appending ---------------------------------------------------------------

    def snapshot(self) -> int:
        """Capture a new snapshot (O(dirty blocks)) and return its index.

        Raises :class:`ValueError` when the context was checkpointed or
        restored outside the stream since the last snapshot — the delta
        would not chain from the stream's newest epoch and replay would be
        silently wrong.
        """
        if self.ctx.space.clean_epoch != self._epochs[-1]:
            raise ValueError(
                "context was checkpointed or restored behind the stream's "
                "back; the delta chain is broken"
            )
        delta = self.ctx.delta_checkpoint()
        index = len(self.deltas) + 1
        if self._store is not None:
            delta = self._share_delta(delta)
        for name, entries in delta.space.blocks:
            versions = self._versions[name]
            for block, payload in entries:
                versions.setdefault(block, []).append((index, payload))
        self.deltas.append(delta)
        self._epochs.append(delta.space.epoch)
        return index

    def _share_delta(self, delta: MemoryDelta) -> MemoryDelta:
        """Move the delta's block payloads into the shared-memory arena."""
        store = self._store
        blocks = tuple(
            (
                name,
                tuple(
                    (block, store.share_payload(payload))
                    for block, payload in entries
                ),
            )
            for name, entries in delta.space.blocks
        )
        return dataclasses.replace(
            delta, space=dataclasses.replace(delta.space, blocks=blocks)
        )

    # -- replay index ------------------------------------------------------------

    def _payload_at(self, name: str, block: int, index: int) -> bytes:
        """Contents of one block at snapshot ``index`` (bytes-like)."""
        for snap, payload in reversed(self._versions[name].get(block, ())):
            if snap <= index:
                return payload
        base = self._base_payload[name]
        start = block * DIRTY_BLOCK
        return base[start : start + DIRTY_BLOCK]

    def _touched_at(self, name: str, index: int) -> Set[int]:
        """Blocks ever written as of snapshot ``index``."""
        touched = set(self._base_touched.get(name, ()))
        touched.update(
            block
            for block, versions in self._versions[name].items()
            if versions and versions[0][0] <= index
        )
        return touched

    def _counters_at(self, index: int) -> Tuple[int, int]:
        if index == 0:
            return self.base.space.raw_reads, self.base.space.raw_writes
        space = self.deltas[index - 1].space
        return space.raw_reads, space.raw_writes

    def _components_at(self, index: int):
        """The non-space checkpoint components of snapshot ``index``."""
        record = self.base if index == 0 else self.deltas[index - 1]
        return dict(
            table=record.table,
            heap=record.heap,
            stack=record.stack,
            site=record.site,
            request_id=record.request_id,
            policy_state=record.policy_state,
        )

    # -- restore -----------------------------------------------------------------

    def restore(self, index: int) -> int:
        """Roll the context back (or forward) to snapshot ``index``.

        Fast path: when the context is clean with respect to the stream's
        newest snapshot (the supervised-server invariant), only the blocks
        dirtied since that snapshot plus the blocks versioned after
        ``index`` are patched — O(blocks written since the target).
        Otherwise the base image is restored in full and patched forward.

        History forks at the target: snapshots newer than ``index`` are
        discarded, and the next :meth:`snapshot` becomes ``index + 1``.
        Returns the number of blocks written.
        """
        if not 0 <= index <= len(self.deltas):
            raise IndexError(
                f"snapshot {index} out of range (stream has {len(self)})"
            )
        space = self.ctx.space
        raw_reads, raw_writes = self._counters_at(index)
        touched = {
            name: self._touched_at(name, index) for name in self._versions
        }
        written = 0

        def patch_fast() -> None:
            nonlocal written
            updates = {}
            for segment in space.segments():
                name = segment.name
                stale = set(segment.dirty)
                stale.update(
                    block
                    for block, versions in self._versions[name].items()
                    if versions[-1][0] > index
                )
                updates[name] = [
                    (block, self._payload_at(name, block, index))
                    for block in sorted(stale)
                ]
            written = space.apply_block_patch(
                updates,
                epoch=self._epochs[index],
                raw_reads=raw_reads,
                raw_writes=raw_writes,
                touched=touched,
            )

        def patch_full() -> None:
            nonlocal written
            space.restore(self.base.space)
            updates = {
                name: [
                    (block, self._payload_at(name, block, index))
                    for block in sorted(versions)
                    if versions[block][0][0] <= index
                ]
                for name, versions in self._versions.items()
            }
            written = space.apply_block_patch(
                updates,
                epoch=self._epochs[index],
                raw_reads=raw_reads,
                raw_writes=raw_writes,
                touched=touched,
            )

        fast = space.clean_epoch == self._epochs[-1]
        self.ctx.restore_components(
            restore_space=patch_fast if fast else patch_full,
            **self._components_at(index),
        )
        self.truncate(index)
        return written

    def truncate(self, index: int) -> None:
        """Discard snapshots newer than ``index`` (the history fork)."""
        if index >= len(self.deltas):
            return
        del self.deltas[index:]
        del self._epochs[index + 1 :]
        for versions in self._versions.values():
            dead = [block for block, entries in versions.items()
                    if entries[0][0] > index]
            for block in dead:
                del versions[block]
            for entries in versions.values():
                while entries and entries[-1][0] > index:
                    entries.pop()

    # -- materialization ---------------------------------------------------------

    def space_checkpoint(self, index: int) -> AddressSpaceCheckpoint:
        """Materialize snapshot ``index`` as a stand-alone full checkpoint.

        Bit-identical to the full :meth:`AddressSpace.checkpoint` the
        context would have produced at that moment (the Hypothesis property
        in the test suite holds the stream to exactly that).
        """
        if not 0 <= index <= len(self.deltas):
            raise IndexError(
                f"snapshot {index} out of range (stream has {len(self)})"
            )
        raw_reads, raw_writes = self._counters_at(index)
        segments = []
        touched_blocks = []
        for name, addr, payload in self.base.space.segments:
            data = bytearray(payload)
            for block, versions in self._versions[name].items():
                chosen = None
                for snap, block_payload in reversed(versions):
                    if snap <= index:
                        chosen = block_payload
                        break
                if chosen is not None:
                    start = block * DIRTY_BLOCK
                    data[start : start + len(chosen)] = chosen
            segments.append((name, addr, bytes(data)))
            touched_blocks.append((name, tuple(sorted(self._touched_at(name, index)))))
        return AddressSpaceCheckpoint(
            epoch=self._epochs[index],
            segments=tuple(segments),
            raw_reads=raw_reads,
            raw_writes=raw_writes,
            touched_blocks=tuple(touched_blocks),
        )

    def image_at(self, index: int) -> MemoryImage:
        """Materialize snapshot ``index`` as a full :class:`MemoryImage`."""
        components = self._components_at(index)
        return MemoryImage(
            policy_name=self.base.policy_name,
            space=self.space_checkpoint(index),
            **components,
        )

    # -- forensics ---------------------------------------------------------------

    def changed_blocks(self, a: int, b: int) -> Dict[str, List[int]]:
        """Blocks whose contents differ between snapshots ``a`` and ``b``.

        Candidates are the blocks versioned in the open interval — a block
        no delta captured cannot have changed — and each candidate is then
        byte-compared at the two snapshots, so a block rewritten with its
        original contents does not count as changed.  Returns a mapping of
        segment name to sorted block indices (segments with no changes are
        omitted).
        """
        lo, hi = min(a, b), max(a, b)
        for bound in (a, b):
            if not 0 <= bound <= len(self.deltas):
                raise IndexError(
                    f"snapshot {bound} out of range (stream has {len(self)})"
                )
        changed: Dict[str, List[int]] = {}
        for name, versions in self._versions.items():
            blocks = sorted(
                block
                for block, entries in versions.items()
                if any(lo < snap <= hi for snap, _payload in entries)
            )
            diff = [
                block
                for block in blocks
                if bytes(self._payload_at(name, block, lo))
                != bytes(self._payload_at(name, block, hi))
            ]
            if diff:
                changed[name] = diff
        return changed

    def block_address(self, name: str, block: int) -> int:
        """Simulated address of the first byte of ``block`` in segment ``name``."""
        return self._base_addr[name] + block * DIRTY_BLOCK
