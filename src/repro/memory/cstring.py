"""C string and memory routines over the simulated address space.

The vulnerable code paths in the paper are written in terms of ``strcat``,
``strcpy``, byte-at-a-time copies, and pointer walks.  These helpers provide
the same operations over :class:`~repro.memory.pointer.FatPointer` values so
the server reimplementations read like the C they model — including the
property that every byte they touch goes through the policy-mediated accessor
and can therefore overflow, be discarded, or be manufactured.

All functions take the accessor explicitly (no hidden global state), matching
the substrate guide's preference for explicit plumbing.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InfiniteLoopGuard
from repro.memory.accessor import MemoryAccessor
from repro.memory.pointer import FatPointer

#: Upper bound on the number of bytes any single string scan may visit.  The
#: paper notes that manufactured values can drive loop conditions; this guard
#: converts a non-terminating scan into an observable HUNG outcome instead of
#: wedging the process.
SCAN_LIMIT = 1 << 20


def strlen(mem: MemoryAccessor, s: FatPointer, limit: int = SCAN_LIMIT) -> int:
    """Return the number of bytes before the first NUL, scanning through memory."""
    length = 0
    ptr = s
    while True:
        if length > limit:
            raise InfiniteLoopGuard(f"strlen scanned {limit} bytes without finding NUL")
        if mem.read_byte(ptr) == 0:
            return length
        ptr = ptr + 1
        length += 1


def strcpy(mem: MemoryAccessor, dst: FatPointer, src: FatPointer) -> FatPointer:
    """Copy the NUL-terminated string at ``src`` to ``dst`` (no bounds respected)."""
    d, s = dst, src
    copied = 0
    while True:
        if copied > SCAN_LIMIT:
            raise InfiniteLoopGuard("strcpy copied too many bytes")
        byte = mem.read_byte(s)
        mem.write_byte(d, byte)
        if byte == 0:
            return dst
        d, s = d + 1, s + 1
        copied += 1


def strncpy(mem: MemoryAccessor, dst: FatPointer, src: FatPointer, n: int) -> FatPointer:
    """Copy at most ``n`` bytes, NUL-padding like the C function."""
    s = src
    copied = 0
    hit_nul = False
    for i in range(n):
        if hit_nul:
            mem.write_byte(dst + i, 0)
            continue
        byte = mem.read_byte(s)
        mem.write_byte(dst + i, byte)
        if byte == 0:
            hit_nul = True
        s = s + 1
        copied += 1
    return dst


def strcat(mem: MemoryAccessor, dst: FatPointer, src: FatPointer) -> FatPointer:
    """Append ``src`` to the string at ``dst`` — the Midnight Commander primitive."""
    end = dst + strlen(mem, dst)
    strcpy(mem, end, src)
    return dst


def strchr(mem: MemoryAccessor, s: FatPointer, ch: int, limit: int = SCAN_LIMIT) -> Optional[FatPointer]:
    """Return a pointer to the first occurrence of ``ch``, or None at NUL."""
    ptr = s
    for _ in range(limit):
        byte = mem.read_byte(ptr)
        if byte == (ch & 0xFF):
            return ptr
        if byte == 0:
            return None
        ptr = ptr + 1
    raise InfiniteLoopGuard(f"strchr scanned {limit} bytes")


def strcmp(mem: MemoryAccessor, a: FatPointer, b: FatPointer, limit: int = SCAN_LIMIT) -> int:
    """Standard three-way string comparison."""
    pa, pb = a, b
    for _ in range(limit):
        ba = mem.read_byte(pa)
        bb = mem.read_byte(pb)
        if ba != bb:
            return -1 if ba < bb else 1
        if ba == 0:
            return 0
        pa, pb = pa + 1, pb + 1
    raise InfiniteLoopGuard(f"strcmp scanned {limit} bytes")


def memcpy(mem: MemoryAccessor, dst: FatPointer, src: FatPointer, n: int) -> FatPointer:
    """Copy ``n`` bytes (block copy; partial overflows split at the unit boundary)."""
    data = mem.read(src, n)
    mem.write(dst, data)
    return dst


def memset(mem: MemoryAccessor, dst: FatPointer, value: int, n: int) -> FatPointer:
    """Fill ``n`` bytes with ``value``."""
    mem.write(dst, bytes([value & 0xFF]) * n)
    return dst


def write_c_string(mem: MemoryAccessor, dst: FatPointer, text: bytes) -> None:
    """Store a Python byte string plus terminating NUL through the accessor."""
    mem.write(dst, text + b"\x00")


def read_c_string(mem: MemoryAccessor, src: FatPointer, limit: int = SCAN_LIMIT) -> bytes:
    """Read a NUL-terminated string back into Python bytes."""
    out = bytearray()
    ptr = src
    for _ in range(limit):
        byte = mem.read_byte(ptr)
        if byte == 0:
            return bytes(out)
        out.append(byte)
        ptr = ptr + 1
    raise InfiniteLoopGuard(f"read_c_string scanned {limit} bytes without NUL")


def read_fixed(mem: MemoryAccessor, src: FatPointer, n: int) -> bytes:
    """Read exactly ``n`` bytes (no NUL handling)."""
    return mem.read(src, n)
