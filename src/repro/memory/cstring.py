"""C string and memory routines over the simulated address space.

The vulnerable code paths in the paper are written in terms of ``strcat``,
``strcpy``, byte-at-a-time copies, and pointer walks.  These helpers provide
the same operations over :class:`~repro.memory.pointer.FatPointer` values so
the server reimplementations read like the C they model — including the
property that every byte they touch goes through the policy-mediated accessor
and can therefore overflow, be discarded, or be manufactured.

Fast path
---------
Scanning and copying operate on whole *safe spans* (the contiguous raw
window reported by :meth:`MemoryAccessor.scan_span`) using the accessor's
bulk primitives, paying one policy check per span instead of one per byte.

Past the span boundary — where accesses become invalid — the continuation is
*also* batched for policies that support runs: a copy whose destination has
left its unit hands the whole out-of-bounds suffix to the policy as a single
run (the attack-flood shape: one ``on_invalid_write_run`` per source span
instead of one decision per byte), and terminator scans continue through
invalid runs via the policy's scan hook — failure-oblivious and boundless
generate their own bytes, while redirect (whose bytes live in the unit)
batches through the accessor's preview/commit scan protocol.  All are
observably identical to the byte-at-a-time loops they replace — error-log
queries, manufactured-value consumption, boundless stores, memory images —
as proven by the equivalence suite; only the policy's ``checks_performed``
counter sees one check per span/run rather than per byte.

The byte loop survives where per-byte semantics are genuinely load-bearing:
policies without run hooks, and overlapping copies within one unit
(redirected writes could alias the bytes still being read).

Overlapping copies are chunked to the pointer distance so the forward
byte-copy propagation of the C originals is preserved exactly.

All functions take the accessor explicitly (no hidden global state), matching
the substrate guide's preference for explicit plumbing.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InfiniteLoopGuard
from repro.memory.accessor import MemoryAccessor
from repro.memory.pointer import FatPointer

#: Upper bound on the number of bytes any single string scan may visit.  The
#: paper notes that manufactured values can drive loop conditions; this guard
#: converts a non-terminating scan into an observable HUNG outcome instead of
#: wedging the process.
SCAN_LIMIT = 1 << 20

#: Upper bound on the chunks used by span operations that must materialize
#: bytes before knowing where they stop (three-way comparison), so that the
#: Standard build — whose safe span extends to the end of the whole segment —
#: never eagerly copies megabytes to compare a short string.
CHUNK = 4096


def _copy_span(mem: MemoryAccessor, dst: FatPointer, src: FatPointer, n: int) -> int:
    """Largest bulk-copyable chunk size for a ``src`` → ``dst`` copy of ``n`` bytes.

    Zero means the byte loop must be used (no safe span on one side, or the
    regions coincide).  Overlapping forward copies are capped at the pointer
    distance, which makes chunked bulk copies reproduce the byte loop's
    self-propagation exactly.
    """
    span = min(mem.scan_span(src), mem.scan_span(dst), n)
    distance = abs(dst.address - src.address)
    if distance == 0:
        return 0
    return min(span, distance)


def strlen(mem: MemoryAccessor, s: FatPointer, limit: int = SCAN_LIMIT) -> int:
    """Return the number of bytes before the first NUL, scanning through memory."""
    length = 0
    ptr = s
    while True:
        # Fast path: search the whole safe span for the NUL in one pass.  The
        # span is capped so the loop guard fires after exactly as many bytes
        # as the byte loop would have examined.
        span = min(mem.scan_span(ptr), limit - length + 1)
        if span > 0:
            index = mem.find_byte(ptr, 0, span)
            if index >= 0:
                return length + index
            length += span
            ptr = ptr + span
            if length > limit:
                raise InfiniteLoopGuard(f"strlen scanned {limit} bytes without finding NUL")
            continue
        if length > limit:
            raise InfiniteLoopGuard(f"strlen scanned {limit} bytes without finding NUL")
        # Past the span: continue the scan through the invalid run in one
        # policy call when the policy generates its own bytes (the read side
        # of the batched continuation); redirect and per-byte-only policies
        # return no progress and take the byte loop below.
        data, index = mem.read_span_until(ptr, 0, limit - length + 1)
        if index >= 0:
            return length + index
        if data:
            length += len(data)
            ptr = ptr + len(data)
            if length > limit:
                raise InfiniteLoopGuard(f"strlen scanned {limit} bytes without finding NUL")
            continue
        if mem.read_byte(ptr) == 0:
            return length
        ptr = ptr + 1
        length += 1


def _oob_copy_span(mem: MemoryAccessor, dst: FatPointer, src: FatPointer, n: int) -> int:
    """Source-span size for a batched out-of-bounds copy chunk, or 0.

    Nonzero when the destination has left its safe span (the attack-flood
    shape) but the source still reads from one, and the whole chunk can be
    handed to the policy as one invalid-write run.  Requires run support and
    distinct units: writes redirected back into a shared unit would alias
    bytes the byte loop had not yet read.
    """
    if not mem.batches_runs:
        return 0
    if dst.same_unit(src) or mem.scan_span(dst) != 0:
        return 0
    return min(mem.scan_span(src), n)


def copy_c_string(
    mem: MemoryAccessor, dst: FatPointer, src: FatPointer, limit: Optional[int] = None
) -> int:
    """Copy the string at ``src`` to ``dst`` and return bytes copied (NUL included).

    This is ``strcpy`` with an explicit scan budget and a byte count, so the
    mini-C lowering pass can advance both loop pointers past the terminator
    and fire its iteration guard after exactly as many copied bytes as the
    per-byte loop it replaces.  ``limit=None`` reads :data:`SCAN_LIMIT` at
    call time, matching the byte loops (and the equivalence suite, which
    shrinks the module global for runaway self-propagating copies).
    """
    if limit is None:
        limit = SCAN_LIMIT
    d, s = dst, src
    copied = 0
    while True:
        if copied > limit:
            raise InfiniteLoopGuard("strcpy copied too many bytes")
        chunk = _copy_span(mem, d, s, limit - copied + 1)
        if chunk <= 1:
            # Destination out of bounds, source still spanning: one policy
            # decision for the whole chunk (write_span batches the invalid
            # run).  In-bounds source reads emit no events, so the event
            # stream is exactly the byte loop's write-event stream.
            chunk = _oob_copy_span(mem, d, s, limit - copied + 1)
        if chunk > 1:
            # One span-sized read (locating the NUL included) and one
            # span-sized write: one policy check per pointer per chunk.
            data, index = mem.read_span_until(s, 0, chunk)
            mem.write_span(d, data)
            if index >= 0:
                return copied + index + 1
            n = len(data)
            d, s = d + n, s + n
            copied += n
            continue
        byte = mem.read_byte(s)
        mem.write_byte(d, byte)
        if byte == 0:
            return copied + 1
        d, s = d + 1, s + 1
        copied += 1


def strcpy(mem: MemoryAccessor, dst: FatPointer, src: FatPointer) -> FatPointer:
    """Copy the NUL-terminated string at ``src`` to ``dst`` (no bounds respected)."""
    copy_c_string(mem, dst, src)
    return dst


def strncpy(mem: MemoryAccessor, dst: FatPointer, src: FatPointer, n: int) -> FatPointer:
    """Copy at most ``n`` bytes, NUL-padding like the C function."""
    s = src
    i = 0
    hit_nul = False
    while i < n and not hit_nul:
        chunk = _copy_span(mem, dst + i, s, n - i)
        if chunk <= 1:
            # Batched continuation for the overflowed-destination phase, as
            # in strcpy.
            chunk = _oob_copy_span(mem, dst + i, s, n - i)
        if chunk > 1:
            data, index = mem.read_span_until(s, 0, chunk)
            mem.write_span(dst + i, data)
            hit_nul = index >= 0
            i += len(data)
            s = s + len(data)
            continue
        byte = mem.read_byte(s)
        mem.write_byte(dst + i, byte)
        if byte == 0:
            hit_nul = True
        s = s + 1
        i += 1
    # NUL-padding tail.  write_span already alternates memset-style span
    # writes with batched invalid runs for run-capable policies, so one call
    # covers the whole tail — an overflowing pad is one policy decision per
    # run, not per byte.  Per-byte-only policies keep the original loop.
    if i < n:
        if mem.batches_runs:
            mem.write_span(dst + i, b"\x00" * (n - i))
        else:
            while i < n:
                span = min(mem.scan_span(dst + i), n - i)
                if span > 0:
                    mem.write_span(dst + i, b"\x00" * span)
                    i += span
                else:
                    mem.write_byte(dst + i, 0)
                    i += 1
    return dst


def strcat(mem: MemoryAccessor, dst: FatPointer, src: FatPointer) -> FatPointer:
    """Append ``src`` to the string at ``dst`` — the Midnight Commander primitive."""
    end = dst + strlen(mem, dst)
    strcpy(mem, end, src)
    return dst


def strncat(mem: MemoryAccessor, dst: FatPointer, src: FatPointer, n: int) -> FatPointer:
    """Append at most ``n`` bytes of ``src`` to ``dst``, always NUL-terminating.

    Like the C function the paper's servers call: the destination end is
    found with a span scan, up to ``n`` source bytes are copied through the
    span fast path (stopping early at the source NUL), and a terminator is
    written after the appended bytes — so a too-large ``n`` overflows the
    destination under whatever policy is bound, one decision per span/run.
    """
    end = dst + strlen(mem, dst)
    i = 0
    hit_nul = False
    while i < n and not hit_nul:
        chunk = _copy_span(mem, end + i, src + i, n - i)
        if chunk <= 1:
            chunk = _oob_copy_span(mem, end + i, src + i, n - i)
        if chunk > 1:
            data, index = mem.read_span_until(src + i, 0, chunk)
            if index >= 0:
                # Do not copy the source NUL itself; the terminator below is
                # the byte loop's separate final write.
                data = data[:index]
                hit_nul = True
            if len(data):
                mem.write_span(end + i, data)
            i += len(data)
            continue
        byte = mem.read_byte(src + i)
        if byte == 0:
            hit_nul = True
            break
        mem.write_byte(end + i, byte)
        i += 1
    mem.write_byte(end + i, 0)
    return dst


def strchr(mem: MemoryAccessor, s: FatPointer, ch: int, limit: int = SCAN_LIMIT) -> Optional[FatPointer]:
    """Return a pointer to the first occurrence of ``ch``, or None at NUL."""
    ptr = s
    scanned = 0
    target = ch & 0xFF
    while scanned < limit:
        span = min(mem.scan_span(ptr), limit - scanned)
        if span > 1:
            hit, nul = mem.find_bytes(ptr, (target, 0), span)
            # The byte loop tests ``== ch`` before ``== 0`` at each position,
            # so a hit at the NUL's own index still returns the pointer.
            if hit >= 0 and (nul < 0 or hit <= nul):
                return ptr + hit
            if nul >= 0:
                return None
            ptr = ptr + span
            scanned += span
            continue
        byte = mem.read_byte(ptr)
        if byte == target:
            return ptr
        if byte == 0:
            return None
        ptr = ptr + 1
        scanned += 1
    raise InfiniteLoopGuard(f"strchr scanned {limit} bytes")


def strcmp(mem: MemoryAccessor, a: FatPointer, b: FatPointer, limit: int = SCAN_LIMIT) -> int:
    """Standard three-way string comparison."""
    pa, pb = a, b
    scanned = 0
    # Grow the comparison chunk geometrically: short strings (the common
    # case) touch tens of bytes, while long equal prefixes quickly reach
    # CHUNK-sized strides.  Without this, the Standard build — whose safe
    # span runs to the end of the segment — would materialize CHUNK bytes
    # from both strings to compare a 3-byte pair.
    chunk = 64
    while scanned < limit:
        span = min(mem.scan_span(pa), mem.scan_span(pb), limit - scanned, chunk)
        chunk = min(chunk * 4, CHUNK)
        if span > 1:
            # read_span returns zero-copy views here; equality and membership
            # work on views directly, so nothing is materialized.
            da = mem.read_span(pa, span)
            db = mem.read_span(pb, span)
            if da == db:
                if 0 in da:
                    return 0
                pa, pb = pa + span, pb + span
                scanned += span
                continue
            diff = next(i for i in range(span) if da[i] != db[i])
            if 0 in da[:diff]:  # both strings end before the first difference
                return 0
            return -1 if da[diff] < db[diff] else 1
        ba = mem.read_byte(pa)
        bb = mem.read_byte(pb)
        if ba != bb:
            return -1 if ba < bb else 1
        if ba == 0:
            return 0
        pa, pb = pa + 1, pb + 1
        scanned += 1
    raise InfiniteLoopGuard(f"strcmp scanned {limit} bytes")


def memcpy(mem: MemoryAccessor, dst: FatPointer, src: FatPointer, n: int) -> FatPointer:
    """Copy ``n`` bytes (block copy; partial overflows split at the unit boundary)."""
    data = mem.read(src, n)
    mem.write(dst, data)
    return dst


def memset(mem: MemoryAccessor, dst: FatPointer, value: int, n: int) -> FatPointer:
    """Fill ``n`` bytes with ``value``."""
    mem.write(dst, bytes([value & 0xFF]) * n)
    return dst


def write_bytes(mem: MemoryAccessor, dst: FatPointer, data: bytes) -> None:
    """Write a byte blob through the span fast path, one decision per span/run.

    For run-capable policies a single ``write_span`` covers in-bounds spans
    and batched invalid runs alike (the strncpy padding precedent); other
    policies alternate span writes with the per-byte loop, so the event
    stream matches a byte-at-a-time store loop exactly.
    """
    if not data:
        return
    if mem.batches_runs:
        mem.write_span(dst, data)
        return
    i = 0
    total = len(data)
    while i < total:
        span = min(mem.scan_span(dst + i), total - i)
        if span > 0:
            mem.write_span(dst + i, data[i : i + span])
            i += span
        else:
            mem.write_byte(dst + i, data[i])
            i += 1


def write_c_string(mem: MemoryAccessor, dst: FatPointer, text: bytes) -> None:
    """Store a Python byte string plus terminating NUL through the accessor."""
    mem.write(dst, text + b"\x00")


def read_c_string(mem: MemoryAccessor, src: FatPointer, limit: int = SCAN_LIMIT) -> bytes:
    """Read a NUL-terminated string back into Python bytes."""
    out = bytearray()
    ptr = src
    scanned = 0
    while scanned < limit:
        # read_span_until covers whole safe spans and — for policies that can
        # scan-batch — whole invalid runs; it returns no progress where only
        # the per-byte path below can continue (redirect wraparound,
        # per-byte-only policies, one-byte spans).
        data, nul = mem.read_span_until(ptr, 0, limit - scanned)
        if nul >= 0:
            if not out:
                # Whole string in the first span: one copy, view to bytes —
                # this is the API boundary where the caller takes ownership.
                return bytes(data[:nul])
            out += data[:nul]
            return bytes(out)
        if data:
            out += data
            ptr = ptr + len(data)
            scanned += len(data)
            continue
        byte = mem.read_byte(ptr)
        if byte == 0:
            return bytes(out)
        out.append(byte)
        ptr = ptr + 1
        scanned += 1
    raise InfiniteLoopGuard(f"read_c_string scanned {limit} bytes without NUL")


def read_fixed(mem: MemoryAccessor, src: FatPointer, n: int) -> bytes:
    """Read exactly ``n`` bytes (no NUL handling)."""
    return mem.read(src, n)
