"""A free-list heap allocator with in-band, smashable chunk headers.

The Pine and Mutt vulnerabilities in the paper are heap buffer overruns: the
Standard build "writes beyond the end of the buffer, corrupts its heap, and
terminates with a segmentation violation".  To reproduce that failure mode the
allocator keeps its metadata *inside* the heap segment, immediately before each
user block, exactly like a classic dlmalloc-style allocator.  An unchecked
overflow therefore smashes the next chunk's header, and the corruption is
discovered (and converted into :class:`~repro.errors.HeapCorruption`) the next
time the allocator walks or frees that chunk — which is how the real crash
happens.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DoubleFree, HeapCorruption, SegmentationFault
from repro.memory.address_space import AddressSpace
from repro.memory.data_unit import DataUnit, UnitKind, make_unit
from repro.memory.object_table import ObjectTable
from repro.telemetry.bus import EventBus
from repro.telemetry.events import AllocFree


@dataclass(frozen=True)
class HeapAllocatorCheckpoint:
    """Immutable snapshot of the allocator's bookkeeping.

    The chunk headers themselves live in the heap segment and are restored by
    the address-space checkpoint; this records the Python-side structures (the
    break, the free list, which bases are live, and the counters).
    """

    brk: int
    free: Tuple[Tuple[int, int], ...]
    live_bases: Tuple[int, ...]
    allocations: int
    frees: int
    bytes_allocated: int

#: Chunk header layout: magic (4 bytes), user size (4 bytes), in-use flag (4 bytes),
#: reserved (4 bytes).  16 bytes keeps user data reasonably aligned.
HEADER_SIZE = 16
HEADER_MAGIC = 0x5AFEC0DE
_HEADER_STRUCT = struct.Struct("<IIII")

#: Minimum user block size; avoids degenerate zero-byte chunks.
MIN_BLOCK = 8


class HeapAllocator:
    """First-fit free-list allocator over the heap segment.

    Parameters
    ----------
    address_space:
        The simulated address space whose ``heap`` segment backs allocations.
    object_table:
        The checker's object table; every allocation registers a data unit and
        every free retires it.
    bus:
        Optional telemetry bus; when present every ``malloc``/``free`` emits
        an :class:`~repro.telemetry.events.AllocFree` event stamped with the
        bus's current request id, so heap activity is correlated with the
        request traces.
    """

    def __init__(
        self,
        address_space: AddressSpace,
        object_table: ObjectTable,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.space = address_space
        self.table = object_table
        self.bus = bus
        heap = address_space.heap
        self._heap_base = heap.base
        self._heap_end = heap.end
        #: Bump pointer for fresh chunks; freed chunks go on the free list.
        self._brk = heap.base
        #: Free list of (address, total_chunk_size) pairs, address of the header.
        self._free: List[tuple] = []
        #: Map from user base address to its DataUnit for live allocations.
        self._live: Dict[int, DataUnit] = {}
        self.allocations = 0
        self.frees = 0
        self.bytes_allocated = 0
        #: Armed allocation failures (fault injection).  Harness state, not
        #: image state: checkpoints do not capture it and restores do not
        #: reset it — the injector that armed it owns its lifecycle.
        self._fail_next = 0
        # Like glibc's top chunk, the wilderness carries an in-band header; an
        # overflow off the end of the most recent allocation smashes it, and
        # the corruption is discovered at the next allocator operation.
        self._write_top_header()

    # -- header helpers -----------------------------------------------------------

    def _write_header(self, header_addr: int, user_size: int, in_use: bool) -> None:
        packed = _HEADER_STRUCT.pack(HEADER_MAGIC, user_size, 1 if in_use else 0, 0)
        self.space.write(header_addr, packed)

    def _read_header(self, header_addr: int) -> tuple:
        raw = self.space.read(header_addr, HEADER_SIZE)
        magic, user_size, in_use, _reserved = _HEADER_STRUCT.unpack(raw)
        return magic, user_size, bool(in_use)

    def _check_header(self, header_addr: int, context: str) -> tuple:
        magic, user_size, in_use = self._read_header(header_addr)
        if magic != HEADER_MAGIC:
            raise HeapCorruption(
                f"heap metadata corrupted at {header_addr:#x} during {context} "
                f"(magic {magic:#x})"
            )
        return user_size, in_use

    def _write_top_header(self) -> None:
        """Stamp the wilderness (top chunk) header at the current break."""
        if self._brk + HEADER_SIZE <= self._heap_end:
            remaining = self._heap_end - self._brk - HEADER_SIZE
            self._write_header(self._brk, remaining, in_use=False)

    def _check_top_header(self, context: str) -> None:
        if self._brk + HEADER_SIZE <= self._heap_end:
            self._check_header(self._brk, context=context)

    # -- allocation API -----------------------------------------------------------

    def malloc(self, size: int, name: str = "malloc") -> DataUnit:
        """Allocate ``size`` user bytes and register the resulting data unit.

        The returned unit's contents are *not* cleared: like real ``malloc``,
        recycled chunks expose whatever bytes the previous occupant left
        behind (which several of the paper's servers implicitly rely on not
        mattering).
        """
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if self._fail_next > 0:
            self._fail_next -= 1
            # The C story: malloc returns NULL, the server dereferences it
            # unchecked, and the process takes a segmentation fault — which
            # is what the request classifier (and the paper) call a crash.
            raise SegmentationFault(
                0, f"injected allocation failure: {name!r} got NULL and "
                   "dereferenced it"
            )
        user_size = max(size, MIN_BLOCK)
        total = HEADER_SIZE + user_size
        header_addr = self._take_free_chunk(total)
        if header_addr is None:
            self._check_top_header(context="malloc")
            header_addr = self._brk
            if header_addr + total > self._heap_end:
                raise MemoryError(
                    f"simulated heap exhausted allocating {size} bytes for {name!r}"
                )
            self._brk += total
            self._write_top_header()
        self._write_header(header_addr, user_size, in_use=True)
        user_base = header_addr + HEADER_SIZE
        unit = make_unit(name=name, base=user_base, size=size if size > 0 else user_size,
                         kind=UnitKind.HEAP, owner="heap",
                         serial=self.table.next_serial())
        self.table.register(unit)
        self._live[user_base] = unit
        self.allocations += 1
        self.bytes_allocated += size
        if self.bus is not None:
            self.bus.emit(AllocFree(op="malloc", unit_name=unit.label(),
                                    size=unit.size, base=user_base,
                                    request_id=self.bus.current_request_id))
        return unit

    def header_addresses(self) -> List[int]:
        """Every in-band header address the next heap walk will verify.

        Live chunk headers, free-list chunk headers, and the top
        (wilderness) header, in ascending address order — a stable,
        deterministic enumeration of the fault injector's corruption
        targets.  Smashing any of them is discovered by
        :meth:`verify_heap` (or an earlier allocator operation) as
        :class:`~repro.errors.HeapCorruption`.
        """
        headers = [base - HEADER_SIZE for base in self._live]
        headers.extend(addr for addr, _total in self._free)
        if self._brk + HEADER_SIZE <= self._heap_end:
            headers.append(self._brk)
        return sorted(headers)

    def inject_failure(self, count: int = 1) -> None:
        """Arm the next ``count`` allocations to fail with a simulated crash.

        The fault injector's malloc-failure lever.  Each armed failure makes
        one :meth:`malloc` raise :class:`~repro.errors.SegmentationFault`
        (the unchecked-NULL-dereference model) instead of allocating.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self._fail_next += count

    def clear_injected_failures(self) -> None:
        """Disarm any pending injected allocation failures."""
        self._fail_next = 0

    def calloc(self, count: int, size: int, name: str = "calloc") -> DataUnit:
        """Allocate and zero ``count * size`` bytes."""
        unit = self.malloc(count * size, name=name)
        self.space.fill(unit.base, 0, unit.size)
        return unit

    def free(self, unit: DataUnit) -> None:
        """Release an allocation, verifying that its header is intact.

        Raises :class:`~repro.errors.HeapCorruption` if an earlier unchecked
        overflow smashed the chunk header, and
        :class:`~repro.errors.DoubleFree` on repeated frees.
        """
        if unit.kind is not UnitKind.HEAP:
            raise ValueError(f"cannot free non-heap unit {unit.label()}")
        header_addr = unit.base - HEADER_SIZE
        user_size, in_use = self._check_header(header_addr, context="free")
        if not in_use or unit.base not in self._live:
            raise DoubleFree(f"double free of {unit.label()}")
        self._write_header(header_addr, user_size, in_use=False)
        self.table.unregister(unit)
        del self._live[unit.base]
        self._free.append((header_addr, HEADER_SIZE + user_size))
        self.frees += 1
        if self.bus is not None:
            self.bus.emit(AllocFree(op="free", unit_name=unit.label(),
                                    size=unit.size, base=unit.base,
                                    request_id=self.bus.current_request_id))

    def realloc(self, unit: Optional[DataUnit], size: int, name: str = "realloc") -> DataUnit:
        """Grow or shrink an allocation, copying the overlapping prefix."""
        if unit is None:
            return self.malloc(size, name=name)
        new_unit = self.malloc(size, name=name or unit.name)
        copy_len = min(unit.size, size)
        if copy_len > 0:
            data = self.space.read(unit.base, copy_len)
            self.space.write(new_unit.base, data)
        self.free(unit)
        return new_unit

    # -- internals ----------------------------------------------------------------

    def _take_free_chunk(self, total: int) -> Optional[int]:
        """First-fit search of the free list, verifying headers on the way.

        A corrupted header on the free list is detected here, mirroring the
        way glibc discovers corruption during subsequent malloc calls.
        """
        for index, (header_addr, chunk_total) in enumerate(self._free):
            self._check_header(header_addr, context="malloc")
            if chunk_total >= total:
                del self._free[index]
                return header_addr
        return None

    # -- introspection ------------------------------------------------------------

    def live_allocations(self) -> List[DataUnit]:
        """Return the currently live heap units."""
        return list(self._live.values())

    def live_bytes(self) -> int:
        """Return the number of user bytes currently allocated."""
        return sum(u.size for u in self._live.values())

    def verify_heap(self) -> None:
        """Walk every known chunk header and raise on corruption.

        The Standard build of a server calls this periodically (between
        requests) to model the fact that real heap corruption is usually
        discovered some time after the overflow, not at the faulting store.
        """
        for user_base in list(self._live):
            self._check_header(user_base - HEADER_SIZE, context="heap walk")
        for header_addr, _total in self._free:
            self._check_header(header_addr, context="heap walk")
        self._check_top_header(context="heap walk")

    # -- checkpoint / restore ------------------------------------------------------

    def checkpoint(self) -> HeapAllocatorCheckpoint:
        """Snapshot the break, free list, live bases, and counters."""
        return HeapAllocatorCheckpoint(
            brk=self._brk,
            free=tuple(self._free),
            live_bases=tuple(self._live),
            allocations=self.allocations,
            frees=self.frees,
            bytes_allocated=self.bytes_allocated,
        )

    def restore(self, cp: HeapAllocatorCheckpoint, units_by_base: Dict[int, DataUnit]) -> None:
        """Rebuild the bookkeeping from a checkpoint.

        ``units_by_base`` is the live-unit mapping returned by the object
        table's restore, so the allocator references the same rebuilt unit
        objects the table holds.
        """
        self._brk = cp.brk
        self._free = [tuple(entry) for entry in cp.free]
        self._live = {base: units_by_base[base] for base in cp.live_bases}
        self.allocations = cp.allocations
        self.frees = cp.frees
        self.bytes_allocated = cp.bytes_allocated
