"""The object table mapping addresses to data units (Jones & Kelly).

The CRED checker maintains a table of all live data units so that, given a
pointer value, it can recover which unit the pointer refers to and whether the
access stays in bounds.  This module provides that table as a sorted interval
map with O(log n) lookup.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.memory.data_unit import DataUnit, UnitKind, make_unit


@dataclass(frozen=True)
class UnitRecord:
    """Pure-data image of one :class:`~repro.memory.data_unit.DataUnit`.

    Checkpoints store records, not unit objects, so a checkpoint shares no
    mutable state with the live table: restoring (or cloning into another
    process image) rebuilds fresh units with identical fields — including the
    serial, which is deterministic per table (see :meth:`ObjectTable.next_serial`).
    """

    name: str
    base: int
    size: int
    kind: UnitKind
    owner: str
    serial: int
    alive: bool

    @classmethod
    def of(cls, unit: DataUnit) -> "UnitRecord":
        return cls(name=unit.name, base=unit.base, size=unit.size, kind=unit.kind,
                   owner=unit.owner, serial=unit.serial, alive=unit.alive)

    def build(self) -> DataUnit:
        unit = make_unit(name=self.name, base=self.base, size=self.size,
                         kind=self.kind, owner=self.owner, serial=self.serial)
        unit.alive = self.alive
        return unit


@dataclass(frozen=True)
class ObjectTableCheckpoint:
    """Immutable snapshot of the live units, the retired ring, and counters."""

    live: Tuple[UnitRecord, ...]
    retired: Tuple[UnitRecord, ...]
    lookups: int
    next_serial: int


class ObjectTable:
    """Interval map from addresses to live data units.

    Units are stored sorted by base address.  The table assumes units never
    overlap, which the allocator and call stack guarantee; this is asserted at
    registration time to catch substrate bugs early.
    """

    def __init__(self) -> None:
        self._bases: List[int] = []
        self._units: List[DataUnit] = []
        #: Units that have been unregistered but are remembered so that
        #: use-after-free accesses can be attributed to the original unit.
        self._retired: List[DataUnit] = []
        #: Callbacks invoked whenever a unit dies (heap free *or* stack frame
        #: pop — unregister is the single definition of unit death).  Used by
        #: policies holding per-unit side state, e.g. the boundless store.
        self._death_hooks: List[Callable[[DataUnit], None]] = []
        self.lookups = 0
        self._serial_counter = 1

    def add_death_hook(self, hook: Callable[[DataUnit], None]) -> None:
        """Call ``hook(unit)`` every time a unit is unregistered."""
        self._death_hooks.append(hook)

    def next_serial(self) -> int:
        """Hand out the next per-table unit serial.

        The allocator and call stack draw serials here rather than from the
        module-global counter, so a process image that boots deterministically
        labels its units deterministically — two fresh boots (or a checkpoint
        restore and a from-scratch reboot) produce identical unit labels.
        """
        serial = self._serial_counter
        self._serial_counter += 1
        return serial

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self) -> Iterator[DataUnit]:
        return iter(self._units)

    def register(self, unit: DataUnit) -> DataUnit:
        """Add a live unit to the table."""
        index = bisect.bisect_left(self._bases, unit.base)
        if index < len(self._units) and self._units[index].base < unit.end:
            raise ValueError(
                f"unit {unit.label()} overlaps {self._units[index].label()}"
            )
        if index > 0 and self._units[index - 1].end > unit.base:
            raise ValueError(
                f"unit {unit.label()} overlaps {self._units[index - 1].label()}"
            )
        self._bases.insert(index, unit.base)
        self._units.insert(index, unit)
        return unit

    def unregister(self, unit: DataUnit) -> None:
        """Remove a unit (on free / frame pop) and mark it dead."""
        index = bisect.bisect_left(self._bases, unit.base)
        while index < len(self._units) and self._bases[index] == unit.base:
            if self._units[index] is unit:
                del self._bases[index]
                del self._units[index]
                unit.alive = False
                self._retired.append(unit)
                if len(self._retired) > 1024:
                    self._retired.pop(0)
                for hook in self._death_hooks:
                    hook(unit)
                return
            index += 1
        raise KeyError(f"unit {unit.label()} is not registered")

    def find(self, address: int) -> Optional[DataUnit]:
        """Return the live unit containing ``address``, or None.

        This is the per-access table lookup whose cost is the dominant source
        of the slowdown reported in the paper's performance figures.
        """
        self.lookups += 1
        index = bisect.bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        unit = self._units[index]
        if unit.contains_address(address):
            return unit
        return None

    def find_range(self, address: int, length: int) -> Optional[DataUnit]:
        """Return the live unit containing the whole range, or None."""
        unit = self.find(address)
        if unit is not None and unit.contains_address(address, max(length, 1)):
            return unit
        return None

    def find_retired(self, address: int) -> Optional[DataUnit]:
        """Return a dead unit that used to contain ``address`` (for UAF reporting)."""
        for unit in reversed(self._retired):
            if unit.contains_address(address):
                return unit
        return None

    def live_units(self) -> List[DataUnit]:
        """Return all live units ordered by base address."""
        return list(self._units)

    def total_live_bytes(self) -> int:
        """Return the number of bytes covered by live units."""
        return sum(unit.size for unit in self._units)

    def neighbours(self, unit: DataUnit) -> tuple:
        """Return the (previous, next) live units adjacent to ``unit`` by address."""
        index = bisect.bisect_left(self._bases, unit.base)
        prev_unit = self._units[index - 1] if index > 0 else None
        next_unit = self._units[index + 1] if index + 1 < len(self._units) else None
        return prev_unit, next_unit

    # -- checkpoint / restore -----------------------------------------------------

    def checkpoint(self) -> ObjectTableCheckpoint:
        """Snapshot the live units, the retired ring, and the counters."""
        return ObjectTableCheckpoint(
            live=tuple(UnitRecord.of(unit) for unit in self._units),
            retired=tuple(UnitRecord.of(unit) for unit in self._retired),
            lookups=self.lookups,
            next_serial=self._serial_counter,
        )

    def restore(self, cp: ObjectTableCheckpoint) -> Dict[int, DataUnit]:
        """Rebuild the table from a checkpoint, returning live units by base.

        Fresh :class:`DataUnit` objects are constructed (a from-scratch reboot
        would construct fresh objects too); units registered after the
        checkpoint simply drop out, and death hooks do *not* fire — an image
        swap is not a program-visible unit death.  The returned mapping lets
        the allocator and call stack rewire their own references to the same
        rebuilt objects.
        """
        self._units = [record.build() for record in cp.live]
        self._bases = [unit.base for unit in self._units]
        self._retired = [record.build() for record in cp.retired]
        self.lookups = cp.lookups
        self._serial_counter = cp.next_serial
        return {unit.base: unit for unit in self._units}
