"""Type sizes and simple struct layout, mirroring a 32-bit C ABI.

The servers in the paper are 32-bit C programs; their buffer-size arithmetic
(``u8len * 2 + 1`` and friends) is what goes wrong.  The constants here let the
server reimplementations express those computations with the same units the C
code used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

SIZEOF_CHAR = 1
SIZEOF_SHORT = 2
SIZEOF_INT = 4
SIZEOF_LONG = 4
SIZEOF_POINTER = 4
SIZEOF_SIZE_T = 4

_PRIMITIVE_SIZES: Dict[str, int] = {
    "char": SIZEOF_CHAR,
    "unsigned char": SIZEOF_CHAR,
    "short": SIZEOF_SHORT,
    "unsigned short": SIZEOF_SHORT,
    "int": SIZEOF_INT,
    "unsigned int": SIZEOF_INT,
    "long": SIZEOF_LONG,
    "unsigned long": SIZEOF_LONG,
    "size_t": SIZEOF_SIZE_T,
    "void*": SIZEOF_POINTER,
    "char*": SIZEOF_POINTER,
}


def sizeof(type_name: str) -> int:
    """Return the size in bytes of a primitive C type name."""
    try:
        return _PRIMITIVE_SIZES[type_name]
    except KeyError:
        raise KeyError(f"unknown primitive type {type_name!r}") from None


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class FieldLayout:
    """Placement of one struct field."""

    name: str
    offset: int
    size: int


class StructLayout:
    """Byte layout of a C struct with natural alignment.

    Used by the Apache server model, whose vulnerable buffer is an array of
    ``regmatch_t``-style offset pairs inside a stack-allocated struct.
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, int]]) -> None:
        """``fields`` is a sequence of (field name, field size in bytes)."""
        self.name = name
        self.fields: List[FieldLayout] = []
        offset = 0
        max_align = 1
        for field_name, field_size in fields:
            alignment = min(field_size, 4) if field_size > 0 else 1
            max_align = max(max_align, alignment)
            offset = align_up(offset, alignment)
            self.fields.append(FieldLayout(field_name, offset, field_size))
            offset += field_size
        self.size = align_up(offset, max_align)
        self._by_name = {f.name: f for f in self.fields}

    def offset_of(self, field_name: str) -> int:
        """Return the byte offset of a field."""
        return self._by_name[field_name].offset

    def size_of(self, field_name: str) -> int:
        """Return the size of a field."""
        return self._by_name[field_name].size

    def field_names(self) -> List[str]:
        """Return the field names in declaration order."""
        return [f.name for f in self.fields]
