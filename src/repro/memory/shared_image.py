"""Shared-memory placement for checkpoint images.

A fleet run boots one template server per (server, policy) group and clones
every instance from the group's :class:`~repro.memory.context.MemoryImage`.
The segment payloads of such an image are by far its largest part (megabytes
of heap per instance).  :class:`SharedImageStore` moves those payloads into a
single :mod:`multiprocessing.shared_memory` block, so that

* the parent holds exactly one copy of each template image, however many
  instances or worker processes clone from it;
* forked workers map the block instead of copying it — restores read the
  payload through read-only ``memoryview`` slices, so cloning never
  materializes the image bytes again (the O(1)-per-clone half; the other
  half is the address space's touched-block sparse restore, which writes
  only the blocks the boot actually touched).

Lifecycle: the store is created by the scheduler that owns the run and
closed (``close()``: release views, close the mapping, unlink the ``/dev/shm``
segment) in a ``finally`` — including when a worker crashes mid-run — so a
failed run cannot leak shared-memory segments.  Only the creating process
unlinks; forked children merely inherit the mapping and drop it on exit.

When the platform offers no shared memory (or creation fails), sharing
degrades gracefully: images pass through unchanged and everything still
works on plain ``bytes``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.memory.address_space import AddressSpaceCheckpoint
from repro.memory.context import MemoryImage

try:  # pragma: no cover - exercised indirectly on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _shared_memory = None


class SharedImageStore:
    """Owns the shared-memory blocks backing a set of shared checkpoints.

    Usable as a context manager; :meth:`close` is idempotent and safe to call
    from a ``finally`` even when nothing was ever shared.
    """

    def __init__(self) -> None:
        self._blocks: List["_shared_memory.SharedMemory"] = []
        #: Every view handed out (the per-segment payload slices).  They must
        #: be released before the mapping can close — a memoryview exporting
        #: a buffer keeps the underlying mmap pinned.
        self._views: List[memoryview] = []
        self.closed = False
        #: Current append-arena chunk for :meth:`share_payload` (lazy).
        self._arena_block: Optional["_shared_memory.SharedMemory"] = None
        self._arena_offset = 0
        self._arena_size = 0

    # -- sharing -----------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Names of the live shared-memory blocks (``/dev/shm`` entries)."""
        return [block.name for block in self._blocks]

    @property
    def active(self) -> bool:
        """True when at least one shared block is live."""
        return bool(self._blocks) and not self.closed

    def share_space(self, cp: AddressSpaceCheckpoint) -> AddressSpaceCheckpoint:
        """Return a checkpoint whose segment payloads live in shared memory.

        The returned checkpoint is equivalent for every reader (payloads are
        read-only views of identical bytes); the original is left untouched.
        Returns ``cp`` unchanged when sharing is unavailable, already done,
        or pointless (empty payloads).
        """
        if _shared_memory is None or self.closed:
            return cp
        total = sum(len(contents) for _name, _base, contents in cp.segments)
        if total == 0:
            return cp
        if any(isinstance(contents, memoryview) for _n, _b, contents in cp.segments):
            return cp  # already shared
        try:
            block = _shared_memory.SharedMemory(create=True, size=total)
        except OSError:  # pragma: no cover - /dev/shm full or unavailable
            return cp
        self._blocks.append(block)
        buf = block.buf
        offset = 0
        segments = []
        for name, base, contents in cp.segments:
            end = offset + len(contents)
            buf[offset:end] = contents
            view = buf[offset:end].toreadonly()
            self._views.append(view)
            segments.append((name, base, view))
            offset = end
        return dataclasses.replace(cp, segments=tuple(segments))

    #: Arena chunk size for :meth:`share_payload`.  Delta payloads are a few
    #: KiB each; 1 MiB chunks keep the number of ``/dev/shm`` entries small
    #: while wasting at most one chunk tail per stream.
    ARENA_CHUNK = 1024 * 1024

    def share_payload(self, data: bytes) -> "bytes | memoryview":
        """Append a small payload into the shared arena, returning a view.

        The append-side of checkpoint *streams*: each incremental snapshot's
        dirty-block payloads are copied once into a chunked shared-memory
        arena, so forked workers read the whole snapshot history zero-copy
        through the inherited mapping.  Chunks are allocated lazily
        (``ARENA_CHUNK`` bytes, or the payload size when larger) and owned by
        this store like any other block.  Degrades to returning the bytes
        unchanged when sharing is unavailable.
        """
        size = len(data)
        if _shared_memory is None or self.closed or size == 0:
            return bytes(data)
        if self._arena_block is None or self._arena_offset + size > self._arena_size:
            try:
                block = _shared_memory.SharedMemory(
                    create=True, size=max(size, self.ARENA_CHUNK)
                )
            except OSError:  # pragma: no cover - /dev/shm full or unavailable
                return bytes(data)
            self._blocks.append(block)
            self._arena_block = block
            self._arena_size = block.size
            self._arena_offset = 0
        buf = self._arena_block.buf
        start = self._arena_offset
        end = start + size
        buf[start:end] = data
        view = buf[start:end].toreadonly()
        self._views.append(view)
        self._arena_offset = end
        return view

    def share_image(self, image: MemoryImage) -> MemoryImage:
        """Return ``image`` with its address-space payload in shared memory."""
        shared = self.share_space(image.space)
        if shared is image.space:
            return image
        return dataclasses.replace(image, space=shared)

    # -- lifecycle ----------------------------------------------------------------

    def close(self, unlink: bool = True) -> None:
        """Release views, close mappings and (in the creator) unlink blocks.

        Idempotent.  Every checkpoint returned by :meth:`share_space` becomes
        unusable afterwards — callers close only once the run that cloned
        from those images is over.
        """
        if self.closed:
            return
        self.closed = True
        for view in self._views:
            view.release()
        self._views.clear()
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # pragma: no cover - an untracked view leaked
                pass
            if unlink:
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._blocks.clear()
        self._arena_block = None
        self._arena_offset = self._arena_size = 0

    def __enter__(self) -> "SharedImageStore":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
