"""The memory accessor: every load and store goes through here.

The accessor is the compiled program's view of memory.  For the Standard
(unchecked) policy it performs raw accesses at the computed address — which is
what lets overflows smash neighbouring allocations, heap metadata, and saved
return addresses.  For checking policies it first validates the access against
the pointer's intended referent and, on failure, executes whatever continuation
the policy chooses: terminate (Bounds Check), discard/manufacture (Failure
Oblivious), remember (Boundless), or redirect (Redirect).

Partial overflows behave like the byte-by-byte C code they model: the in-bounds
prefix of a block access is performed normally and only the out-of-bounds
suffix is subject to the policy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import AccessPolicy, DecisionAction
from repro.errors import (
    AccessKind,
    ErrorKind,
    MemoryErrorEvent,
    SegmentationFault,
)
from repro.memory.address_space import AddressSpace
from repro.memory.data_unit import DataUnit
from repro.memory.object_table import ObjectTable
from repro.memory.pointer import FatPointer


class MemoryAccessor:
    """Policy-mediated reads and writes over the simulated address space.

    For checking policies every access performs an object-table lookup, the
    same work the CRED checker does to map a pointer to its referent.  Our fat
    pointers already know their referent, so the lookup result is only used to
    cross-check the substrate, but its *cost* is the point: it is the per-access
    overhead that produces the slowdown columns of the paper's Figures 2-6.
    The Standard (unchecked) policy skips the lookup entirely, exactly like
    uninstrumented code.
    """

    def __init__(
        self,
        address_space: AddressSpace,
        object_table: ObjectTable,
        policy: AccessPolicy,
    ) -> None:
        self.space = address_space
        self.table = object_table
        self.policy = policy
        #: Label describing the source location of the access, set by callers
        #: (the servers set it to function names) so error-log events can be
        #: attributed; mirrors the paper's per-site error log.
        self.current_site = ""
        #: Request id stamped on error events, used by the propagation analysis.
        self.current_request_id: Optional[int] = None

    # -- site / request bookkeeping ------------------------------------------------

    def set_site(self, site: str) -> None:
        """Set the source-site label attached to subsequent error events."""
        self.current_site = site

    def set_request(self, request_id: Optional[int]) -> None:
        """Set the request id attached to subsequent error events."""
        self.current_request_id = request_id

    # -- classification -------------------------------------------------------------

    def _classify(self, ptr: FatPointer, length: int, access: AccessKind) -> MemoryErrorEvent:
        unit = ptr.referent
        if ptr.is_null:
            kind = ErrorKind.NULL_DEREF
        elif not unit.alive:
            kind = ErrorKind.USE_AFTER_FREE
        else:
            kind = ErrorKind.OUT_OF_BOUNDS
        return MemoryErrorEvent(
            kind=kind,
            access=access,
            unit_name=unit.label(),
            unit_size=unit.size,
            offset=ptr.offset,
            length=length,
            site=self.current_site,
            request_id=self.current_request_id,
        )

    # -- reads -----------------------------------------------------------------------

    def read(self, ptr: FatPointer, length: int) -> bytes:
        """Read ``length`` bytes through ``ptr`` under the active policy."""
        if length <= 0:
            return b""
        policy = self.policy
        if not policy.performs_checks:
            return self.space.read(ptr.address, length)
        policy.note_check()
        # The CRED-style referent lookup; see the class docstring.
        self.table.find(ptr.address)
        unit = ptr.referent
        if unit.alive and unit.contains_offset(ptr.offset, length):
            return self.space.read(ptr.address, length)
        return self._invalid_read(ptr, length)

    def _invalid_read(self, ptr: FatPointer, length: int) -> bytes:
        unit = ptr.referent
        # Split off an in-bounds prefix, if any, and read it normally.
        prefix = b""
        oob_ptr = ptr
        oob_len = length
        if unit.alive and 0 <= ptr.offset < unit.size:
            prefix_len = unit.size - ptr.offset
            prefix = self.space.read(ptr.address, prefix_len)
            oob_ptr = ptr + prefix_len
            oob_len = length - prefix_len
        event = self._classify(oob_ptr, oob_len, AccessKind.READ)
        decision = self.policy.on_invalid_read(event, oob_len)
        if decision.action is DecisionAction.RAISE:
            raise decision.exception
        if decision.action is DecisionAction.SUPPLY:
            return prefix + decision.data
        if decision.action is DecisionAction.REDIRECT:
            redirected = FatPointer(unit, decision.redirect_offset)
            return prefix + self._read_redirected(redirected, oob_len)
        # PERFORM_RAW / DISCARD fall through to the raw access.
        return prefix + self.space.read(oob_ptr.address, oob_len)

    def _read_redirected(self, ptr: FatPointer, length: int) -> bytes:
        """Read a redirected range, wrapping around inside the unit as needed."""
        unit = ptr.referent
        data = bytearray()
        offset = ptr.offset
        for _ in range(length):
            data.append(self.space.read_byte(unit.base + (offset % unit.size)))
            offset += 1
        return bytes(data)

    # -- writes ----------------------------------------------------------------------

    def write(self, ptr: FatPointer, data: bytes) -> None:
        """Write ``data`` through ``ptr`` under the active policy."""
        if not data:
            return
        policy = self.policy
        if not policy.performs_checks:
            self.space.write(ptr.address, data)
            return
        policy.note_check()
        # The CRED-style referent lookup; see the class docstring.
        self.table.find(ptr.address)
        unit = ptr.referent
        if unit.alive and unit.contains_offset(ptr.offset, len(data)):
            self.space.write(ptr.address, data)
            return
        self._invalid_write(ptr, data)

    def _invalid_write(self, ptr: FatPointer, data: bytes) -> None:
        unit = ptr.referent
        oob_ptr = ptr
        oob_data = data
        if unit.alive and 0 <= ptr.offset < unit.size:
            prefix_len = unit.size - ptr.offset
            self.space.write(ptr.address, data[:prefix_len])
            oob_ptr = ptr + prefix_len
            oob_data = data[prefix_len:]
        event = self._classify(oob_ptr, len(oob_data), AccessKind.WRITE)
        decision = self.policy.on_invalid_write(event, oob_data)
        if decision.action is DecisionAction.RAISE:
            raise decision.exception
        if decision.action is DecisionAction.DISCARD:
            return
        if decision.action is DecisionAction.REDIRECT:
            offset = decision.redirect_offset
            for byte in oob_data:
                self.space.write_byte(unit.base + (offset % unit.size), byte)
                offset += 1
            return
        # PERFORM_RAW: the unchecked behaviour, performed deliberately.
        self.space.write(oob_ptr.address, oob_data)

    # -- scalar helpers ----------------------------------------------------------------

    def read_byte(self, ptr: FatPointer) -> int:
        """Read one unsigned byte (fast path for the common in-bounds case)."""
        policy = self.policy
        if not policy.performs_checks:
            return self.space.read_byte(ptr.address)
        policy.note_check()
        self.table.find(ptr.address)
        unit = ptr.referent
        if unit.alive and 0 <= ptr.offset < unit.size:
            return self.space.read_byte(ptr.address)
        return self._invalid_read(ptr, 1)[0]

    def write_byte(self, ptr: FatPointer, value: int) -> None:
        """Write one byte (fast path for the common in-bounds case)."""
        policy = self.policy
        if not policy.performs_checks:
            self.space.write_byte(ptr.address, value)
            return
        policy.note_check()
        self.table.find(ptr.address)
        unit = ptr.referent
        if unit.alive and 0 <= ptr.offset < unit.size:
            self.space.write_byte(ptr.address, value)
            return
        self._invalid_write(ptr, bytes([value & 0xFF]))

    def read_int(self, ptr: FatPointer, size: int = 4, signed: bool = True) -> int:
        """Read a little-endian integer of ``size`` bytes."""
        data = self.read(ptr, size)
        return int.from_bytes(data, "little", signed=signed)

    def write_int(self, ptr: FatPointer, value: int, size: int = 4, signed: bool = True) -> None:
        """Write a little-endian integer of ``size`` bytes."""
        limit = 1 << (8 * size)
        value &= limit - 1
        if signed and value >= limit // 2:
            self.write(ptr, (value - limit).to_bytes(size, "little", signed=True))
        else:
            self.write(ptr, value.to_bytes(size, "little", signed=False))

    # -- unit helpers -------------------------------------------------------------------

    def read_unit(self, unit: DataUnit) -> bytes:
        """Read an entire data unit (always in bounds)."""
        return self.read(FatPointer(unit), unit.size)

    def zero_unit(self, unit: DataUnit) -> None:
        """Zero an entire data unit (always in bounds)."""
        self.write(FatPointer(unit), b"\x00" * unit.size)
