"""The memory accessor: every load and store goes through here.

The accessor is the compiled program's view of memory.  For the Standard
(unchecked) policy it performs raw accesses at the computed address — which is
what lets overflows smash neighbouring allocations, heap metadata, and saved
return addresses.  For checking policies it first validates the access against
the pointer's intended referent and, on failure, executes whatever continuation
the policy chooses: terminate (Bounds Check), discard/manufacture (Failure
Oblivious), remember (Boundless), or redirect (Redirect).

Partial overflows behave like the byte-by-byte C code they model: the in-bounds
prefix of a block access is performed normally and only the out-of-bounds
suffix is subject to the policy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import AccessPolicy, DecisionAction
from repro.errors import (
    AccessKind,
    ErrorKind,
    MemoryErrorEvent,
)
from repro.memory.address_space import AddressSpace
from repro.memory.data_unit import DataUnit
from repro.memory.object_table import ObjectTable
from repro.memory.pointer import FatPointer


class MemoryAccessor:
    """Policy-mediated reads and writes over the simulated address space.

    For checking policies every access performs an object-table lookup, the
    same work the CRED checker does to map a pointer to its referent.  Our fat
    pointers already know their referent, so the lookup result is only used to
    cross-check the substrate, but its *cost* is the point: it is the per-access
    overhead that produces the slowdown columns of the paper's Figures 2-6.
    The Standard (unchecked) policy skips the lookup entirely, exactly like
    uninstrumented code.
    """

    def __init__(
        self,
        address_space: AddressSpace,
        object_table: ObjectTable,
        policy: AccessPolicy,
        decision_cache: bool = True,
    ) -> None:
        self.space = address_space
        self.table = object_table
        self.policy = policy
        #: Decision cache: the unit whose last access fully validated.  Hot
        #: request loops touch the same referent over and over; a hit skips
        #: the object-table bisect (the lookup *result* is never used — our
        #: fat pointers know their referent — so only its cost is modelled,
        #: and the cache charges that cost to ``table.lookups`` unchanged).
        #: Invariant: a cached unit is alive.  It is evicted by the unit's
        #: death hook (free / frame pop / realloc) and by
        #: :meth:`invalidate_cache` (image restores, where the table is
        #: rebuilt without firing death hooks).
        self._cached_unit: Optional[DataUnit] = None
        self._cache_enabled = decision_cache and policy.performs_checks
        if self._cache_enabled:
            object_table.add_death_hook(self._evict_dead_unit)
        #: Label describing the source location of the access, set by callers
        #: (the servers set it to function names) so error-log events can be
        #: attributed; mirrors the paper's per-site error log.
        self.current_site = ""
        #: Request id stamped on error events, used by the propagation analysis.
        self.current_request_id: Optional[int] = None

    # -- decision cache --------------------------------------------------------------

    def _evict_dead_unit(self, unit: DataUnit) -> None:
        """Death hook keeping the cache's alive-invariant (see ``__init__``)."""
        if unit is self._cached_unit:
            self._cached_unit = None

    def invalidate_cache(self) -> None:
        """Drop the decision cache.

        Called on image restores: :meth:`ObjectTable.restore` rebuilds fresh
        units without firing death hooks (an image swap is not a
        program-visible unit death), so the context evicts explicitly.
        """
        self._cached_unit = None

    # -- site / request bookkeeping ------------------------------------------------

    def set_site(self, site: str) -> None:
        """Set the source-site label attached to subsequent error events."""
        self.current_site = site

    def set_request(self, request_id: Optional[int]) -> None:
        """Set the request id attached to subsequent error events."""
        self.current_request_id = request_id

    # -- classification -------------------------------------------------------------

    def _classify(self, ptr: FatPointer, length: int, access: AccessKind) -> MemoryErrorEvent:
        unit = ptr.referent
        if ptr.is_null:
            kind = ErrorKind.NULL_DEREF
        elif not unit.alive:
            kind = ErrorKind.USE_AFTER_FREE
        else:
            kind = ErrorKind.OUT_OF_BOUNDS
        return MemoryErrorEvent(
            kind=kind,
            access=access,
            unit_name=unit.label(),
            unit_size=unit.size,
            offset=ptr.offset,
            length=length,
            site=self.current_site,
            request_id=self.current_request_id,
        )

    # -- reads -----------------------------------------------------------------------

    def read(self, ptr: FatPointer, length: int) -> bytes:
        """Read ``length`` bytes through ``ptr`` under the active policy."""
        if length <= 0:
            return b""
        policy = self.policy
        if not policy.performs_checks:
            return self.space.read(ptr.address, length)
        policy.note_check()
        unit = ptr.referent
        if unit is self._cached_unit:
            # Cache hit: the unit is alive (cache invariant); only the bounds
            # check remains.  The skipped bisect is still charged as a lookup.
            self.table.lookups += 1
            if unit.contains_offset(ptr.offset, length):
                return self.space.read(ptr.address, length)
        else:
            # The CRED-style referent lookup; see the class docstring.
            self.table.find(ptr.address)
            if unit.alive and unit.contains_offset(ptr.offset, length):
                if self._cache_enabled:
                    self._cached_unit = unit
                return self.space.read(ptr.address, length)
        return self._invalid_read(ptr, length)

    def _invalid_read(self, ptr: FatPointer, length: int) -> bytes:
        unit = ptr.referent
        # Split off an in-bounds prefix, if any, and read it normally.
        prefix = b""
        oob_ptr = ptr
        oob_len = length
        if unit.alive and 0 <= ptr.offset < unit.size:
            prefix_len = unit.size - ptr.offset
            prefix = self.space.read(ptr.address, prefix_len)
            oob_ptr = ptr + prefix_len
            oob_len = length - prefix_len
        event = self._classify(oob_ptr, oob_len, AccessKind.READ)
        decision = self.policy.on_invalid_read(event, oob_len)
        if decision.action is DecisionAction.RAISE:
            raise decision.exception
        if decision.action is DecisionAction.SUPPLY:
            return prefix + decision.data
        if decision.action is DecisionAction.REDIRECT:
            redirected = FatPointer(unit, decision.redirect_offset)
            return prefix + self._read_redirected(redirected, oob_len)
        # PERFORM_RAW / DISCARD fall through to the raw access.
        return prefix + self.space.read(oob_ptr.address, oob_len)

    @staticmethod
    def _tile_rotation(rotated: bytes, length: int) -> bytes:
        """Extend one full rotation of a unit's bytes out to ``length``.

        The single definition of the wrap-and-tile idiom: per-byte accesses at
        offsets ``o, o+1, ...`` revisit the same rotation every ``len(rotated)``
        bytes, so a range longer than the unit repeats it.
        """
        repeats = -(-length // len(rotated))  # ceil division
        return (rotated * repeats)[:length]

    def _read_redirected(self, ptr: FatPointer, length: int) -> bytes:
        """Read a redirected range, wrapping around inside the unit as needed.

        The wrapped range is assembled from whole-slice reads: one when the
        range fits before the end of the unit, two (a rotation) when it wraps,
        and a tiled rotation when it is longer than the unit itself.
        """
        unit = ptr.referent
        size = unit.size
        if size <= 0:  # defensive: policies never redirect into empty units
            return b"\x00" * length
        offset = ptr.offset % size
        if length <= size - offset:
            return self.space.read(unit.base + offset, length)
        rotated = (
            self.space.read(unit.base + offset, size - offset)
            + self.space.read(unit.base, offset)
        )
        return self._tile_rotation(rotated, length)

    # -- writes ----------------------------------------------------------------------

    def write(self, ptr: FatPointer, data: bytes) -> None:
        """Write ``data`` through ``ptr`` under the active policy."""
        if not data:
            return
        policy = self.policy
        if not policy.performs_checks:
            self.space.write(ptr.address, data)
            return
        policy.note_check()
        unit = ptr.referent
        if unit is self._cached_unit:
            self.table.lookups += 1
            if unit.contains_offset(ptr.offset, len(data)):
                self.space.write(ptr.address, data)
                return
        else:
            # The CRED-style referent lookup; see the class docstring.
            self.table.find(ptr.address)
            if unit.alive and unit.contains_offset(ptr.offset, len(data)):
                if self._cache_enabled:
                    self._cached_unit = unit
                self.space.write(ptr.address, data)
                return
        self._invalid_write(ptr, data)

    def _invalid_write(self, ptr: FatPointer, data: bytes) -> None:
        unit = ptr.referent
        oob_ptr = ptr
        oob_data = data
        if unit.alive and 0 <= ptr.offset < unit.size:
            prefix_len = unit.size - ptr.offset
            self.space.write(ptr.address, data[:prefix_len])
            oob_ptr = ptr + prefix_len
            oob_data = data[prefix_len:]
        event = self._classify(oob_ptr, len(oob_data), AccessKind.WRITE)
        decision = self.policy.on_invalid_write(event, oob_data)
        if decision.action is DecisionAction.RAISE:
            raise decision.exception
        if decision.action is DecisionAction.DISCARD:
            return
        if decision.action is DecisionAction.REDIRECT:
            self._write_redirected(unit, decision.redirect_offset, oob_data)
            return
        # PERFORM_RAW: the unchecked behaviour, performed deliberately.
        self.space.write(oob_ptr.address, oob_data)

    def _scan_redirected(
        self, unit: DataUnit, offset: int, count: int, target: int
    ) -> "tuple[bytes, bool]":
        """Terminator scan over a redirected (wrapped) range: the commit side
        of the redirect policy's preview/commit scan protocol.

        Visits the unit bytes at ``(offset + i) % size`` for ``i`` in
        ``[0, count)``, stopping after the first ``target`` — exactly the
        bytes the per-byte loop would have observed, in the same order.
        Returns the bytes visited (terminator included) and whether it was
        found.  One full wrap covers every unit offset, so a miss after
        ``size`` visited bytes can never become a hit later (nothing writes
        the unit mid-scan); the remainder is tiled without re-searching.
        """
        size = unit.size
        space = self.space
        start = offset % size
        first_len = min(count, size - start)
        index = space.find_byte(unit.base + start, target, first_len, charge_reads=False)
        if index >= 0:
            return space.read(unit.base + start, index + 1), True
        head = space.read(unit.base + start, first_len)
        rest = count - first_len
        if rest <= 0:
            return head, False
        second_len = min(rest, start)
        if second_len > 0:
            index = space.find_byte(unit.base, target, second_len, charge_reads=False)
            if index >= 0:
                return head + space.read(unit.base, index + 1), True
        if rest <= start:
            return head + space.read(unit.base, second_len), False
        # The whole unit was searched without a hit; tile the rotation out to
        # ``count`` bytes (the per-byte loop would keep reading the same
        # wrapped content until its limit ran out).  The raw reads stay
        # per-byte-faithful: the slice reads above charged one rotation, and
        # the tiled remainder is charged explicitly — only checks_performed
        # moves to per-run granularity.
        rotated = head + space.read(unit.base, start)
        space.raw_reads += count - len(rotated)
        return self._tile_rotation(rotated, count), False

    def _write_redirected(self, unit: DataUnit, offset: int, data: bytes) -> None:
        """Write a redirected range, wrapping inside the unit as needed.

        Equivalent to writing the bytes one at a time at ``(offset + i) %
        size`` but performed with at most two slice writes: when the data is
        longer than the unit, only the last ``size`` bytes survive the
        byte-at-a-time overwrites, so only they are written.
        """
        size = unit.size
        if size <= 0:  # defensive: policies never redirect into empty units
            return
        if len(data) > size:
            offset = (offset + len(data) - size) % size
            data = data[-size:]
        else:
            offset %= size
        first = min(len(data), size - offset)
        self.space.write(unit.base + offset, data[:first])
        if len(data) > first:
            self.space.write(unit.base, data[first:])

    # -- scalar helpers ----------------------------------------------------------------

    def read_byte(self, ptr: FatPointer) -> int:
        """Read one unsigned byte (fast path for the common in-bounds case)."""
        policy = self.policy
        if not policy.performs_checks:
            return self.space.read_byte(ptr.address)
        policy.note_check()
        unit = ptr.referent
        if unit is self._cached_unit:
            self.table.lookups += 1
            if 0 <= ptr.offset < unit.size:
                return self.space.read_byte(ptr.address)
        else:
            self.table.find(ptr.address)
            if unit.alive and 0 <= ptr.offset < unit.size:
                if self._cache_enabled:
                    self._cached_unit = unit
                return self.space.read_byte(ptr.address)
        return self._invalid_read(ptr, 1)[0]

    def write_byte(self, ptr: FatPointer, value: int) -> None:
        """Write one byte (fast path for the common in-bounds case)."""
        policy = self.policy
        if not policy.performs_checks:
            self.space.write_byte(ptr.address, value)
            return
        policy.note_check()
        unit = ptr.referent
        if unit is self._cached_unit:
            self.table.lookups += 1
            if 0 <= ptr.offset < unit.size:
                self.space.write_byte(ptr.address, value)
                return
        else:
            self.table.find(ptr.address)
            if unit.alive and 0 <= ptr.offset < unit.size:
                if self._cache_enabled:
                    self._cached_unit = unit
                self.space.write_byte(ptr.address, value)
                return
        self._invalid_write(ptr, bytes([value & 0xFF]))

    def read_int(self, ptr: FatPointer, size: int = 4, signed: bool = True) -> int:
        """Read a little-endian integer of ``size`` bytes."""
        data = self.read(ptr, size)
        return int.from_bytes(data, "little", signed=signed)

    def write_int(self, ptr: FatPointer, value: int, size: int = 4, signed: bool = True) -> None:
        """Write a little-endian integer of ``size`` bytes."""
        limit = 1 << (8 * size)
        value &= limit - 1
        if signed and value >= limit // 2:
            self.write(ptr, (value - limit).to_bytes(size, "little", signed=True))
        else:
            self.write(ptr, value.to_bytes(size, "little", signed=False))

    # -- span helpers -------------------------------------------------------------------
    #
    # The span methods are the bulk fast path the C-string routines are built
    # on.  A *span* is the contiguous range that can be accessed raw without
    # policy intervention: the in-bounds window of the referent for checking
    # policies, the rest of the containing segment for the unchecked Standard
    # build.  One policy check and one object-table lookup are paid per span
    # instead of per byte.
    #
    # Outside the span, accesses are invalid and the policy decides.  For
    # policies that support batched runs (all five shipped ones) the whole
    # contiguous invalid run is classified once and handed to the policy as a
    # single ``on_invalid_read_run``/``on_invalid_write_run`` call — the
    # batched out-of-bounds continuation that removes the per-byte ceiling on
    # attack floods.  The run hooks are bit-identical to the per-byte loop
    # for everything a program or the error log can observe (the equivalence
    # suite diffs them against the per-byte reference under every policy);
    # only ``checks_performed`` counts one check per run instead of per byte.
    # Policies without run support (third-party subclasses) still get one
    # policy decision per byte via the scalar accessors.

    def scan_span(self, ptr: FatPointer) -> int:
        """Length of the contiguous raw-accessible span starting at ``ptr``.

        Pure query: no policy bookkeeping is performed.  Returns 0 when every
        access at ``ptr`` must go through the policy (or would fault).
        """
        if not self.policy.performs_checks:
            segment = self.space.find_segment(ptr.address)
            return 0 if segment is None else segment.end - ptr.address
        return ptr.remaining()

    def _note_span_check(self, ptr: FatPointer) -> None:
        """One policy check + one CRED-style table lookup, paid per span.

        Participates in the decision cache: span callers only invoke this
        after ``scan_span(ptr) > 0``, which guarantees the referent is alive
        and the span in bounds, so the unit may be cached directly.
        """
        policy = self.policy
        if policy.performs_checks:
            policy.note_check()
            if ptr.referent is self._cached_unit:
                self.table.lookups += 1
            else:
                self.table.find(ptr.address)
                if self._cache_enabled:
                    self._cached_unit = ptr.referent

    @property
    def batches_runs(self) -> bool:
        """True when invalid suffixes can be handed to the policy as runs.

        The single definition of run eligibility; the C-string helpers
        consult it too when deciding whether an overflowing copy can stream
        whole chunks through the batched continuation.
        """
        policy = self.policy
        return policy.performs_checks and policy.supports_runs

    def _invalid_run_length(self, ptr: FatPointer, length: int) -> int:
        """Length of the contiguous invalid run starting at ``ptr``.

        Every byte of the returned range classifies identically (same kind,
        same unit): a pointer below its unit re-enters bounds at offset 0, so
        the run stops there; above the unit, or into a dead or null unit, the
        whole remaining range is one run.
        """
        unit = ptr.referent
        if not ptr.is_null and unit.alive and ptr.offset < 0:
            return min(-ptr.offset, length)
        return length

    def _invalid_read_run(self, ptr: FatPointer, count: int) -> bytes:
        """One policy decision for a contiguous run of per-byte invalid reads."""
        policy = self.policy
        policy.note_check()
        self.table.find(ptr.address)
        event = self._classify(ptr, 1, AccessKind.READ)
        decision = policy.on_invalid_read_run(event, count)
        if decision.action is DecisionAction.RAISE:
            raise decision.exception
        if decision.action is DecisionAction.SUPPLY:
            return decision.data
        if decision.action is DecisionAction.REDIRECT:
            # Per-byte accesses at offsets o, o+1, ... land at (o + i) % size:
            # exactly the wrapped contiguous read starting at the redirect
            # target.
            redirected = FatPointer(ptr.referent, decision.redirect_offset)
            return self._read_redirected(redirected, count)
        # PERFORM_RAW falls through to the raw access.
        return self.space.read(ptr.address, count)

    def _invalid_write_run(self, ptr: FatPointer, data: bytes) -> None:
        """One policy decision for a contiguous run of per-byte invalid writes."""
        policy = self.policy
        policy.note_check()
        self.table.find(ptr.address)
        event = self._classify(ptr, 1, AccessKind.WRITE)
        decision = policy.on_invalid_write_run(event, data)
        if decision.action is DecisionAction.RAISE:
            raise decision.exception
        if decision.action is DecisionAction.DISCARD:
            return
        if decision.action is DecisionAction.REDIRECT:
            self._write_redirected(ptr.referent, decision.redirect_offset, data)
            return
        # PERFORM_RAW: the unchecked behaviour, performed deliberately.
        self.space.write(ptr.address, data)

    def read_span(self, ptr: FatPointer, length: int) -> "bytes | memoryview":
        """Bulk read: one policy decision per safe span *and* per invalid run.

        Alternates between raw reads of in-bounds spans and batched policy
        continuations for the invalid runs between them; policies without run
        support fall back to one decision per byte.

        Zero-copy contract: when the whole request fits one safe span the
        returned value is a read-only :class:`memoryview` aliasing the live
        segment (valid until the next store to the range); other paths return
        ``bytes``.  Callers that retain the result across further substrate
        activity must copy (``bytes(result)`` — a no-op when it already is
        ``bytes``).
        """
        if length <= 0:
            return b""
        # Fast path for the dominant case: the whole request inside one safe
        # span — no copy at all, the caller gets a view of the segment.
        span = min(self.scan_span(ptr), length)
        if span == length:
            self._note_span_check(ptr)
            return self.space.read_view(ptr.address, length)
        if not self.batches_runs:
            if span <= 0:
                return bytes(self.read_byte(ptr + i) for i in range(length))
            self._note_span_check(ptr)
            data = self.space.read(ptr.address, span)
            return data + bytes(self.read_byte(ptr + i) for i in range(span, length))
        out = bytearray()
        pos = 0
        while pos < length:
            here = ptr + pos
            span = min(self.scan_span(here), length - pos)
            if span > 0:
                self._note_span_check(here)
                out += self.space.read_view(here.address, span)
                pos += span
                continue
            run = self._invalid_run_length(here, length - pos)
            out += self._invalid_read_run(here, run)
            pos += run
        return bytes(out)

    def write_span(self, ptr: FatPointer, data: "bytes | memoryview") -> None:
        """Bulk write: one policy decision per safe span *and* per invalid run.

        The write-side counterpart of :meth:`read_span`; this is the path
        that absorbs an attack flood's out-of-bounds suffix in one policy
        call per span instead of one per byte.

        Accepts any bytes-like ``data`` — in particular the views
        :meth:`read_span` / :meth:`read_span_until` return, which is how the
        cstring copy pipeline moves bytes without materializing them.  A view
        over simulated memory must not overlap the destination range (the
        cstring helpers guarantee this by capping chunks at the pointer
        distance and, for out-of-bounds streaming, requiring distinct units).
        """
        if not data:
            return
        length = len(data)
        # Fast path: the whole write inside one safe span — no slicing.
        span = min(self.scan_span(ptr), length)
        if span == length:
            self._note_span_check(ptr)
            self.space.write(ptr.address, data)
            return
        if not isinstance(data, memoryview):
            # The split paths below slice ``data`` per span/run; a view makes
            # those slices free.  (Policy hooks only measure, iterate, or
            # re-slice the run payloads, so handing them sub-views is safe.)
            data = memoryview(data)
        if not self.batches_runs:
            if span > 0:
                self._note_span_check(ptr)
                self.space.write(ptr.address, data[:span])
            for i in range(span, length):
                self.write_byte(ptr + i, data[i])
            return
        pos = 0
        while pos < length:
            here = ptr + pos
            span = min(self.scan_span(here), length - pos)
            if span > 0:
                self._note_span_check(here)
                self.space.write(here.address, data[pos:pos + span])
                pos += span
                continue
            run = self._invalid_run_length(here, length - pos)
            self._invalid_write_run(here, data[pos:pos + run])
            pos += run

    def read_span_until(
        self, ptr: FatPointer, value: int, limit: int
    ) -> "tuple[bytes | memoryview, int]":
        """Read up to and including the first ``value``; one check per span/run.

        Returns ``(data, index)`` where ``index`` is the offset of ``value``
        relative to ``ptr`` (or -1 on a miss) and ``data`` holds the bytes up
        to and including the hit.  This is the ``strcpy``/``read_c_string``
        shape: locating the terminator and fetching the bytes is a single
        span-sized read per safe span.  When the scan resolves inside the
        first safe span, ``data`` is a read-only :class:`memoryview` of the
        live segment (same zero-copy contract as :meth:`read_span`);
        multi-span scans return ``bytes``.

        Beyond the safe span the scan continues through invalid runs via the
        policy's ``scan_invalid_read_run`` hook (failure-oblivious and
        boundless generate their own bytes and stop exactly where a per-byte
        loop would).  When the policy cannot scan-batch — redirect, whose
        bytes live in memory, and per-byte-only policies — the method returns
        what it has with ``index == -1`` and the caller continues per byte;
        ``data`` may then be shorter than ``limit``.
        """
        target = value & 0xFF
        # Fast path for the dominant case: the hit (or the whole limit)
        # inside the first safe span — one raw read, no accumulator.
        span = min(self.scan_span(ptr), limit)
        if span > 0:
            self._note_span_check(ptr)
            # The follow-up read charges the raw-access counter for these bytes.
            index = self.space.find_byte(ptr.address, target, span, charge_reads=False)
            if index >= 0:
                return self.space.read_view(ptr.address, index + 1), index
            first = self.space.read_view(ptr.address, span)
            if span == limit:
                return first, -1
        else:
            first = b""
        if not self.batches_runs:
            return first, -1
        policy = self.policy
        scan_runs = policy.supports_scan_runs
        out = bytearray(first)
        pos = span
        while pos < limit:
            here = ptr + pos
            span = min(self.scan_span(here), limit - pos)
            if span > 0:
                self._note_span_check(here)
                index = self.space.find_byte(here.address, target, span, charge_reads=False)
                length = index + 1 if index >= 0 else span
                out += self.space.read_view(here.address, length)
                if index >= 0:
                    return bytes(out), pos + index
                pos += span
                continue
            if not scan_runs:
                break  # the caller continues with the per-byte path
            run = self._invalid_run_length(here, limit - pos)
            policy.note_check()
            self.table.find(here.address)
            event = self._classify(here, 1, AccessKind.READ)
            decision = policy.scan_invalid_read_run(event, run, (target,))
            if decision is None:
                break
            if decision.action is DecisionAction.RAISE:
                raise decision.exception
            if decision.action is DecisionAction.REDIRECT:
                # Preview/commit: the policy's bytes live in the unit, so the
                # accessor performs the wrapped scan and reports the consumed
                # length back for the deferred per-byte recording.
                data, hit = self._scan_redirected(
                    here.referent, decision.redirect_offset, run, target
                )
                policy.commit_scan_run(event, len(data))
                out += data
                if hit:
                    return bytes(out), pos + len(data) - 1
                pos += len(data)
                continue
            data = decision.data
            if not data:
                break
            out += data
            if data[-1] == target:
                return bytes(out), pos + len(data) - 1
            pos += len(data)
        return bytes(out), -1

    def find_byte(self, ptr: FatPointer, value: int, limit: int) -> int:
        """Search the safe span for ``value``; one check per call.

        Returns the offset relative to ``ptr`` of the first occurrence within
        ``min(limit, scan_span(ptr))`` bytes, or -1 if the value does not
        occur there.  A -1 only means "not in the span": callers continue with
        the per-byte path at the span boundary.
        """
        span = min(self.scan_span(ptr), limit)
        if span <= 0:
            return -1
        self._note_span_check(ptr)
        return self.space.find_byte(ptr.address, value, span)

    def find_bytes(self, ptr: FatPointer, values: "tuple[int, ...]", limit: int) -> "tuple[int, ...]":
        """Search the safe span for several values at once; one check total.

        Returns one offset (or -1) per entry of ``values``, all from the same
        span scan, so callers needing e.g. both a character and the NUL (the
        ``strchr`` shape) still pay a single policy check and table lookup.
        """
        span = min(self.scan_span(ptr), limit)
        if span <= 0:
            return tuple(-1 for _ in values)
        self._note_span_check(ptr)
        address = ptr.address
        # One span scan's worth of raw reads, however many values are sought.
        return tuple(
            self.space.find_byte(address, value, span, charge_reads=(position == 0))
            for position, value in enumerate(values)
        )

    # -- unit helpers -------------------------------------------------------------------

    def read_unit(self, unit: DataUnit) -> bytes:
        """Read an entire data unit (always in bounds)."""
        return self.read(FatPointer(unit), unit.size)

    def zero_unit(self, unit: DataUnit) -> None:
        """Zero an entire data unit (always in bounds)."""
        self.write(FatPointer(unit), b"\x00" * unit.size)
