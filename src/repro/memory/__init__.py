"""Simulated C memory substrate.

The paper's mechanism operates at the level of individual memory accesses in a
C address space.  This package provides the Python stand-in for that substrate:

* :class:`~repro.memory.address_space.AddressSpace` — a flat, segmented byte
  store in which out-of-bounds writes really do land somewhere (neighbouring
  allocations, heap metadata, the call stack) and unmapped accesses fault.
* :class:`~repro.memory.data_unit.DataUnit` and
  :class:`~repro.memory.object_table.ObjectTable` — the Jones & Kelly object
  table that the CRED checker uses to distinguish legal from illegal accesses.
* :class:`~repro.memory.allocator.HeapAllocator` — a free-list allocator whose
  in-band chunk headers can be smashed by unchecked overflows.
* :class:`~repro.memory.stack.CallStack` — simulated stack frames with return
  address slots that unchecked overflows can overwrite.
* :class:`~repro.memory.pointer.FatPointer` — a pointer that remembers its
  intended referent (Ruwase & Lam's out-of-bounds objects), so a pointer that
  has walked past the end of its buffer is still associated with that buffer.
* :class:`~repro.memory.accessor.MemoryAccessor` — routes every read and write
  through the active :class:`~repro.core.policy.AccessPolicy`.
* :class:`~repro.memory.context.MemoryContext` — the convenience bundle the
  server reimplementations program against (their "libc").
* :mod:`~repro.memory.cstring` — strcpy/strcat/strlen/memcpy/sprintf analogues
  operating on simulated memory.
* :class:`~repro.memory.shared_image.SharedImageStore` — places checkpoint
  image payloads in ``multiprocessing.shared_memory`` so fleet clones map
  one template copy instead of each duplicating it.
"""

from repro.memory.address_space import AddressSpace, Segment
from repro.memory.accessor import MemoryAccessor
from repro.memory.allocator import HeapAllocator
from repro.memory.context import MemoryContext
from repro.memory.data_unit import DataUnit, UnitKind
from repro.memory.object_table import ObjectTable
from repro.memory.pointer import FatPointer
from repro.memory.shared_image import SharedImageStore
from repro.memory.stack import CallStack, StackFrame

__all__ = [
    "AddressSpace",
    "Segment",
    "SharedImageStore",
    "MemoryAccessor",
    "HeapAllocator",
    "MemoryContext",
    "DataUnit",
    "UnitKind",
    "ObjectTable",
    "FatPointer",
    "CallStack",
    "StackFrame",
]
