"""A flat, segmented simulated address space.

The address space is the thing the Standard (unchecked) build corrupts and the
checked builds protect.  It is deliberately simple: a handful of contiguous
segments (globals, heap, stack), each backed by a ``bytearray``.  Raw reads and
writes that fall outside every mapped segment raise
:class:`~repro.errors.SegmentationFault`, which is how the Standard build of a
server eventually dies after a large overflow runs off the end of its heap or
stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SegmentationFault

#: Default segment sizes.  Large enough for every server workload in the
#: evaluation, small enough that a multi-kilobyte attack overflow runs off the
#: end of a segment and faults, as the real servers did.
DEFAULT_GLOBALS_SIZE = 64 * 1024
DEFAULT_HEAP_SIZE = 4 * 1024 * 1024
DEFAULT_STACK_SIZE = 256 * 1024

GLOBALS_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
STACK_BASE = 0x7000_0000


@dataclass
class Segment:
    """One contiguous mapped region of the simulated address space."""

    name: str
    base: int
    data: bytearray

    @property
    def size(self) -> int:
        """Number of mapped bytes in this segment."""
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + len(self.data)

    def contains(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address + length)`` lies entirely inside the segment."""
        return self.base <= address and address + length <= self.end


class AddressSpace:
    """The simulated process address space.

    Parameters are the sizes of the three standard segments.  Additional
    segments can be mapped for tests via :meth:`map_segment`.
    """

    def __init__(
        self,
        globals_size: int = DEFAULT_GLOBALS_SIZE,
        heap_size: int = DEFAULT_HEAP_SIZE,
        stack_size: int = DEFAULT_STACK_SIZE,
    ) -> None:
        self._segments: Dict[str, Segment] = {}
        self._ordered: List[Segment] = []
        self.map_segment("globals", GLOBALS_BASE, globals_size)
        self.map_segment("heap", HEAP_BASE, heap_size)
        self.map_segment("stack", STACK_BASE, stack_size)
        #: Count of raw byte reads/writes, used by the timing model as a
        #: uniform measure of work done independent of the policy in force.
        self.raw_reads = 0
        self.raw_writes = 0
        #: Most recently hit segment; the byte fast paths below probe it first
        #: because consecutive accesses overwhelmingly hit the same segment.
        self._last_segment: Optional[Segment] = None

    # -- segment management ------------------------------------------------------

    def map_segment(self, name: str, base: int, size: int) -> Segment:
        """Map a new zero-filled segment.  Overlapping segments are rejected."""
        if size <= 0:
            raise ValueError("segment size must be positive")
        for existing in self._ordered:
            if base < existing.end and existing.base < base + size:
                raise ValueError(
                    f"segment {name!r} [{base:#x}, {base + size:#x}) overlaps {existing.name!r}"
                )
        segment = Segment(name=name, base=base, data=bytearray(size))
        self._segments[name] = segment
        self._ordered.append(segment)
        self._ordered.sort(key=lambda s: s.base)
        return segment

    def segment(self, name: str) -> Segment:
        """Return the segment with the given name."""
        return self._segments[name]

    @property
    def heap(self) -> Segment:
        """The heap segment."""
        return self._segments["heap"]

    @property
    def stack(self) -> Segment:
        """The stack segment."""
        return self._segments["stack"]

    @property
    def globals(self) -> Segment:
        """The globals segment."""
        return self._segments["globals"]

    def segments(self) -> List[Segment]:
        """Return all mapped segments ordered by base address."""
        return list(self._ordered)

    def find_segment(self, address: int, length: int = 1) -> Optional[Segment]:
        """Return the segment containing ``[address, address+length)`` or None."""
        for segment in self._ordered:
            if segment.contains(address, length):
                self._last_segment = segment
                return segment
        return None

    def is_mapped(self, address: int, length: int = 1) -> bool:
        """True if the whole range is mapped in a single segment."""
        return self.find_segment(address, length) is not None

    # -- raw access ---------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes; fault if any byte is unmapped."""
        if length < 0:
            raise ValueError("length must be non-negative")
        segment = self.find_segment(address, max(length, 1))
        if segment is None:
            raise SegmentationFault(address)
        self.raw_reads += length
        start = address - segment.base
        return bytes(segment.data[start : start + length])

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes; fault if any byte is unmapped."""
        if not data:
            return
        segment = self.find_segment(address, len(data))
        if segment is None:
            raise SegmentationFault(address)
        self.raw_writes += len(data)
        start = address - segment.base
        segment.data[start : start + len(data)] = data

    def read_byte(self, address: int) -> int:
        """Read one raw byte (fast path probing the most recent segment first)."""
        segment = self._last_segment
        if segment is None or not (segment.base <= address < segment.end):
            segment = self.find_segment(address, 1)
            if segment is None:
                raise SegmentationFault(address)
        self.raw_reads += 1
        return segment.data[address - segment.base]

    def write_byte(self, address: int, value: int) -> None:
        """Write one raw byte (fast path probing the most recent segment first)."""
        segment = self._last_segment
        if segment is None or not (segment.base <= address < segment.end):
            segment = self.find_segment(address, 1)
            if segment is None:
                raise SegmentationFault(address)
        self.raw_writes += 1
        segment.data[address - segment.base] = value & 0xFF

    def find_byte(self, address: int, value: int, length: int,
                  charge_reads: bool = True) -> int:
        """Return the offset of the first ``value`` in ``[address, address+length)``.

        Backed by ``bytearray.find`` on the containing segment, so scanning a
        span costs one C-level search instead of one Python-level read per
        byte.  Returns -1 if ``value`` does not occur in the range; faults if
        the range is not entirely mapped (mirroring :meth:`read`).

        ``charge_reads=False`` skips the raw-access counter: callers that
        follow the search with a :meth:`read` of the same range (or search the
        same span several times) pass it so each examined byte is charged once.
        """
        if length <= 0:
            return -1
        segment = self.find_segment(address, length)
        if segment is None:
            raise SegmentationFault(address)
        start = address - segment.base
        index = segment.data.find(value & 0xFF, start, start + length)
        if charge_reads:
            # Bytes up to and including the hit (or the whole span on a miss)
            # were examined, which is what the raw-access counters measure.
            self.raw_reads += (index - start + 1) if index >= 0 else length
        return (index - start) if index >= 0 else -1

    def fill(self, address: int, value: int, length: int) -> None:
        """Fill a raw range with a byte value (memset without checks)."""
        self.write(address, bytes([value & 0xFF]) * length)

    def snapshot(self, address: int, length: int) -> bytes:
        """Alias of :meth:`read` used by tests to express intent (no checks)."""
        return self.read(address, length)
