"""A flat, segmented simulated address space.

The address space is the thing the Standard (unchecked) build corrupts and the
checked builds protect.  It is deliberately simple: a handful of contiguous
segments (globals, heap, stack), each backed by a ``bytearray``.  Raw reads and
writes that fall outside every mapped segment raise
:class:`~repro.errors.SegmentationFault`, which is how the Standard build of a
server eventually dies after a large overflow runs off the end of its heap or
stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import SegmentationFault

#: Default segment sizes.  Large enough for every server workload in the
#: evaluation, small enough that a multi-kilobyte attack overflow runs off the
#: end of a segment and faults, as the real servers did.
DEFAULT_GLOBALS_SIZE = 64 * 1024
DEFAULT_HEAP_SIZE = 4 * 1024 * 1024
DEFAULT_STACK_SIZE = 256 * 1024

GLOBALS_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
STACK_BASE = 0x7000_0000

#: Granularity of the dirty tracking used by checkpoint restores.  Writes mark
#: blocks of this many bytes dirty; a restore copies back only the blocks
#: touched since the checkpoint, so a restart costs O(dirty bytes) rather than
#: O(address-space size).
DIRTY_BLOCK = 4096
_DIRTY_SHIFT = DIRTY_BLOCK.bit_length() - 1

#: Global epoch source for checkpoints.  Epochs are only compared for
#: equality: a restore may take the dirty-block fast path only when the space
#: is known to be clean with respect to *that* checkpoint.
_checkpoint_epochs = itertools.count(1)


@dataclass
class Segment:
    """One contiguous mapped region of the simulated address space."""

    name: str
    base: int
    data: bytearray
    #: Indices of DIRTY_BLOCK-sized blocks written since the last checkpoint.
    dirty: Set[int] = field(default_factory=set)
    #: Indices of blocks *ever* written (folded in at every checkpoint and
    #: restore).  Invariant: any block not in ``touched | dirty`` is still
    #: all zeros, because segments start zero-filled and every store goes
    #: through :class:`AddressSpace`, which marks blocks dirty.  Restores can
    #: therefore skip untouched blocks entirely — this is what makes cloning
    #: a boot image into a fresh space O(touched bytes), not O(segment size).
    touched: Set[int] = field(default_factory=set)
    #: Read-only view over ``data``.  Zero-copy reads hand out slices of this
    #: view; it stays valid for the segment's lifetime because segments never
    #: resize.  (Kept out of ``__eq__``: identity of the backing buffer is
    #: what matters, and ``data`` is already compared.)
    view: memoryview = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.view = memoryview(self.data).toreadonly()

    @property
    def size(self) -> int:
        """Number of mapped bytes in this segment."""
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + len(self.data)

    def contains(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address + length)`` lies entirely inside the segment."""
        return self.base <= address and address + length <= self.end

    def mark_dirty(self, start: int, length: int) -> None:
        """Record that ``[start, start + length)`` (segment offsets) was written."""
        self.dirty.update(range(start >> _DIRTY_SHIFT, (start + length - 1 >> _DIRTY_SHIFT) + 1))


@dataclass(frozen=True)
class AddressSpaceCheckpoint:
    """Immutable snapshot of every mapped segment plus the access counters.

    ``segments`` maps name to (base, contents); the payloads are bytes-like
    (``bytes``, or read-only ``memoryview``s when the checkpoint has been
    placed in shared memory by :class:`~repro.memory.shared_image.SharedImageStore`),
    so a checkpoint can be shared between processes and restored into any
    address space (cloning a pre-forked child reuses one parent snapshot).

    ``touched_blocks`` records, per segment, the sorted DIRTY_BLOCK indices
    that have ever been written when the checkpoint was taken.  Every block
    outside the list is all zeros in the payload, which lets a restore into
    another space skip it when that space knows the block is zero on its side
    too.  Empty (the default) means "unknown": restores then fall back to the
    full copy.
    """

    epoch: int
    segments: Tuple[Tuple[str, int, bytes], ...]
    raw_reads: int
    raw_writes: int
    touched_blocks: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()


@dataclass(frozen=True)
class AddressSpaceDelta:
    """The blocks dirtied since the previous checkpoint, as an immutable record.

    A delta is O(dirty blocks) to capture, which is what makes mid-run
    snapshot cadences affordable: a request that scribbles a few KiB costs a
    few 4 KiB block copies, not a copy of the whole address space.  Deltas
    chain: ``parent_epoch`` names the checkpoint (full or delta) the dirty
    tracking was relative to, so replaying base + deltas in order rebuilds
    the exact segment bytes of any snapshot in the chain
    (:class:`~repro.memory.checkpoint_stream.CheckpointStream` owns that
    replay).

    ``blocks`` maps segment name to ``((block_index, payload), ...)`` in
    ascending block order.  Payloads are bytes-like — ``bytes``, or read-only
    ``memoryview``s when the delta has been appended into shared memory —
    and are DIRTY_BLOCK long except for a segment's final partial block.
    """

    epoch: int
    parent_epoch: Optional[int]
    blocks: Tuple[Tuple[str, Tuple[Tuple[int, bytes], ...]], ...]
    raw_reads: int
    raw_writes: int

    @property
    def block_count(self) -> int:
        """Total number of dirty blocks captured across all segments."""
        return sum(len(entries) for _name, entries in self.blocks)

    @property
    def payload_bytes(self) -> int:
        """Total payload size in bytes (the cost of storing this delta)."""
        return sum(
            len(payload) for _name, entries in self.blocks for _idx, payload in entries
        )


def _block_runs(blocks):
    """Yield maximal (start_block, end_block) runs from sorted block indices.

    Coalescing adjacent blocks turns the per-block Python loop into one slice
    copy per contiguous run — boot images touch long contiguous stretches, so
    a sparse restore is typically a handful of memcpys.
    """
    iterator = iter(blocks)
    try:
        start = prev = next(iterator)
    except StopIteration:
        return
    for block in iterator:
        if block != prev + 1:
            yield start, prev + 1
            start = block
        prev = block
    yield start, prev + 1


class AddressSpace:
    """The simulated process address space.

    Parameters are the sizes of the three standard segments.  Additional
    segments can be mapped for tests via :meth:`map_segment`.
    """

    def __init__(
        self,
        globals_size: int = DEFAULT_GLOBALS_SIZE,
        heap_size: int = DEFAULT_HEAP_SIZE,
        stack_size: int = DEFAULT_STACK_SIZE,
    ) -> None:
        self._segments: Dict[str, Segment] = {}
        self._ordered: List[Segment] = []
        self.map_segment("globals", GLOBALS_BASE, globals_size)
        self.map_segment("heap", HEAP_BASE, heap_size)
        self.map_segment("stack", STACK_BASE, stack_size)
        #: Count of raw byte reads/writes, used by the timing model as a
        #: uniform measure of work done independent of the policy in force.
        self.raw_reads = 0
        self.raw_writes = 0
        #: Most recently hit segment; the byte fast paths below probe it first
        #: because consecutive accesses overwhelmingly hit the same segment.
        self._last_segment: Optional[Segment] = None
        #: Epoch of the checkpoint the dirty sets are tracked against, or None
        #: when no checkpoint has been taken (or the layout changed since).
        self._clean_epoch: Optional[int] = None

    # -- segment management ------------------------------------------------------

    def map_segment(self, name: str, base: int, size: int) -> Segment:
        """Map a new zero-filled segment.  Overlapping segments are rejected."""
        if size <= 0:
            raise ValueError("segment size must be positive")
        for existing in self._ordered:
            if base < existing.end and existing.base < base + size:
                raise ValueError(
                    f"segment {name!r} [{base:#x}, {base + size:#x}) overlaps {existing.name!r}"
                )
        segment = Segment(name=name, base=base, data=bytearray(size))
        self._segments[name] = segment
        self._ordered.append(segment)
        self._ordered.sort(key=lambda s: s.base)
        # The layout no longer matches any earlier checkpoint, so restores
        # must take the full-copy path until the next checkpoint.
        self._clean_epoch = None
        return segment

    def segment(self, name: str) -> Segment:
        """Return the segment with the given name."""
        return self._segments[name]

    @property
    def heap(self) -> Segment:
        """The heap segment."""
        return self._segments["heap"]

    @property
    def stack(self) -> Segment:
        """The stack segment."""
        return self._segments["stack"]

    @property
    def globals(self) -> Segment:
        """The globals segment."""
        return self._segments["globals"]

    def segments(self) -> List[Segment]:
        """Return all mapped segments ordered by base address."""
        return list(self._ordered)

    def find_segment(self, address: int, length: int = 1) -> Optional[Segment]:
        """Return the segment containing ``[address, address+length)`` or None."""
        for segment in self._ordered:
            if segment.contains(address, length):
                self._last_segment = segment
                return segment
        return None

    def is_mapped(self, address: int, length: int = 1) -> bool:
        """True if the whole range is mapped in a single segment."""
        return self.find_segment(address, length) is not None

    # -- raw access ---------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes; fault if any byte is unmapped."""
        if length < 0:
            raise ValueError("length must be non-negative")
        segment = self.find_segment(address, max(length, 1))
        if segment is None:
            raise SegmentationFault(address)
        self.raw_reads += length
        start = address - segment.base
        return segment.view[start : start + length].tobytes()

    def read_view(self, address: int, length: int) -> memoryview:
        """Zero-copy :meth:`read`: a read-only view of the live segment bytes.

        Same faulting behaviour and raw-access accounting as :meth:`read`,
        but no copy is made.  The view aliases the segment, so it reflects —
        and is only valid until — subsequent stores to the range (and
        :meth:`restore`).  Callers that retain the data across further
        substrate activity must copy (``bytes(view)``); that copy is the
        telemetry/API boundary.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        segment = self.find_segment(address, max(length, 1))
        if segment is None:
            raise SegmentationFault(address)
        self.raw_reads += length
        start = address - segment.base
        return segment.view[start : start + length]

    def write(self, address: int, data: "bytes | bytearray | memoryview") -> None:
        """Write raw bytes (any bytes-like); fault if any byte is unmapped."""
        if not data:
            return
        segment = self.find_segment(address, len(data))
        if segment is None:
            raise SegmentationFault(address)
        self.raw_writes += len(data)
        start = address - segment.base
        segment.data[start : start + len(data)] = data
        segment.mark_dirty(start, len(data))

    def read_byte(self, address: int) -> int:
        """Read one raw byte (fast path probing the most recent segment first)."""
        segment = self._last_segment
        if segment is None or not (segment.base <= address < segment.end):
            segment = self.find_segment(address, 1)
            if segment is None:
                raise SegmentationFault(address)
        self.raw_reads += 1
        return segment.data[address - segment.base]

    def write_byte(self, address: int, value: int) -> None:
        """Write one raw byte (fast path probing the most recent segment first)."""
        segment = self._last_segment
        if segment is None or not (segment.base <= address < segment.end):
            segment = self.find_segment(address, 1)
            if segment is None:
                raise SegmentationFault(address)
        self.raw_writes += 1
        offset = address - segment.base
        segment.data[offset] = value & 0xFF
        segment.dirty.add(offset >> _DIRTY_SHIFT)

    def find_byte(self, address: int, value: int, length: int,
                  charge_reads: bool = True) -> int:
        """Return the offset of the first ``value`` in ``[address, address+length)``.

        Backed by ``bytearray.find`` on the containing segment, so scanning a
        span costs one C-level search instead of one Python-level read per
        byte.  Returns -1 if ``value`` does not occur in the range; faults if
        the range is not entirely mapped (mirroring :meth:`read`).

        ``charge_reads=False`` skips the raw-access counter: callers that
        follow the search with a :meth:`read` of the same range (or search the
        same span several times) pass it so each examined byte is charged once.
        """
        if length <= 0:
            return -1
        segment = self.find_segment(address, length)
        if segment is None:
            raise SegmentationFault(address)
        start = address - segment.base
        index = segment.data.find(value & 0xFF, start, start + length)
        if charge_reads:
            # Bytes up to and including the hit (or the whole span on a miss)
            # were examined, which is what the raw-access counters measure.
            self.raw_reads += (index - start + 1) if index >= 0 else length
        return (index - start) if index >= 0 else -1

    def fill(self, address: int, value: int, length: int) -> None:
        """Fill a raw range with a byte value (memset without checks)."""
        self.write(address, bytes([value & 0xFF]) * length)

    def snapshot(self, address: int, length: int) -> bytes:
        """Alias of :meth:`read` used by tests to express intent (no checks)."""
        return self.read(address, length)

    # -- checkpoint / restore -----------------------------------------------------

    def checkpoint(self) -> AddressSpaceCheckpoint:
        """Snapshot every segment's contents plus the raw-access counters.

        Taking a checkpoint resets the dirty tracking, so a later
        :meth:`restore` of *this* checkpoint only copies back the blocks
        written in between (the O(dirty-bytes) restart path).
        """
        epoch = next(_checkpoint_epochs)
        for segment in self._ordered:
            segment.touched |= segment.dirty
            segment.dirty.clear()
        self._clean_epoch = epoch
        return AddressSpaceCheckpoint(
            epoch=epoch,
            segments=tuple(
                (segment.name, segment.base, bytes(segment.data))
                for segment in self._ordered
            ),
            raw_reads=self.raw_reads,
            raw_writes=self.raw_writes,
            touched_blocks=tuple(
                (segment.name, tuple(sorted(segment.touched)))
                for segment in self._ordered
            ),
        )

    @property
    def clean_epoch(self) -> Optional[int]:
        """Epoch the dirty sets are tracked against (None: no checkpoint yet)."""
        return self._clean_epoch

    def delta_checkpoint(self) -> AddressSpaceDelta:
        """Capture only the blocks dirtied since the previous checkpoint.

        Costs O(dirty blocks) instead of O(address-space size).  Like
        :meth:`checkpoint` it resets the dirty tracking and starts a new
        epoch, so deltas chain: the returned record's ``parent_epoch`` is the
        epoch this space was clean against when the delta was taken.  Raises
        if no checkpoint has ever been taken (a delta needs a base to chain
        from).
        """
        if self._clean_epoch is None:
            raise ValueError(
                "delta_checkpoint() needs a base checkpoint to chain from"
            )
        epoch = next(_checkpoint_epochs)
        parent = self._clean_epoch
        blocks = []
        for segment in self._ordered:
            entries = []
            view = segment.view
            for index in sorted(segment.dirty):
                start = index << _DIRTY_SHIFT
                entries.append((index, bytes(view[start : start + DIRTY_BLOCK])))
            blocks.append((segment.name, tuple(entries)))
            segment.touched |= segment.dirty
            segment.dirty.clear()
        self._clean_epoch = epoch
        return AddressSpaceDelta(
            epoch=epoch,
            parent_epoch=parent,
            blocks=tuple(blocks),
            raw_reads=self.raw_reads,
            raw_writes=self.raw_writes,
        )

    def apply_block_patch(
        self,
        updates: Mapping[str, Iterable[Tuple[int, bytes]]],
        *,
        epoch: int,
        raw_reads: int,
        raw_writes: int,
        touched: Mapping[str, Set[int]],
    ) -> int:
        """Overwrite specific blocks and adopt a checkpoint's identity.

        The replay primitive under :class:`~repro.memory.checkpoint_stream.CheckpointStream`:
        the caller has computed exactly which blocks differ between the
        space's current contents and some snapshot in a delta chain, and
        supplies each such block's payload at that snapshot.  After the
        patch the space is clean with respect to ``epoch``, the per-segment
        ``touched`` sets are replaced with the supplied ones, and the raw
        access counters are adopted — the same postconditions
        :meth:`restore` establishes, at O(differing blocks) cost.  Returns
        the number of blocks written.
        """
        written = 0
        for segment in self._ordered:
            data = segment.data
            for index, payload in updates.get(segment.name, ()):
                start = index << _DIRTY_SHIFT
                data[start : start + len(payload)] = payload
                written += 1
            new_touched = touched.get(segment.name)
            if new_touched is not None:
                segment.touched = set(new_touched)
            segment.dirty.clear()
        self.raw_reads = raw_reads
        self.raw_writes = raw_writes
        self._last_segment = None
        self._clean_epoch = epoch
        return written

    def restore(self, cp: AddressSpaceCheckpoint) -> None:
        """Reset every segment to the checkpointed contents.

        When the space is clean with respect to ``cp`` (the common restart
        loop: checkpoint once at boot, restore on every death), only the
        dirty blocks are copied.  Restoring a checkpoint taken elsewhere —
        cloning a pre-forked worker from a template boot image — copies only
        the blocks that could differ: the checkpoint's touched blocks plus
        this space's own touched/dirty blocks (everything else is zero on
        both sides).  That makes clone cost O(touched bytes), independent of
        segment size.  Checkpoints without touched-block data take the full
        copy.  Either way the space is clean with respect to ``cp``
        afterwards, so cloned process images get the dirty-block fast path on
        *their* subsequent restores too.  Segments mapped after the
        checkpoint are unmapped; a checkpointed segment whose size changed is
        a substrate bug and raises.
        """
        fast = self._clean_epoch == cp.epoch
        touched_map = dict(cp.touched_blocks)
        wanted = {name for name, _base, _data in cp.segments}
        if not fast and any(segment.name not in wanted for segment in self._ordered):
            self._ordered = [s for s in self._ordered if s.name in wanted]
            self._segments = {s.name: s for s in self._ordered}
        for name, base, contents in cp.segments:
            segment = self._segments.get(name)
            if segment is None or segment.base != base or segment.size != len(contents):
                raise ValueError(
                    f"cannot restore checkpoint: segment {name!r} layout changed"
                )
            data = segment.data
            cp_touched = touched_map.get(name)
            if fast:
                for start_block, end_block in _block_runs(sorted(segment.dirty)):
                    start = start_block << _DIRTY_SHIFT
                    end = end_block << _DIRTY_SHIFT
                    data[start:end] = contents[start:end]
            elif cp_touched is not None:
                # Sparse cross-space restore: blocks untouched on both sides
                # are zero on both sides and need no copy.
                stale = set(cp_touched) | segment.touched | segment.dirty
                for start_block, end_block in _block_runs(sorted(stale)):
                    start = start_block << _DIRTY_SHIFT
                    end = end_block << _DIRTY_SHIFT
                    data[start:end] = contents[start:end]
            else:
                data[:] = contents
            if cp_touched is not None:
                segment.touched = set(cp_touched)
            else:
                # Unknown provenance: assume every block may be non-zero.
                segment.touched = set(range(-(-segment.size // DIRTY_BLOCK)))
            segment.dirty.clear()
        self.raw_reads = cp.raw_reads
        self.raw_writes = cp.raw_writes
        self._last_segment = None
        self._clean_epoch = cp.epoch
