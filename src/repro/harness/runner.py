"""Building servers and running the paper's per-server experiments.

Two experiment shapes are provided:

* :func:`run_performance_figure` — the benign-workload timing experiments of
  Figures 2-6: each request kind measured under the Standard build and the
  Failure Oblivious build, with the slowdown ratio.
* :func:`run_security_matrix` / :func:`run_attack_scenario` — the
  security-and-resilience experiments of §4.2.2-§4.6.2: boot each build with
  the documented error trigger planted, deliver the attack, then check whether
  the server still serves legitimate follow-up requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.policies import POLICY_NAMES
from repro.errors import RequestOutcome, RequestResult
from repro.harness.timing import TimingResult, measure_paired, measure_request_time, slowdown
from repro.servers import SERVER_CLASSES
from repro.servers.base import Request, Server
from repro.workloads.attacks import attack_config_for, attack_request_for
from repro.workloads.benign import (
    FIGURE_ROWS,
    benign_requests_for,
    midnight_commander_vfs_files,
    mutt_benchmark_folders,
    pine_benchmark_mailbox,
)

#: Paper figure number for each server's request-time table.
FIGURE_NUMBERS = {
    "pine": 2,
    "apache": 3,
    "sendmail": 4,
    "midnight-commander": 5,
    "mutt": 6,
}


def benchmark_config(server_name: str, scale: float = 1.0) -> Dict[str, object]:
    """A benign configuration sized for repeated benchmark requests.

    ``scale`` scales the data volumes (directory sizes, file sizes) relative
    to the defaults; the paper's absolute sizes (a 31 MByte directory, an
    830 KByte download) can be requested with a larger scale at the cost of
    longer runs.
    """
    if server_name == "pine":
        return {"mailbox": pine_benchmark_mailbox(max(int(64 * scale), 32))}
    if server_name == "mutt":
        return {"folders": mutt_benchmark_folders(max(int(64 * scale), 32))}
    if server_name == "midnight-commander":
        return {
            "vfs_files": midnight_commander_vfs_files(
                directory_bytes=int(2 * 1024 * 1024 * scale),
                file_count=16,
                delete_file_bytes=int(256 * 1024 * scale),
            )
        }
    return {}


def build_server(
    server_name: str,
    policy_name: str,
    config: Optional[Dict[str, object]] = None,
    plant_attack: bool = False,
    scale: float = 1.0,
) -> Server:
    """Construct (but do not start) a server under the named policy.

    ``plant_attack`` merges in the configuration that plants the documented
    error trigger (poisoned mailbox, vulnerable rewrite rule, attack startup
    folder, ...).
    """
    if server_name not in SERVER_CLASSES:
        raise KeyError(f"unknown server {server_name!r}; expected one of {sorted(SERVER_CLASSES)}")
    if policy_name not in POLICY_NAMES:
        raise KeyError(f"unknown policy {policy_name!r}; expected one of {sorted(POLICY_NAMES)}")
    merged: Dict[str, object] = benchmark_config(server_name, scale=scale)
    if plant_attack:
        merged.update(attack_config_for(server_name))
    if config:
        merged.update(config)
    server_cls = SERVER_CLASSES[server_name]
    policy_cls = POLICY_NAMES[policy_name]
    return server_cls(policy_cls, config=merged)


# ---------------------------------------------------------------------------
# Performance figures (Figures 2-6)
# ---------------------------------------------------------------------------


@dataclass
class FigureRow:
    """One row of a request-time figure: a request kind under two builds."""

    server: str
    request_kind: str
    baseline: TimingResult
    failure_oblivious: TimingResult

    @property
    def slowdown(self) -> float:
        """Failure-oblivious time divided by baseline time (the paper's column)."""
        return slowdown(self.baseline, self.failure_oblivious)


def _request_factory(server_name: str, kind: str) -> Callable[[int], Request]:
    """Build the per-repetition request factory for one figure row."""

    def factory(index: int) -> Request:
        if server_name == "midnight-commander":
            return benign_requests_for(server_name, kind, 1, unique_suffix=index)[0]
        return benign_requests_for(server_name, kind, 1)[0]

    return factory


def _reset_hook(server_name: str, kind: str) -> Optional[Callable[[Server, int], None]]:
    """State-restoring hook run before each repetition, where a request consumes state."""
    if server_name == "midnight-commander" and kind == "delete":

        def restore_deleted_file(server: Server, index: int) -> None:
            server.vfs.add_file("/home/user/big-download.iso", b"\xab" * (64 * 1024))

        return restore_deleted_file
    if server_name == "midnight-commander" and kind == "move":

        def ensure_move_source(server: Server, index: int) -> None:
            # The generated move requests alternate direction; make sure the
            # expected source directory exists even after a failed repetition.
            source = "/home/user/data" if index % 2 == 0 else "/home/user/data_moved"
            if not server.vfs.exists(source):
                other = "/home/user/data_moved" if index % 2 == 0 else "/home/user/data"
                for path in server.vfs.tree(other):
                    relative = path[len(other):].lstrip("/")
                    server.vfs.files[f"{source}/{relative}"] = server.vfs.files.pop(path)
                server.vfs.add_directory(source)

        return ensure_move_source
    return None


def run_performance_figure(
    server_name: str,
    repetitions: int = 20,
    scale: float = 1.0,
    baseline_policy: str = "standard",
    treatment_policy: str = "failure-oblivious",
    kinds: Optional[Sequence[str]] = None,
) -> List[FigureRow]:
    """Regenerate one of Figures 2-6 for ``server_name``.

    A fresh server is built and started for every (request kind, policy) cell
    so that no state leaks between measurements, mirroring the paper's
    per-request instrumentation.
    """
    rows: List[FigureRow] = []
    row_kinds = list(kinds) if kinds is not None else FIGURE_ROWS[server_name]
    # Whole-process warm-up: run a few requests once so that neither build's
    # first measured cell pays one-time interpreter and allocator start-up
    # costs (the analogue of the paper measuring steady-state servers).
    warm_server = build_server(server_name, baseline_policy, scale=scale)
    if not warm_server.start().fatal and row_kinds:
        warm_factory = _request_factory(server_name, row_kinds[0])
        warm_reset = _reset_hook(server_name, row_kinds[0])
        for warm_index in range(3):
            if warm_reset is not None:
                warm_reset(warm_server, warm_index)
            warm_server.process(warm_factory(warm_index))
    for kind in row_kinds:
        servers: Dict[str, Server] = {}
        for policy_name in (baseline_policy, treatment_policy):
            server = build_server(server_name, policy_name, scale=scale)
            boot = server.start()
            if not boot.fatal:
                servers[policy_name] = server
        timings = measure_paired(
            servers,
            _request_factory(server_name, kind),
            repetitions=repetitions,
            reset=_reset_hook(server_name, kind),
            label=kind,
        )
        for policy_name in (baseline_policy, treatment_policy):
            if policy_name not in timings:
                timings[policy_name] = TimingResult(
                    label=f"{kind} ({policy_name}: failed to boot)"
                )
        rows.append(
            FigureRow(
                server=server_name,
                request_kind=kind,
                baseline=timings[baseline_policy],
                failure_oblivious=timings[treatment_policy],
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Security and resilience (the §4.x.2 sections)
# ---------------------------------------------------------------------------

#: Legitimate follow-up requests issued after the attack to check that the
#: server still serves its users (the paper's acceptability criterion).
def _follow_up_requests(server_name: str) -> List[Request]:
    if server_name == "pine":
        return [Request(kind="read", payload={"index": 0}), Request(kind="compose")]
    if server_name == "apache":
        return [Request(kind="get", payload={"url": "/index.html"})]
    if server_name == "sendmail":
        return benign_requests_for("sendmail", "recv_small", 1)
    if server_name == "midnight-commander":
        return [Request(kind="mkdir", payload={"path": "/home/user/after-attack"})]
    if server_name == "mutt":
        return [
            Request(kind="open_folder", payload={"folder": b"INBOX"}),
            Request(kind="read", payload={"index": 0}),
        ]
    raise KeyError(f"no follow-up requests defined for {server_name!r}")


@dataclass
class ScenarioResult:
    """Outcome of one attack scenario (one server under one policy)."""

    server: str
    policy: str
    boot: RequestResult
    attack: Optional[RequestResult]
    follow_ups: List[RequestResult] = field(default_factory=list)

    @property
    def survived_attack(self) -> bool:
        """True if the server was still alive after boot and the attack."""
        if self.boot.fatal:
            return False
        return self.attack is None or not self.attack.fatal

    @property
    def continued_service(self) -> bool:
        """True if every legitimate follow-up request was served successfully."""
        return bool(self.follow_ups) and all(
            result.outcome is RequestOutcome.SERVED for result in self.follow_ups
        )

    @property
    def vulnerable(self) -> bool:
        """True if the attack crashed, exploited, or hung the server."""
        outcomes = [self.boot.outcome]
        if self.attack is not None:
            outcomes.append(self.attack.outcome)
        return any(
            outcome in (RequestOutcome.CRASHED, RequestOutcome.EXPLOITED, RequestOutcome.HUNG)
            for outcome in outcomes
        )


@dataclass
class SecurityCell:
    """One cell of the security matrix: a compact view of a scenario result."""

    server: str
    policy: str
    boot_outcome: RequestOutcome
    attack_outcome: Optional[RequestOutcome]
    continued_service: bool
    memory_errors_logged: int


def run_attack_scenario(
    server_name: str,
    policy_name: str,
    scale: float = 0.25,
) -> ScenarioResult:
    """Boot with the error trigger planted, attack, then issue follow-ups."""
    server = build_server(server_name, policy_name, plant_attack=True, scale=scale)
    boot = server.start()
    attack: Optional[RequestResult] = None
    follow_ups: List[RequestResult] = []
    if server.alive:
        attack = server.process(attack_request_for(server_name))
    if server.alive:
        for request in _follow_up_requests(server_name):
            follow_ups.append(server.process(request))
    return ScenarioResult(
        server=server_name,
        policy=policy_name,
        boot=boot,
        attack=attack,
        follow_ups=follow_ups,
    )


def run_security_matrix(
    servers: Optional[Sequence[str]] = None,
    policies: Sequence[str] = ("standard", "bounds-check", "failure-oblivious"),
    scale: float = 0.25,
) -> List[SecurityCell]:
    """Run the attack scenario for every (server, policy) combination."""
    cells: List[SecurityCell] = []
    for server_name in (servers if servers is not None else sorted(SERVER_CLASSES)):
        for policy_name in policies:
            scenario = run_attack_scenario(server_name, policy_name, scale=scale)
            total_errors = (
                len(scenario.boot.memory_errors)
                + (len(scenario.attack.memory_errors) if scenario.attack else 0)
                + sum(len(result.memory_errors) for result in scenario.follow_ups)
            )
            cells.append(
                SecurityCell(
                    server=server_name,
                    policy=policy_name,
                    boot_outcome=scenario.boot.outcome,
                    attack_outcome=scenario.attack.outcome if scenario.attack else None,
                    continued_service=scenario.continued_service,
                    memory_errors_logged=total_errors,
                )
            )
    return cells
