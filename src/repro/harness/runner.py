"""Backwards-compatible entry points over the experiment engine.

The experiment shapes live in :mod:`repro.harness.engine` (see
:class:`~repro.harness.engine.ExperimentEngine` and
:class:`~repro.harness.engine.ScenarioSpec`); server specifics live in the
:class:`~repro.servers.profile.ServerProfile` registry.  This module keeps
the original function signatures working as thin shims so existing callers
(tests, benchmarks, examples, downstream scripts) need no changes:

* :func:`run_performance_figure` — the benign-workload timing experiments of
  Figures 2-6.
* :func:`run_security_matrix` / :func:`run_attack_scenario` — the
  security-and-resilience experiments of §4.2.2-§4.6.2.
* :func:`build_server` / :func:`benchmark_config` — server construction under
  a named policy with the profile's benchmark configuration.

New code should prefer the engine API directly::

    from repro.harness.engine import ENGINE, ScenarioSpec
    rows = ENGINE.run(ScenarioSpec(server="pine", workload="performance"))
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.engine import (
    ENGINE,
    FigureRow,
    ScenarioResult,
    ScenarioSpec,
    SecurityCell,
)
from repro.servers import SERVER_CLASSES
from repro.servers.base import Request, Server
from repro.servers.profile import get_profile

__all__ = [
    "FIGURE_NUMBERS",
    "FigureRow",
    "ScenarioResult",
    "SecurityCell",
    "benchmark_config",
    "build_server",
    "run_attack_scenario",
    "run_performance_figure",
    "run_security_matrix",
]

#: Paper figure number for each server's request-time table (from the profiles).
FIGURE_NUMBERS = {
    name: get_profile(name).figure_number for name in SERVER_CLASSES
}


def benchmark_config(server_name: str, scale: float = 1.0) -> Dict[str, object]:
    """A benign configuration sized for repeated benchmark requests.

    ``scale`` scales the data volumes (directory sizes, file sizes) relative
    to the defaults; the paper's absolute sizes (a 31 MByte directory, an
    830 KByte download) can be requested with a larger scale at the cost of
    longer runs.
    """
    return get_profile(server_name).build_config(scale)


def build_server(
    server_name: str,
    policy_name: str,
    config: Optional[Dict[str, object]] = None,
    plant_attack: bool = False,
    scale: float = 1.0,
) -> Server:
    """Construct (but do not start) a server under the named policy.

    ``plant_attack`` merges in the configuration that plants the documented
    error trigger (poisoned mailbox, vulnerable rewrite rule, attack startup
    folder, ...).
    """
    return ENGINE.build_server(
        server_name, policy_name, config=config, plant_attack=plant_attack, scale=scale
    )


def _request_factory(server_name: str, kind: str) -> Callable[[int], Request]:
    """Deprecated shim: use ``get_profile(name).request_factory_for(kind)``."""
    return get_profile(server_name).request_factory_for(kind)


def _reset_hook(server_name: str, kind: str) -> Optional[Callable[[Server, int], None]]:
    """Deprecated shim: use ``get_profile(name).reset_hook_for(kind)``."""
    return get_profile(server_name).reset_hook_for(kind)


def _follow_up_requests(server_name: str) -> List[Request]:
    """Deprecated shim: use ``get_profile(name).make_follow_ups()``."""
    follow_ups = get_profile(server_name).make_follow_ups()
    if not follow_ups:
        raise KeyError(f"no follow-up requests defined for {server_name!r}")
    return follow_ups


def run_performance_figure(
    server_name: str,
    repetitions: int = 20,
    scale: float = 1.0,
    baseline_policy: str = "standard",
    treatment_policy: str = "failure-oblivious",
    kinds: Optional[Sequence[str]] = None,
) -> List[FigureRow]:
    """Regenerate one of Figures 2-6 for ``server_name`` (engine shim)."""
    return ENGINE.run(
        ScenarioSpec(
            server=server_name,
            policy=treatment_policy,
            workload="performance",
            scale=scale,
            baseline_policy=baseline_policy,
            kinds=tuple(kinds) if kinds is not None else None,
            repetitions=repetitions,
        )
    )


def run_attack_scenario(
    server_name: str,
    policy_name: str,
    scale: float = 0.25,
) -> ScenarioResult:
    """Boot with the error trigger planted, attack, then issue follow-ups."""
    return ENGINE.run(
        ScenarioSpec(server=server_name, policy=policy_name, workload="attack", scale=scale)
    )


def run_security_matrix(
    servers: Optional[Sequence[str]] = None,
    policies: Sequence[str] = ("standard", "bounds-check", "failure-oblivious"),
    scale: float = 0.25,
) -> List[SecurityCell]:
    """Run the attack scenario for every (server, policy) combination."""
    return ENGINE.run_security_matrix(servers=servers, policies=policies, scale=scale)
