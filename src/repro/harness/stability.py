"""Stability experiments: long mixed workloads with periodic attack injection.

The paper's stability sections (§4.2.4, §4.3.4, §4.4.4, §4.5.4, §4.6.4) deploy
the failure-oblivious build of each server into daily use, periodically feed
it the attack input, and check that it keeps performing all requests
flawlessly.  They also read the memory-error log to observe benign errors
(Sendmail's wake-up error, Midnight Commander's blank-configuration-line
error).

:func:`run_stability_experiment` reproduces the shape of those experiments: a
long, seeded, mostly-legitimate request stream with attacks injected every N
requests, run under a chosen build, reporting how many legitimate requests
were served, whether the server ever went down, how often it had to be
restarted, and what the error log recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import FATAL_OUTCOMES, RequestOutcome
from repro.harness.engine import ENGINE
from repro.servers.base import Server
from repro.telemetry.events import RequestEnd
from repro.telemetry.sinks import Sink
from repro.workloads.streams import RequestStream, mixed_stream

#: Outcome strings carried by RequestEnd events after which the process is gone.
_FATAL_VALUES = frozenset(outcome.value for outcome in FATAL_OUTCOMES)


class WorkloadTallySink(Sink):
    """Aggregate the stability statistics from the server's event stream.

    Consumes :class:`~repro.telemetry.events.RequestEnd` events only, skipping
    startup traces (``__startup__``) so that restart boots mid-run do not
    perturb the workload statistics — the same scoping the pre-telemetry
    hand-rolled tallies had.  Attach it after session setup, run the workload,
    then read the totals.
    """

    def __init__(self) -> None:
        self.legitimate_served = 0
        self.legitimate_failed = 0
        self.attacks_survived = 0
        self.server_deaths = 0
        self.memory_errors = 0
        self.error_sites: Dict[str, int] = {}

    def emit(self, event: object) -> None:
        if not isinstance(event, RequestEnd) or event.kind == "__startup__":
            return
        self.memory_errors += event.memory_errors
        for site, count in event.error_sites:
            self.error_sites[site] = self.error_sites.get(site, 0) + count
        fatal = event.outcome in _FATAL_VALUES
        if fatal:
            self.server_deaths += 1
        if event.is_attack:
            if not fatal:
                self.attacks_survived += 1
        elif event.outcome == RequestOutcome.SERVED.value:
            self.legitimate_served += 1
        else:
            self.legitimate_failed += 1


@dataclass
class StabilityResult:
    """Summary of one long-running stability experiment."""

    server: str
    policy: str
    total_requests: int
    attack_requests: int
    legitimate_requests: int
    legitimate_served: int
    legitimate_failed: int
    attacks_survived: int
    server_deaths: int
    restarts: int
    memory_errors_logged: int
    error_sites: Dict[str, int] = field(default_factory=dict)

    @property
    def legitimate_service_rate(self) -> float:
        """Fraction of legitimate requests served successfully (availability)."""
        if self.legitimate_requests == 0:
            return 0.0
        return self.legitimate_served / self.legitimate_requests

    @property
    def flawless(self) -> bool:
        """The paper's criterion: every legitimate request served, no downtime."""
        return self.server_deaths == 0 and self.legitimate_failed == 0


def run_stability_experiment(
    server_name: str,
    policy_name: str,
    total_requests: int = 200,
    attack_every: int = 25,
    restart_on_death: bool = True,
    seed: int = 20040101,
    scale: float = 0.25,
    stream: Optional[RequestStream] = None,
    config: Optional[Dict[str, object]] = None,
) -> StabilityResult:
    """Run a long mixed workload against one build of one server.

    ``restart_on_death`` models the obvious operational response for the
    Standard and Bounds Check builds (a monitor that restarts the server);
    the failure-oblivious build should never need it.  ``config`` entries are
    merged over the benchmark and attack configuration, as everywhere else.
    """
    workload = stream if stream is not None else mixed_stream(
        server_name, total_requests=total_requests, attack_every=attack_every, seed=seed
    )
    server: Server = ENGINE.build_server(
        server_name, policy_name, config=config, plant_attack=True, scale=scale
    )
    boot = server.start()
    server_deaths = 1 if boot.fatal else 0
    restarts = 0
    if boot.fatal and restart_on_death:
        # A restart with the same environment hits the same startup error for
        # Pine/Mutt (the trigger persists in the mailbox/configuration), which
        # is exactly the paper's point about restart-based recovery; we retry
        # once to model the monitor and then give up.
        server.restart()
        restarts += 1
        if not server.alive:
            server_deaths += 1

    # Session setup: bring the user interface back to a normal working state
    # (e.g. Mutt re-opens the INBOX after the startup folder was rejected).
    # These requests are not counted in the workload statistics.
    if server.alive:
        for setup_request in ENGINE.profile(server_name).make_follow_ups():
            server.process(setup_request)

    # Every workload statistic below is aggregated from the server's event
    # stream; the loop only drives requests and models the restart monitor.
    tally = server.add_telemetry_sink(WorkloadTallySink())
    unserved_while_down = 0

    for request in workload:
        if not server.alive:
            if restart_on_death:
                server.restart()
                restarts += 1
                if not server.alive:
                    # A restart that dies during boot is a server death, the
                    # same as a failed boot-time restart above; previously
                    # only the boot path counted it.
                    server_deaths += 1
            if not server.alive:
                if not request.is_attack:
                    unserved_while_down += 1
                continue
        server.process(request)

    return StabilityResult(
        server=server_name,
        policy=policy_name,
        total_requests=len(workload),
        attack_requests=workload.attack_count,
        legitimate_requests=workload.legitimate_count,
        legitimate_served=tally.legitimate_served,
        legitimate_failed=tally.legitimate_failed + unserved_while_down,
        attacks_survived=tally.attacks_survived,
        server_deaths=server_deaths + tally.server_deaths,
        restarts=restarts,
        memory_errors_logged=tally.memory_errors,
        error_sites=tally.error_sites,
    )
