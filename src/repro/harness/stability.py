"""Stability experiments: long mixed workloads with periodic attack injection.

The paper's stability sections (§4.2.4, §4.3.4, §4.4.4, §4.5.4, §4.6.4) deploy
the failure-oblivious build of each server into daily use, periodically feed
it the attack input, and check that it keeps performing all requests
flawlessly.  They also read the memory-error log to observe benign errors
(Sendmail's wake-up error, Midnight Commander's blank-configuration-line
error).

:func:`run_stability_experiment` reproduces the shape of those experiments: a
long, seeded, mostly-legitimate request stream with attacks injected every N
requests, run under a chosen build, reporting how many legitimate requests
were served, whether the server ever went down, how often it had to be
restarted, and what the error log recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RequestOutcome
from repro.harness.engine import ENGINE
from repro.servers.base import Server
from repro.workloads.streams import RequestStream, mixed_stream


@dataclass
class StabilityResult:
    """Summary of one long-running stability experiment."""

    server: str
    policy: str
    total_requests: int
    attack_requests: int
    legitimate_requests: int
    legitimate_served: int
    legitimate_failed: int
    attacks_survived: int
    server_deaths: int
    restarts: int
    memory_errors_logged: int
    error_sites: Dict[str, int] = field(default_factory=dict)

    @property
    def legitimate_service_rate(self) -> float:
        """Fraction of legitimate requests served successfully (availability)."""
        if self.legitimate_requests == 0:
            return 0.0
        return self.legitimate_served / self.legitimate_requests

    @property
    def flawless(self) -> bool:
        """The paper's criterion: every legitimate request served, no downtime."""
        return self.server_deaths == 0 and self.legitimate_failed == 0


def run_stability_experiment(
    server_name: str,
    policy_name: str,
    total_requests: int = 200,
    attack_every: int = 25,
    restart_on_death: bool = True,
    seed: int = 20040101,
    scale: float = 0.25,
    stream: Optional[RequestStream] = None,
    config: Optional[Dict[str, object]] = None,
) -> StabilityResult:
    """Run a long mixed workload against one build of one server.

    ``restart_on_death`` models the obvious operational response for the
    Standard and Bounds Check builds (a monitor that restarts the server);
    the failure-oblivious build should never need it.  ``config`` entries are
    merged over the benchmark and attack configuration, as everywhere else.
    """
    workload = stream if stream is not None else mixed_stream(
        server_name, total_requests=total_requests, attack_every=attack_every, seed=seed
    )
    server: Server = ENGINE.build_server(
        server_name, policy_name, config=config, plant_attack=True, scale=scale
    )
    boot = server.start()
    server_deaths = 1 if boot.fatal else 0
    restarts = 0
    if boot.fatal and restart_on_death:
        # A restart with the same environment hits the same startup error for
        # Pine/Mutt (the trigger persists in the mailbox/configuration), which
        # is exactly the paper's point about restart-based recovery; we retry
        # once to model the monitor and then give up.
        server.restart()
        restarts += 1
        if not server.alive:
            server_deaths += 1

    # Session setup: bring the user interface back to a normal working state
    # (e.g. Mutt re-opens the INBOX after the startup folder was rejected).
    # These requests are not counted in the workload statistics.
    if server.alive:
        for setup_request in ENGINE.profile(server_name).make_follow_ups():
            server.process(setup_request)

    legitimate_served = 0
    legitimate_failed = 0
    attacks_survived = 0
    memory_errors = 0
    error_sites: Dict[str, int] = {}

    for request in workload:
        if not server.alive:
            if restart_on_death:
                server.restart()
                restarts += 1
            if not server.alive:
                if not request.is_attack:
                    legitimate_failed += 1
                continue
        result = server.process(request)
        memory_errors += len(result.memory_errors)
        for event in result.memory_errors:
            error_sites[event.site] = error_sites.get(event.site, 0) + 1
        if result.fatal:
            server_deaths += 1
        if request.is_attack:
            if not result.fatal:
                attacks_survived += 1
        else:
            if result.outcome is RequestOutcome.SERVED:
                legitimate_served += 1
            else:
                legitimate_failed += 1

    return StabilityResult(
        server=server_name,
        policy=policy_name,
        total_requests=len(workload),
        attack_requests=workload.attack_count,
        legitimate_requests=workload.legitimate_count,
        legitimate_served=legitimate_served,
        legitimate_failed=legitimate_failed,
        attacks_survived=attacks_survived,
        server_deaths=server_deaths,
        restarts=restarts,
        memory_errors_logged=memory_errors,
        error_sites=error_sites,
    )
