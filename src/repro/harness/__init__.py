"""Experiment harness: everything needed to regenerate the paper's evaluation.

* :mod:`repro.harness.engine` — the experiment engine: declarative
  :class:`~repro.harness.engine.ScenarioSpec` runs against registered
  :class:`~repro.servers.profile.ServerProfile`\\ s.
* :mod:`repro.harness.timing` — request-time measurement (means, standard
  deviations, slowdowns) in the style of Figures 2-6.
* :mod:`repro.harness.runner` — backwards-compatible shims over the engine
  (``run_performance_figure``, ``run_attack_scenario``, ...).
* :mod:`repro.harness.throughput` — the Apache throughput-under-attack
  experiment (§4.3.2).
* :mod:`repro.harness.stability` — long mixed-workload runs with periodic
  attack injection (the §4.x.4 stability sections).
* :mod:`repro.harness.report` — plain-text tables shaped like the paper's
  figures.
* :mod:`repro.harness.experiments` — the experiment registry keyed by the ids
  used in DESIGN.md and EXPERIMENTS.md (``fig2`` ... ``exp-propagation``).
"""

from repro.harness.timing import TimingResult, measure_request_time, slowdown
from repro.harness.engine import (
    ENGINE,
    ExperimentEngine,
    FigureRow,
    ScenarioResult,
    ScenarioSpec,
    SecurityCell,
)
from repro.harness.runner import (
    build_server,
    run_attack_scenario,
    run_performance_figure,
    run_security_matrix,
)
from repro.harness.report import format_figure_table, format_security_matrix
from repro.harness.throughput import ThroughputResult, run_throughput_experiment
from repro.harness.stability import StabilityResult, run_stability_experiment
from repro.harness.experiments import EXPERIMENTS, register_experiment, run_experiment

__all__ = [
    "TimingResult",
    "measure_request_time",
    "slowdown",
    "ENGINE",
    "ExperimentEngine",
    "ScenarioSpec",
    "ScenarioResult",
    "FigureRow",
    "SecurityCell",
    "build_server",
    "run_attack_scenario",
    "run_performance_figure",
    "run_security_matrix",
    "format_figure_table",
    "format_security_matrix",
    "ThroughputResult",
    "run_throughput_experiment",
    "StabilityResult",
    "run_stability_experiment",
    "EXPERIMENTS",
    "register_experiment",
    "run_experiment",
]
