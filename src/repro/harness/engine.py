"""The experiment engine: runs any (profile, policy, workload) combination.

This module is the declarative facade the rest of the harness is built on.
A :class:`ScenarioSpec` names *what* to run — a registered
:class:`~repro.servers.profile.ServerProfile`, a build policy, a workload
shape, and sizing knobs — and :class:`ExperimentEngine` knows *how* to run
every workload shape against any profile:

``performance``
    The benign request-time measurement of Figures 2-6: each of the profile's
    figure rows measured under a baseline build and a treatment build, with
    the slowdown ratio.
``attack``
    The security/resilience scenario of §4.2.2-§4.6.2: boot with the
    documented error trigger planted, deliver the attack, then check that
    legitimate follow-up requests are still served.
``stability``
    A long mixed workload with periodic attack injection (§4.x.4).
``throughput``
    The Apache-style throughput-under-attack experiment (§4.3.2).
``soak``
    A restart-heavy sharded soak: the stream is chunked deterministically,
    every chunk runs against a clone of one post-boot process image, and the
    chunks fan out over the fork pool (see :mod:`repro.harness.soak`).

New servers participate in every shape by registering a profile (zero engine
edits); new workload shapes plug in with
:meth:`ExperimentEngine.register_workload`.  The module-level :data:`ENGINE`
is the default engine used by the shims in :mod:`repro.harness.runner` and by
the experiment registry.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.policies import POLICY_NAMES
from repro.errors import RequestOutcome, RequestResult
from repro.harness.timing import TimingResult, measure_paired, slowdown, wall_clock
from repro.servers.base import Server
from repro.servers.profile import PROFILES, ServerProfile, get_profile
from repro.telemetry.events import ScenarioEnd, ScenarioStart
from repro.telemetry.session import current_session

__all__ = [
    "ScenarioSpec",
    "ExperimentEngine",
    "FigureRow",
    "ScenarioResult",
    "SecurityCell",
    "ENGINE",
]


# The engine running specs inside pool workers.  Workers are forked, so setting
# this immediately before creating the pool makes the *submitting* engine —
# including any profiles and workload shapes registered on it at runtime —
# visible in every worker without pickling the engine itself.
_POOL_ENGINE: Optional["ExperimentEngine"] = None


def _pool_run_spec(indexed_spec: "Tuple[int, ScenarioSpec]") -> Tuple[object, float]:
    """Run one spec in a pool worker, returning (result, wall-clock seconds).

    The spec index rides along as the scenario id so that telemetry exported
    from different workers merges back in spec order.
    """
    engine = _POOL_ENGINE if _POOL_ENGINE is not None else ENGINE
    index, spec = indexed_spec
    return _pool_run_spec_serial(engine, spec, scenario_id=index)


def _pool_run_spec_serial(
    engine: "ExperimentEngine", spec: "ScenarioSpec", scenario_id: Optional[int] = None
) -> Tuple[object, float]:
    """Run one spec in-process, returning (result, wall-clock seconds)."""
    started = wall_clock()
    result = engine.run(spec, scenario_id=scenario_id)
    return result, wall_clock() - started


# ---------------------------------------------------------------------------
# Scenario specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative description of one experiment run.

    Only ``server`` is mandatory.  The defaults are those of the performance
    figures (full-size workload, twenty repetitions, Standard vs Failure
    Oblivious); the attack-shaped experiments conventionally pass
    ``scale=0.25`` as the shims in :mod:`repro.harness.runner` do.  ``params``
    carries workload-specific knobs (e.g. ``total_requests`` for the
    stability shape) so new workload shapes do not require new spec fields.
    """

    #: Registered profile name (e.g. ``"pine"``).
    server: str
    #: Treatment build for the run (the paper's contribution by default).
    policy: str = "failure-oblivious"
    #: Workload shape; a key of the engine's workload registry.
    workload: str = "performance"
    #: Workload scale factor (data volumes relative to the defaults).
    scale: float = 1.0
    #: Baseline build the performance shape compares against.
    baseline_policy: str = "standard"
    #: Figure rows to measure (None means all of the profile's rows).
    kinds: Optional[Tuple[str, ...]] = None
    #: Measured repetitions per figure cell (the paper uses at least twenty).
    repetitions: int = 20
    #: Extra configuration merged over the profile's benchmark configuration.
    config: Optional[Mapping[str, object]] = None
    #: Workload-specific keyword arguments.
    params: Mapping[str, object] = field(default_factory=dict)

    def with_(self, **changes: object) -> "ScenarioSpec":
        """A copy of the spec with the given fields replaced."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Result shapes
# ---------------------------------------------------------------------------


@dataclass
class FigureRow:
    """One row of a request-time figure: a request kind under two builds."""

    server: str
    request_kind: str
    baseline: TimingResult
    failure_oblivious: TimingResult

    @property
    def slowdown(self) -> float:
        """Failure-oblivious time divided by baseline time (the paper's column)."""
        return slowdown(self.baseline, self.failure_oblivious)


@dataclass
class ScenarioResult:
    """Outcome of one attack scenario (one server under one policy)."""

    server: str
    policy: str
    boot: RequestResult
    attack: Optional[RequestResult]
    follow_ups: List[RequestResult] = field(default_factory=list)

    @property
    def survived_attack(self) -> bool:
        """True if the server was still alive after boot and the attack."""
        if self.boot.fatal:
            return False
        return self.attack is None or not self.attack.fatal

    @property
    def continued_service(self) -> bool:
        """True if every legitimate follow-up request was served successfully."""
        return bool(self.follow_ups) and all(
            result.outcome is RequestOutcome.SERVED for result in self.follow_ups
        )

    @property
    def vulnerable(self) -> bool:
        """True if the attack crashed, exploited, or hung the server."""
        outcomes = [self.boot.outcome]
        if self.attack is not None:
            outcomes.append(self.attack.outcome)
        return any(
            outcome in (RequestOutcome.CRASHED, RequestOutcome.EXPLOITED, RequestOutcome.HUNG)
            for outcome in outcomes
        )

    @property
    def memory_errors_logged(self) -> int:
        """Memory errors recorded across boot, attack, and follow-ups."""
        total = len(self.boot.memory_errors)
        if self.attack is not None:
            total += len(self.attack.memory_errors)
        return total + sum(len(result.memory_errors) for result in self.follow_ups)


@dataclass
class SecurityCell:
    """One cell of the security matrix: a compact view of a scenario result."""

    server: str
    policy: str
    boot_outcome: RequestOutcome
    attack_outcome: Optional[RequestOutcome]
    continued_service: bool
    memory_errors_logged: int

    @classmethod
    def from_scenario(cls, scenario: ScenarioResult) -> "SecurityCell":
        """Condense a full scenario result into a matrix cell."""
        return cls(
            server=scenario.server,
            policy=scenario.policy,
            boot_outcome=scenario.boot.outcome,
            attack_outcome=scenario.attack.outcome if scenario.attack else None,
            continued_service=scenario.continued_service,
            memory_errors_logged=scenario.memory_errors_logged,
        )


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

#: A workload runner: takes the engine and a spec, returns the shape's result.
WorkloadRunner = Callable[["ExperimentEngine", ScenarioSpec], object]


class ExperimentEngine:
    """Runs declarative :class:`ScenarioSpec`\\ s against registered profiles.

    The engine holds no per-server knowledge: everything server-specific comes
    from the :class:`~repro.servers.profile.ServerProfile` registry, so a new
    server participates in every workload shape the moment its profile is
    registered.
    """

    def __init__(self, profiles: Optional[Mapping[str, ServerProfile]] = None) -> None:
        #: None means "the live global registry", so profiles registered after
        #: engine construction are still visible.
        self._profiles = profiles
        self._workloads: Dict[str, WorkloadRunner] = {
            "performance": ExperimentEngine._run_performance,
            "attack": ExperimentEngine._run_attack,
            "stability": ExperimentEngine._run_stability,
            "throughput": ExperimentEngine._run_throughput,
            "soak": ExperimentEngine._run_soak,
        }

    # -- registry access -----------------------------------------------------------

    def profile(self, server_name: str) -> ServerProfile:
        """Look up a profile by name (KeyError with the known names otherwise)."""
        if self._profiles is None:
            return get_profile(server_name)
        try:
            return self._profiles[server_name]
        except KeyError:
            raise KeyError(
                f"unknown server {server_name!r}; expected one of {sorted(self._profiles)}"
            ) from None

    def profile_names(self) -> List[str]:
        """Sorted names of the profiles this engine can run."""
        return sorted(self._profiles if self._profiles is not None else PROFILES)

    def workload_names(self) -> List[str]:
        """Sorted names of the registered workload shapes."""
        return sorted(self._workloads)

    def register_workload(self, name: str, runner: WorkloadRunner) -> None:
        """Register a new workload shape (``runner(engine, spec) -> result``)."""
        self._workloads[name] = runner

    # -- server construction -------------------------------------------------------

    def build_server(
        self,
        server_name: str,
        policy_name: str,
        config: Optional[Mapping[str, object]] = None,
        plant_attack: bool = False,
        scale: float = 1.0,
    ) -> Server:
        """Construct (but do not start) a server under the named policy.

        ``plant_attack`` merges in the profile's attack configuration (the
        poisoned mailbox, the vulnerable rewrite rule, ...); ``config`` is
        merged last so explicit overrides always win.
        """
        profile = self.profile(server_name)
        if policy_name not in POLICY_NAMES:
            raise KeyError(
                f"unknown policy {policy_name!r}; expected one of {sorted(POLICY_NAMES)}"
            )
        merged: Dict[str, object] = profile.build_config(scale)
        if plant_attack:
            merged.update(profile.make_attack_config())
        if config:
            merged.update(config)
        policy_cls = POLICY_NAMES[policy_name]
        return profile.server_cls(policy_cls, config=merged)

    # -- dispatch ------------------------------------------------------------------

    def run(self, spec: ScenarioSpec, scenario_id: Optional[int] = None) -> object:
        """Run one scenario, dispatching on its workload shape.

        When a telemetry session is active the run is bracketed with
        :class:`~repro.telemetry.events.ScenarioStart` /
        :class:`~repro.telemetry.events.ScenarioEnd` events and every event
        emitted in between is stamped with the scenario id (``scenario_id``
        when given — ``run_many`` passes the spec index — otherwise assigned
        by the session).
        """
        try:
            runner = self._workloads[spec.workload]
        except KeyError:
            raise KeyError(
                f"unknown workload {spec.workload!r}; expected one of {sorted(self._workloads)}"
            ) from None
        session = current_session()
        if session is None:
            return runner(self, spec)
        sid = session.begin_scenario(scenario_id)
        session.write(
            ScenarioStart(scenario_id=sid, server=spec.server, policy=spec.policy,
                          workload=spec.workload, scale=spec.scale)
        )
        started = wall_clock()
        try:
            return runner(self, spec)
        finally:
            session.write(ScenarioEnd(scenario_id=sid, seconds=wall_clock() - started))
            session.end_scenario()

    def run_many(
        self,
        specs: Sequence[ScenarioSpec],
        workers: Optional[int] = None,
        timed: bool = False,
    ) -> List[object]:
        """Run several scenarios, optionally fanned out over worker processes.

        ``ExperimentEngine.run`` is a pure function of its spec (every run
        builds fresh servers and a fresh substrate), so specs can execute in
        any order and in separate processes without observable differences:
        results come back in spec order and are identical to the serial path
        apart from wall-clock timings.

        Parameters
        ----------
        specs:
            The scenarios to run.
        workers:
            Process count.  ``None``, 0, or 1 runs serially in-process; higher
            values use a forked process pool (falling back to serial where
            fork is unavailable, e.g. on Windows).
        timed:
            If True, return ``(result, seconds)`` pairs instead of bare
            results, where ``seconds`` is the per-spec wall clock measured
            inside the worker.
        """
        global _POOL_ENGINE
        specs = list(specs)
        count = 0 if workers is None else int(workers)
        pairs: List[Tuple[object, float]] = []
        if count > 1 and len(specs) > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = None
            if context is not None:
                _POOL_ENGINE = self
                try:
                    with ProcessPoolExecutor(
                        max_workers=min(count, len(specs)), mp_context=context
                    ) as pool:
                        pairs = list(pool.map(_pool_run_spec, enumerate(specs)))
                finally:
                    _POOL_ENGINE = None
        if not pairs:
            pairs = [
                _pool_run_spec_serial(self, spec, scenario_id=index)
                for index, spec in enumerate(specs)
            ]
        if timed:
            return pairs
        return [result for result, _seconds in pairs]

    # -- workload shapes -----------------------------------------------------------

    def _run_performance(self, spec: ScenarioSpec) -> List[FigureRow]:
        """The request-time measurement of Figures 2-6.

        A fresh server is built and started for every (request kind, policy)
        cell so that no state leaks between measurements, mirroring the
        paper's per-request instrumentation; every server is stopped once its
        cell is measured.
        """
        profile = self.profile(spec.server)
        rows: List[FigureRow] = []
        row_kinds = list(spec.kinds) if spec.kinds is not None else list(profile.figure_rows)
        # Whole-process warm-up: run a few requests once so that neither
        # build's first measured cell pays one-time interpreter and allocator
        # start-up costs (the analogue of the paper measuring steady-state
        # servers).
        warm_server = self.build_server(spec.server, spec.baseline_policy,
                                        config=spec.config, scale=spec.scale)
        try:
            if not warm_server.start().fatal and row_kinds:
                warm_factory = profile.request_factory_for(row_kinds[0])
                warm_reset = profile.reset_hook_for(row_kinds[0])
                for warm_index in range(3):
                    if warm_reset is not None:
                        warm_reset(warm_server, warm_index)
                    warm_server.process(warm_factory(warm_index))
        finally:
            warm_server.stop()
        for kind in row_kinds:
            servers: Dict[str, Server] = {}
            try:
                for policy_name in (spec.baseline_policy, spec.policy):
                    server = self.build_server(spec.server, policy_name,
                                               config=spec.config, scale=spec.scale)
                    boot = server.start()
                    if not boot.fatal:
                        servers[policy_name] = server
                timings = measure_paired(
                    servers,
                    profile.request_factory_for(kind),
                    repetitions=spec.repetitions,
                    reset=profile.reset_hook_for(kind),
                    label=kind,
                )
            finally:
                for server in servers.values():
                    server.stop()
            for policy_name in (spec.baseline_policy, spec.policy):
                if policy_name not in timings:
                    timings[policy_name] = TimingResult(
                        label=f"{kind} ({policy_name}: failed to boot)"
                    )
            rows.append(
                FigureRow(
                    server=spec.server,
                    request_kind=kind,
                    baseline=timings[spec.baseline_policy],
                    failure_oblivious=timings[spec.policy],
                )
            )
        return rows

    def _run_attack(self, spec: ScenarioSpec) -> ScenarioResult:
        """Boot with the error trigger planted, attack, then issue follow-ups."""
        profile = self.profile(spec.server)
        server = self.build_server(spec.server, spec.policy, config=spec.config,
                                   plant_attack=True, scale=spec.scale)
        try:
            boot = server.start()
            attack: Optional[RequestResult] = None
            follow_ups: List[RequestResult] = []
            if server.alive:
                attack = server.process(profile.make_attack_request())
            if server.alive:
                for request in profile.make_follow_ups():
                    follow_ups.append(server.process(request))
        finally:
            server.stop()
        return ScenarioResult(
            server=spec.server,
            policy=spec.policy,
            boot=boot,
            attack=attack,
            follow_ups=follow_ups,
        )

    def _run_stability(self, spec: ScenarioSpec) -> object:
        """Long mixed workload with periodic attacks (§4.x.4)."""
        from repro.harness.stability import run_stability_experiment

        return run_stability_experiment(
            spec.server, spec.policy, scale=spec.scale, config=spec.config,
            **dict(spec.params)
        )

    def _run_soak(self, spec: ScenarioSpec) -> object:
        """Sharded in-scenario soak: boot once, fan stream chunks over workers.

        The long mixed stream is split into deterministic chunks; every chunk
        runs against a clone of the same post-boot process image, serially or
        over the fork pool (``params["workers"]``), with identical tallies
        either way.  See :mod:`repro.harness.soak`.
        """
        from repro.harness.soak import run_soak_experiment

        return run_soak_experiment(
            spec.server, spec.policy, scale=spec.scale, config=spec.config,
            **dict(spec.params)
        )

    def _run_throughput(self, spec: ScenarioSpec) -> object:
        """Throughput of legitimate requests while under attack (§4.3.2).

        This shape is tied to Apache's pre-fork child pool, so it refuses any
        other server rather than silently mislabelling Apache numbers.
        """
        from repro.harness.throughput import run_throughput_experiment

        if spec.server != "apache":
            raise ValueError(
                f"the throughput workload models Apache's pre-fork child pool "
                f"and cannot run against {spec.server!r}"
            )
        return run_throughput_experiment(policies=(spec.policy,), **dict(spec.params))

    # -- sweeps --------------------------------------------------------------------

    def run_security_matrix(
        self,
        servers: Optional[Sequence[str]] = None,
        policies: Sequence[str] = ("standard", "bounds-check", "failure-oblivious"),
        scale: float = 0.25,
        workers: Optional[int] = None,
    ) -> List[SecurityCell]:
        """Run the attack scenario for every (server, policy) combination.

        ``servers`` defaults to the paper's five (the stable
        ``SERVER_CLASSES`` scope) so that third-party profiles registered for
        other purposes do not silently widen the paper's matrix.  With
        ``workers > 1`` the (server, policy) cells fan out over a process
        pool, one process per cell.
        """
        if servers is None:
            from repro.servers import SERVER_CLASSES

            servers = sorted(SERVER_CLASSES)
        specs = [
            ScenarioSpec(server=server_name, policy=policy_name,
                         workload="attack", scale=scale)
            for server_name in servers
            for policy_name in policies
        ]
        scenarios = self.run_many(specs, workers=workers)
        return [SecurityCell.from_scenario(scenario) for scenario in scenarios]


#: Default engine over the live global profile registry.
ENGINE = ExperimentEngine()
