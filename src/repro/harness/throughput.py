"""The Apache throughput-under-attack experiment (§4.3.2).

The paper loads Apache with requests that trigger the rewrite overflow while a
separate client repeatedly fetches the project home page, and measures the
throughput seen by that client.  Because the Bounds Check (and Standard)
children die on every attack request, the pre-fork pool spends its time
killing and re-forking children, and legitimate throughput collapses:

    "the Failure Oblivious version provides a throughput roughly 5.7 times
    more than the Bounds Check version provides (the insecure Standard
    version provides a throughput roughly 4.8 times less than the Failure
    Oblivious version)"

:func:`run_throughput_experiment` reproduces the setup against the simulated
child pool and reports legitimate requests served per second of simulated
service time (request handling plus any child restart work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.policies import POLICY_NAMES
from repro.errors import RequestOutcome
from repro.servers.apache import ChildProcessPool
from repro.workloads.attacks import apache_vulnerable_config
from repro.workloads.streams import RequestStream, throughput_stream


@dataclass
class ThroughputResult:
    """Throughput of legitimate requests for one build variant."""

    policy: str
    legitimate_served: int
    legitimate_requests: int
    attack_requests: int
    child_deaths: int
    service_seconds: float
    restart_seconds: float

    @property
    def total_seconds(self) -> float:
        """Request service time plus child restart time."""
        return self.service_seconds + self.restart_seconds

    @property
    def throughput_rps(self) -> float:
        """Legitimate requests served per second of total service time."""
        if self.total_seconds <= 0:
            return 0.0
        return self.legitimate_served / self.total_seconds


def run_throughput_experiment(
    policies: Sequence[str] = ("standard", "bounds-check", "failure-oblivious"),
    attack_fraction: float = 0.6,
    total_requests: int = 300,
    pool_size: int = 4,
    seed: int = 20040102,
    stream: Optional[RequestStream] = None,
) -> Dict[str, ThroughputResult]:
    """Measure legitimate-request throughput for each build while under attack."""
    results: Dict[str, ThroughputResult] = {}
    for policy_name in policies:
        if policy_name not in POLICY_NAMES:
            raise KeyError(f"unknown policy {policy_name!r}")
        workload = stream if stream is not None else throughput_stream(
            attack_fraction=attack_fraction, total_requests=total_requests, seed=seed
        )
        pool = ChildProcessPool(
            POLICY_NAMES[policy_name],
            pool_size=pool_size,
            config=apache_vulnerable_config(),
        )
        service_seconds = 0.0
        legitimate_served = 0
        try:
            for request in workload:
                result = pool.dispatch(request)
                service_seconds += result.elapsed_seconds
                if not request.is_attack and result.outcome is RequestOutcome.SERVED:
                    legitimate_served += 1
        finally:
            # The pool's template image lives in shared memory; release it
            # even when a dispatch raises, so no /dev/shm segment can leak.
            pool.close()
        results[policy_name] = ThroughputResult(
            policy=policy_name,
            legitimate_served=legitimate_served,
            legitimate_requests=workload.legitimate_count,
            attack_requests=workload.attack_count,
            child_deaths=pool.child_deaths,
            service_seconds=service_seconds,
            restart_seconds=pool.restart_seconds,
        )
    return results


def throughput_ratio(results: Dict[str, ThroughputResult], numerator: str, denominator: str) -> float:
    """Ratio of two builds' throughputs (e.g. failure-oblivious over bounds-check)."""
    num = results[numerator].throughput_rps
    den = results[denominator].throughput_rps
    if den == 0:
        return float("inf")
    return num / den
