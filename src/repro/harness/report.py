"""Plain-text tables shaped like the paper's figures.

The formatting mirrors the layout of Figures 2-6 (request, Standard time,
Failure Oblivious time, Slowdown) and adds a security matrix table summarizing
the §4.x.2 results.  The absolute times are from this reproduction's simulated
servers; the columns and the slowdown ratios are what should be compared with
the paper.

:func:`format_trace_summary` renders the aggregate view of an exported
telemetry stream (``repro trace summary``); it is the same table whether the
counts came from a live run's sinks or from re-reading a JSONL export.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import RequestOutcome
from repro.harness.runner import FigureRow, SecurityCell, FIGURE_NUMBERS
from repro.telemetry.summary import TraceSummary


def _format_cell(mean_ms: float, stdev_percent: float) -> str:
    if mean_ms != mean_ms:  # NaN: the build failed to boot or serve
        return "unavailable"
    # Two significant digits for the mean and whole percents for the spread:
    # run-to-run timer noise stays below this precision, so regenerated
    # tables only diff when a timing genuinely moved.
    return f"{mean_ms:9.2g} ms ± {stdev_percent:4.0f}%"


def format_figure_table(rows: Sequence[FigureRow], title: str = "") -> str:
    """Render one of Figures 2-6 as a text table."""
    if not rows:
        return "(no rows)"
    server = rows[0].server
    heading = title or (
        f"Figure {FIGURE_NUMBERS.get(server, '?')}: Request Processing Times for "
        f"{server} (reproduction)"
    )
    lines = [heading, ""]
    header = f"{'Request':<14} {'Standard':>22} {'Failure Oblivious':>22} {'Slowdown':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        ratio = row.slowdown
        ratio_text = f"{ratio:8.2f}" if ratio == ratio else "     n/a"
        lines.append(
            f"{row.request_kind:<14} "
            f"{_format_cell(row.baseline.mean_ms, row.baseline.stdev_percent):>22} "
            f"{_format_cell(row.failure_oblivious.mean_ms, row.failure_oblivious.stdev_percent):>22} "
            f"{ratio_text:>9}"
        )
    return "\n".join(lines)


_OUTCOME_LABELS = {
    RequestOutcome.SERVED: "served",
    RequestOutcome.REJECTED_BY_ERROR_HANDLING: "rejected (anticipated error)",
    RequestOutcome.CRASHED: "CRASHED",
    RequestOutcome.TERMINATED_BY_CHECK: "terminated by check",
    RequestOutcome.EXPLOITED: "EXPLOITED",
    RequestOutcome.HUNG: "HUNG",
    None: "-",
}


def format_security_matrix(cells: Iterable[SecurityCell], title: str = "") -> str:
    """Render the security/resilience matrix (§4.2.2-§4.6.2) as a text table."""
    heading = title or "Security and resilience: behaviour with the documented error trigger"
    lines = [heading, ""]
    header = (
        f"{'Server':<20} {'Build':<18} {'Boot':<28} {'Attack request':<28} "
        f"{'Keeps serving users':<20} {'Errors logged':>13}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in cells:
        lines.append(
            f"{cell.server:<20} {cell.policy:<18} "
            f"{_OUTCOME_LABELS.get(cell.boot_outcome, str(cell.boot_outcome)):<28} "
            f"{_OUTCOME_LABELS.get(cell.attack_outcome, str(cell.attack_outcome)):<28} "
            f"{'yes' if cell.continued_service else 'NO':<20} "
            f"{cell.memory_errors_logged:>13}"
        )
    return "\n".join(lines)


def format_simple_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a generic table (used by throughput / stability / ablation reports)."""
    widths: List[int] = [len(str(h)) for h in headers]
    text_rows: List[List[str]] = []
    for row in rows:
        text_row = [str(value) for value in row]
        text_rows.append(text_row)
        for i, value in enumerate(text_row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.extend([title, ""])
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for text_row in text_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(text_row)))
    return "\n".join(lines)


def format_trace_summary(summary: TraceSummary, title: str = "") -> str:
    """Render the aggregate view of one exported telemetry stream."""
    heading = title or "Telemetry trace summary"
    sections: List[str] = [heading, ""]
    overview_rows = [
        ("events", summary.total_events),
        ("scenarios", summary.scenarios),
        ("invalid accesses", summary.invalid_total),
        ("manufactured bytes", summary.manufactured_bytes),
        ("discarded bytes", summary.discarded_bytes),
        ("stored OOB bytes", summary.stored_bytes),
        ("redirected accesses", summary.redirected_accesses),
        ("allocations / frees", f"{summary.allocations} / {summary.frees}"),
        ("attack requests", summary.attack_requests),
    ]
    sections.append(format_simple_table(["measure", "value"], overview_rows))
    if summary.by_type:
        sections.append("")
        sections.append(format_simple_table(
            ["event type", "count"], sorted(summary.by_type.items()),
            title="Events by type",
        ))
    if summary.requests_by_outcome:
        sections.append("")
        sections.append(format_simple_table(
            ["outcome", "requests"], sorted(summary.requests_by_outcome.items()),
            title="Requests by outcome",
        ))
    if summary.invalid_by_site:
        sections.append("")
        sections.append(format_simple_table(
            ["site", "errors"], summary.invalid_by_site.most_common(10),
            title="Hottest error sites",
        ))
    if summary.servers:
        sections.append("")
        sections.append(format_simple_table(
            ["server", "events"], sorted(summary.servers.items()),
            title="Events by server",
        ))
    if summary.policies:
        sections.append("")
        sections.append(format_simple_table(
            ["build", "events"], sorted(summary.policies.items()),
            title="Events by build",
        ))
    return "\n".join(sections)
