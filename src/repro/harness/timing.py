"""Request-time measurement in the style of the paper's performance figures.

The paper instruments each server to record the time when it starts and stops
processing a request, repeats each request at least twenty times, and reports
the mean and standard deviation (§4.1).  :func:`measure_request_time` does the
same for our simulated servers; the absolute numbers are of course different
(this is a Python simulation, not a 2.8 GHz Pentium 4), but the slowdown
ratios between build variants are directly comparable to the paper's
``Slowdown`` columns.
"""

from __future__ import annotations

import gc
import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import RequestOutcome
from repro.servers.base import Request, Server


@dataclass
class TimingResult:
    """Mean / standard deviation of request processing time over N repetitions."""

    label: str
    samples_seconds: List[float] = field(default_factory=list)
    outcomes: List[RequestOutcome] = field(default_factory=list)

    @property
    def repetitions(self) -> int:
        """Number of measured repetitions."""
        return len(self.samples_seconds)

    @property
    def mean_seconds(self) -> float:
        """Mean request processing time in seconds."""
        return statistics.fmean(self.samples_seconds) if self.samples_seconds else math.nan

    @property
    def mean_ms(self) -> float:
        """Mean request processing time in milliseconds (the paper's unit)."""
        return self.mean_seconds * 1000.0

    @property
    def stdev_seconds(self) -> float:
        """Sample standard deviation in seconds (0 for a single sample)."""
        if len(self.samples_seconds) < 2:
            return 0.0
        return statistics.stdev(self.samples_seconds)

    @property
    def stdev_percent(self) -> float:
        """Standard deviation as a percentage of the mean, as the paper reports."""
        mean = self.mean_seconds
        if not mean:
            return 0.0
        return 100.0 * self.stdev_seconds / mean

    @property
    def all_served(self) -> bool:
        """True if every measured repetition was served successfully."""
        return all(outcome is RequestOutcome.SERVED for outcome in self.outcomes)

    def describe(self) -> str:
        """Human readable one-liner, e.g. ``read: 2 ms ± 2%``.

        Rounded to the same precision as the figure tables (two significant
        digits, whole percents) so recorded output does not churn on timer
        noise.
        """
        return f"{self.label}: {self.mean_ms:.2g} ms ± {self.stdev_percent:.0f}%"


def measure_request_time(
    server: Server,
    request_factory: Callable[[int], Request],
    repetitions: int = 20,
    reset: Optional[Callable[[Server, int], None]] = None,
    warmup: int = 3,
    label: str = "",
) -> TimingResult:
    """Measure the processing time of one request kind on a live server.

    Parameters
    ----------
    server:
        A started server.  The measurement uses the server's own elapsed-time
        accounting (the analogue of the paper's start/stop instrumentation).
    request_factory:
        Callable mapping the repetition index to a fresh :class:`Request`.
    repetitions:
        Number of measured repetitions (the paper uses at least twenty).
    reset:
        Optional callable invoked before every repetition to restore state the
        request consumes (e.g. re-creating the file a Delete request removes).
    warmup:
        Unmeasured repetitions executed first.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    result = TimingResult(label=label)
    # Collector pauses are the dominant source of outliers at sub-millisecond
    # request times, so the measurement loop runs with the collector disabled
    # (the paper's instrumentation has no analogous noise source).
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for index in range(warmup + repetitions):
            if reset is not None:
                reset(server, index)
            request = request_factory(index)
            request_result = server.process(request)
            if index >= warmup:
                result.samples_seconds.append(request_result.elapsed_seconds)
                result.outcomes.append(request_result.outcome)
            if request_result.fatal:
                break
    finally:
        if gc_was_enabled:
            gc.enable()
    return result


def measure_paired(
    servers: "dict[str, Server]",
    request_factory: Callable[[int], Request],
    repetitions: int = 20,
    reset: Optional[Callable[[Server, int], None]] = None,
    warmup: int = 3,
    label: str = "",
) -> "dict[str, TimingResult]":
    """Measure the same request kind on several builds with interleaved repetitions.

    Running repetition *i* on every build before moving to repetition *i+1*
    equalizes environmental drift (allocator warm-up, cache state, CPU
    frequency changes) across the builds, which matters because the quantity
    of interest is the ratio between them, not either absolute time.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    results = {name: TimingResult(label=f"{label} ({name})") for name in servers}
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for index in range(warmup + repetitions):
            for name, server in servers.items():
                if not server.alive:
                    continue
                if reset is not None:
                    reset(server, index)
                request_result = server.process(request_factory(index))
                if index >= warmup:
                    results[name].samples_seconds.append(request_result.elapsed_seconds)
                    results[name].outcomes.append(request_result.outcome)
    finally:
        if gc_was_enabled:
            gc.enable()
    return results


def slowdown(baseline: TimingResult, other: TimingResult) -> float:
    """Return how many times slower ``other`` is than ``baseline`` (paper's Slowdown)."""
    if not baseline.samples_seconds or not other.samples_seconds:
        return math.nan
    if baseline.mean_seconds == 0:
        return math.inf
    return other.mean_seconds / baseline.mean_seconds


def interactive_pause_acceptable(result: TimingResult, threshold_ms: float = 100.0) -> bool:
    """The paper's interactivity criterion: pause times under ~100 ms are imperceptible."""
    return result.mean_ms < threshold_ms


def aggregate_means(results: Sequence[TimingResult]) -> float:
    """Mean of means, used for coarse summaries across request kinds."""
    means = [r.mean_seconds for r in results if r.samples_seconds]
    return statistics.fmean(means) if means else math.nan


def wall_clock() -> float:
    """Thin wrapper over the monotonic clock used across the harness."""
    return time.perf_counter()
