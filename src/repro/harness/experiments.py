"""The experiment registry: one entry per table/figure in the paper's evaluation.

Each entry maps an experiment id (the ids used in DESIGN.md and
EXPERIMENTS.md) to a callable that runs the experiment and returns an
:class:`ExperimentOutput` containing both structured results and a formatted
text table.  The benchmark suite under ``benchmarks/`` and the examples under
``examples/`` are thin wrappers around this registry, so there is exactly one
implementation of every experiment.

Experiment ids
--------------
``fig2`` .. ``fig6``
    Request processing time tables for Pine, Apache, Sendmail, Midnight
    Commander, and Mutt (Standard vs Failure Oblivious, with slowdowns).
``tab-security``
    The §4.x.2 security/resilience matrix for all five servers and three builds.
``exp-throughput``
    Apache legitimate-request throughput while under attack (§4.3.2).
``exp-stability``
    Long mixed workloads with periodic attacks for every server (§4.x.4).
``exp-soak``
    Restart-heavy sharded soak per build: deaths restore the post-boot
    checkpoint, the stream fans out over the fork pool (``workers``).
``exp-fleet``
    Heterogeneous fleet soak: a mix of profiles x builds cloned from
    checkpoint images under seeded arrival processes (``repro fleet`` is
    the full CLI surface; this registers the canonical small fleet).
``exp-variants``
    §5.1 variants (boundless memory blocks, redirect) on the attack scenarios.
``exp-propagation``
    Error propagation distance measurements supporting §1.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.propagation import measure_propagation
from repro.analysis.security import assess_security
from repro.harness.engine import ENGINE, ScenarioSpec
from repro.harness.report import (
    format_figure_table,
    format_security_matrix,
    format_simple_table,
)
from repro.harness.soak import run_soak_experiment
from repro.harness.stability import run_stability_experiment
from repro.harness.throughput import run_throughput_experiment, throughput_ratio
from repro.harness.timing import wall_clock
from repro.servers import SERVER_CLASSES
from repro.servers.profile import get_profile
from repro.workloads.streams import mixed_stream


@dataclass
class ExperimentOutput:
    """The result of running one registered experiment."""

    experiment_id: str
    title: str
    table: str
    data: object = None
    notes: List[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience for scripts
        parts = [self.title, "", self.table]
        if self.notes:
            parts.extend(["", *self.notes])
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Figures 2-6
# ---------------------------------------------------------------------------
# The figure ids and the server behind each are read off the server profiles
# (every profile that declares a figure number gets a ``fig<N>`` experiment),
# so adding a server with a figure adds its experiment with no edits here.


def _run_figure(server_name: str, repetitions: int = 20, scale: float = 1.0,
                workers: Optional[int] = None) -> ExperimentOutput:
    profile = get_profile(server_name)
    spec = ScenarioSpec(server=server_name, workload="performance",
                        repetitions=repetitions, scale=scale)
    # One spec per figure cell so a process pool can fan the cells out; the
    # serial path (workers <= 1) takes the same route, so both paths measure
    # the same per-cell work.
    cell_specs = [spec.with_(kinds=(kind,)) for kind in profile.figure_rows]
    timed = ENGINE.run_many(cell_specs, workers=workers, timed=True)
    rows = [row for cell_rows, _seconds in timed for row in cell_rows]
    experiment_id = f"fig{profile.figure_number}"
    table = format_figure_table(rows)
    notes = [
        "Times are from the simulated substrate, not the paper's testbed;",
        "compare the Slowdown column with the paper's figure of the same number.",
        _wall_clock_note(
            [(cell.kinds[0], seconds) for cell, (_r, seconds) in zip(cell_specs, timed)],
            workers,
        ),
    ]
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=f"Request processing times for {server_name} (paper Figure {profile.figure_number})",
        table=table,
        data=rows,
        notes=notes,
    )


def _wall_clock_note(spec_seconds: List[tuple], workers: Optional[int]) -> str:
    """One note line surfacing per-spec wall clock and the fan-out width."""
    mode = f"{workers} workers" if workers and workers > 1 else "serial"
    cells = ", ".join(f"{label} {seconds:.2f}s" for label, seconds in spec_seconds)
    total = sum(seconds for _label, seconds in spec_seconds)
    return f"wall-clock ({mode}): {cells} (sum {total:.2f}s)"


# ---------------------------------------------------------------------------
# Security matrix
# ---------------------------------------------------------------------------


def _run_security(repetitions: int = 1, scale: float = 0.25,
                  workers: Optional[int] = None) -> ExperimentOutput:
    started = wall_clock()
    cells = ENGINE.run_security_matrix(scale=scale, workers=workers)
    elapsed = wall_clock() - started
    assessments = assess_security(cells=cells)
    table = format_security_matrix(cells)
    verdict_rows = [
        (a.server, a.policy, a.verdict()) for a in assessments
    ]
    verdict_table = format_simple_table(
        ["server", "build", "verdict"], verdict_rows, title="Security verdicts"
    )
    mode = f"{workers} workers" if workers and workers > 1 else "serial"
    return ExperimentOutput(
        experiment_id="tab-security",
        title="Security and resilience under the documented attacks (§4.2.2-§4.6.2)",
        table=table + "\n\n" + verdict_table,
        data={"cells": cells, "assessments": assessments},
        notes=[f"matrix wall-clock ({mode}): {elapsed:.2f}s for {len(cells)} cells"],
    )


# ---------------------------------------------------------------------------
# Apache throughput under attack
# ---------------------------------------------------------------------------


def _run_throughput(
    attack_fraction: float = 0.6, total_requests: int = 240, pool_size: int = 4
) -> ExperimentOutput:
    results = run_throughput_experiment(
        attack_fraction=attack_fraction,
        total_requests=total_requests,
        pool_size=pool_size,
    )
    rows = [
        (
            policy,
            result.legitimate_served,
            result.child_deaths,
            f"{result.total_seconds:.3f}s",
            f"{result.throughput_rps:.1f}",
        )
        for policy, result in results.items()
    ]
    table = format_simple_table(
        ["build", "legitimate served", "child deaths", "service time", "throughput (req/s)"],
        rows,
        title="Apache throughput while under attack (§4.3.2)",
    )
    fo_over_bc = throughput_ratio(results, "failure-oblivious", "bounds-check")
    fo_over_std = throughput_ratio(results, "failure-oblivious", "standard")
    notes = [
        f"failure-oblivious / bounds-check throughput ratio: {fo_over_bc:.1f}x (paper: ~5.7x)",
        f"failure-oblivious / standard throughput ratio: {fo_over_std:.1f}x (paper: ~4.8x)",
    ]
    return ExperimentOutput(
        experiment_id="exp-throughput",
        title="Apache throughput under attack",
        table=table,
        data={"results": results, "fo_over_bc": fo_over_bc, "fo_over_std": fo_over_std},
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Stability
# ---------------------------------------------------------------------------


def _run_stability(
    total_requests: int = 120, attack_every: int = 20, scale: float = 0.25
) -> ExperimentOutput:
    rows = []
    results = {}
    for server_name in sorted(SERVER_CLASSES):
        result = run_stability_experiment(
            server_name,
            "failure-oblivious",
            total_requests=total_requests,
            attack_every=attack_every,
            scale=scale,
        )
        results[server_name] = result
        rows.append(
            (
                server_name,
                result.legitimate_served,
                result.legitimate_failed,
                result.attacks_survived,
                result.attack_requests,
                result.server_deaths,
                result.memory_errors_logged,
                "yes" if result.flawless else "NO",
            )
        )
    table = format_simple_table(
        [
            "server",
            "legit served",
            "legit failed",
            "attacks survived",
            "attacks sent",
            "deaths",
            "errors logged",
            "flawless",
        ],
        rows,
        title="Failure-oblivious stability under periodic attack (§4.x.4)",
    )
    return ExperimentOutput(
        experiment_id="exp-stability",
        title="Stability of the failure-oblivious builds",
        table=table,
        data=results,
    )


# ---------------------------------------------------------------------------
# Sharded soak (checkpointed restarts + in-scenario fan-out)
# ---------------------------------------------------------------------------


def _run_soak(
    server: str = "apache",
    total_requests: int = 400,
    attack_every: int = 2,
    shards: int = 8,
    workers: Optional[int] = None,
    scale: float = 0.25,
    policies: tuple = ("standard", "bounds-check", "failure-oblivious"),
) -> ExperimentOutput:
    """Restart-heavy soak per build: the §4.3.2 shape at soak length.

    Every death is recovered by restoring the post-boot process image; the
    stream is sharded over the fork pool when ``workers`` > 1 (tallies are
    identical to the serial run either way).
    """
    results = {}
    rows = []
    for policy_name in policies:
        result = run_soak_experiment(
            server, policy_name, total_requests=total_requests,
            attack_every=attack_every, shards=shards, workers=workers,
            scale=scale,
        )
        results[policy_name] = result
        rows.append(
            (
                policy_name,
                result.legitimate_served,
                result.server_deaths,
                result.restarts,
                f"{result.wall_seconds:.3f}s",
                f"{result.requests_per_sec:.0f}",
            )
        )
    mode = f"{workers} workers" if workers and workers > 1 else "serial"
    table = format_simple_table(
        ["build", "legit served", "deaths", "restarts", "wall clock", "soak req/s"],
        rows,
        title=f"Sharded {server} soak under attack (checkpointed restarts, {mode})",
    )
    return ExperimentOutput(
        experiment_id="exp-soak",
        title=f"Sharded soak throughput for {server}",
        table=table,
        data=results,
        notes=[
            f"{shards} shards, attack every {attack_every} requests; every death "
            "restores the post-boot checkpoint instead of rebooting",
        ],
    )


# ---------------------------------------------------------------------------
# Fleet soak (heterogeneous instances, seeded arrivals, streaming sinks)
# ---------------------------------------------------------------------------


def _run_fleet(
    total_requests: int = 900,
    attack_every: int = 10,
    workers: Optional[int] = None,
    scale: float = 0.25,
    seed: int = 20040101,
) -> ExperimentOutput:
    """The canonical small fleet: three profiles under two builds each.

    ``repro fleet run`` exposes the full surface (arbitrary instance mixes,
    arrival shapes, SQLite streaming); this registered experiment pins one
    reproducible configuration so ``repro run exp-fleet`` and
    ``repro trace export exp-fleet`` work like every other experiment.
    """
    from repro.fleet.report import format_fleet_table
    from repro.fleet.scheduler import InstanceSpec, run_fleet

    specs = [
        InstanceSpec("apache", "failure-oblivious", count=2,
                     attack_every=attack_every),
        InstanceSpec("apache", "bounds-check", attack_every=attack_every),
        InstanceSpec("pine", "failure-oblivious", attack_every=attack_every),
        InstanceSpec("pine", "bounds-check", attack_every=attack_every),
        InstanceSpec("sendmail", "failure-oblivious", attack_every=attack_every,
                     arrival="bursty"),
    ]
    result = run_fleet(
        specs, total_requests=total_requests, seed=seed, workers=workers,
        scale=scale,
    )
    mode = f"{workers} workers" if workers and workers > 1 else "serial"
    return ExperimentOutput(
        experiment_id="exp-fleet",
        title="Fleet soak: heterogeneous instances from checkpoint images",
        table=format_fleet_table(
            result,
            title=f"Fleet soak: per-instance availability ({mode})",
        ),
        data=result,
        notes=[
            "instances are cloned from one template image per (server, build) "
            "group; deaths restore the image O(dirty-bytes)",
            f"traffic is bit-reproducible in seed={seed} regardless of workers",
        ],
    )


# ---------------------------------------------------------------------------
# §5.1 variants
# ---------------------------------------------------------------------------


def _run_variants(scale: float = 0.25) -> ExperimentOutput:
    policies = ("failure-oblivious", "boundless", "redirect")
    cells = ENGINE.run_security_matrix(policies=policies, scale=scale)
    table = format_security_matrix(
        cells, title="§5.1 variants: boundless memory blocks and redirect"
    )
    survived = {
        policy: all(
            cell.continued_service for cell in cells if cell.policy == policy
        )
        for policy in policies
    }
    notes = [
        f"{policy}: {'all servers keep serving' if ok else 'service degraded'}"
        for policy, ok in survived.items()
    ]
    return ExperimentOutput(
        experiment_id="exp-variants",
        title="Continuation-code variants (§5.1)",
        table=table,
        data={"cells": cells, "survived": survived},
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Error propagation distances
# ---------------------------------------------------------------------------


def _run_propagation(total_requests: int = 40, attack_every: int = 8, scale: float = 0.25) -> ExperimentOutput:
    rows = []
    reports = {}
    for server_name in sorted(SERVER_CLASSES):
        stream = mixed_stream(
            server_name, total_requests=total_requests, attack_every=attack_every
        )
        report = measure_propagation(server_name, "failure-oblivious", list(stream))
        reports[server_name] = report
        rows.append(
            (
                server_name,
                report.error_requests,
                f"{report.max_control_distance:g}",
                f"{report.max_data_distance:g}",
                "yes" if report.short_propagation else "no",
            )
        )
    table = format_simple_table(
        ["server", "requests with errors", "max control distance", "max data distance", "short propagation"],
        rows,
        title="Error propagation distances under failure-oblivious execution (§1.2)",
    )
    return ExperimentOutput(
        experiment_id="exp-propagation",
        title="Error propagation distances",
        table=table,
        data=reports,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _figure_runner(server_name: str) -> Callable[..., ExperimentOutput]:
    def run(**kwargs) -> ExperimentOutput:
        return _run_figure(server_name, **kwargs)

    return run


EXPERIMENTS: Dict[str, Callable[..., ExperimentOutput]] = {
    f"fig{get_profile(name).figure_number}": _figure_runner(name)
    for name in SERVER_CLASSES
    if get_profile(name).figure_number is not None
}
EXPERIMENTS.update(
    {
        "tab-security": _run_security,
        "exp-throughput": _run_throughput,
        "exp-stability": _run_stability,
        "exp-soak": _run_soak,
        "exp-fleet": _run_fleet,
        "exp-variants": _run_variants,
        "exp-propagation": _run_propagation,
    }
)


def register_experiment(experiment_id: str, runner: Callable[..., ExperimentOutput]) -> None:
    """Register (or replace) an experiment; plugins use this to add tables."""
    EXPERIMENTS[experiment_id] = runner


def run_experiment(experiment_id: str, **kwargs) -> ExperimentOutput:
    """Run a registered experiment by id.

    Raises
    ------
    KeyError
        If ``experiment_id`` is not in :data:`EXPERIMENTS`.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; expected one of {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
