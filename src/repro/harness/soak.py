"""Sharded soak runs: one booted image, a long request stream, many workers.

The stability experiments process their request stream serially against one
server, so a full-scale soak is bounded by one core — and, before the
checkpoint subsystem, by the cost of rebuilding the whole process image on
every death.  This module removes both bounds:

* the server is built and booted **once**; its post-boot
  :class:`~repro.servers.base.ProcessImage` seeds every worker (the same
  image the in-scenario restarts restore, so a death costs a memory restore,
  not a reboot);
* the stream is split into ``shards`` deterministic contiguous chunks, fanned
  over the same forked process pool ``ExperimentEngine.run_many`` uses, and
  merged back in stream order.  Shard boundaries depend only on ``shards``,
  never on ``workers``, so the tallies are identical however many workers run
  them — the parallel soak is bit-for-bit the serial soak, faster.

Each shard starts from the boot image (every worker's server is a clone of
the same template), which is what makes the fan-out semantically clean: a
shard observes exactly the process state a freshly rebooted server would
show.  Telemetry flows through the PR 3 per-worker spill files; each shard
stamps its events with its shard index as the scenario id, so a merged JSONL
export reads in stream order.

This is the *single-server* scale harness.  For many servers at once — any
mix of profiles x policies under seeded arrival processes, with streaming
stats/SQLite sinks — use :func:`repro.fleet.scheduler.run_fleet` (the
``repro fleet`` CLI), which drives fleets of instances cloned over this same
checkpoint-image machinery.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.stability import WorkloadTallySink
from repro.servers.base import Request, Server, bounded_history_limit
from repro.telemetry.session import current_session
from repro.workloads.streams import RequestStream, mixed_stream

#: State inherited by forked shard workers (set immediately before the pool
#: is created, cleared after; never pickled).
_POOL_SOAK: Optional["_SoakRun"] = None


@dataclass
class SoakShard:
    """Tallies for one contiguous chunk of the stream (one worker's unit)."""

    index: int
    requests: int
    attack_requests: int
    legitimate_served: int = 0
    legitimate_failed: int = 0
    attacks_survived: int = 0
    server_deaths: int = 0
    restarts: int = 0
    memory_errors_logged: int = 0
    error_sites: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0


@dataclass
class SoakResult:
    """Outcome of one sharded soak (shard tallies merged in stream order)."""

    server: str
    policy: str
    shard_count: int
    workers: int
    use_checkpoints: bool
    total_requests: int
    attack_requests: int
    legitimate_requests: int
    boot_fatal: bool
    shards: List[SoakShard]
    wall_seconds: float

    def _sum(self, field_name: str) -> int:
        return sum(getattr(shard, field_name) for shard in self.shards)

    @property
    def legitimate_served(self) -> int:
        """Legitimate requests served across all shards."""
        return self._sum("legitimate_served")

    @property
    def legitimate_failed(self) -> int:
        """Legitimate requests failed (or arriving while down) across shards."""
        return self._sum("legitimate_failed")

    @property
    def attacks_survived(self) -> int:
        """Attack requests survived across all shards."""
        return self._sum("attacks_survived")

    @property
    def server_deaths(self) -> int:
        """Process deaths across all shards."""
        return self._sum("server_deaths")

    @property
    def restarts(self) -> int:
        """Monitor restarts across all shards."""
        return self._sum("restarts")

    @property
    def memory_errors_logged(self) -> int:
        """Memory errors attempted during shard workloads."""
        return self._sum("memory_errors_logged")

    @property
    def requests_per_sec(self) -> float:
        """End-to-end soak throughput (boot + all shards, wall clock)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_requests / self.wall_seconds

    def tally(self) -> Dict[str, int]:
        """The order-independent tallies (what serial == parallel compares)."""
        sites: Dict[str, int] = {}
        for shard in self.shards:
            for site, count in shard.error_sites.items():
                sites[site] = sites.get(site, 0) + count
        return {
            "legitimate_served": self.legitimate_served,
            "legitimate_failed": self.legitimate_failed,
            "attacks_survived": self.attacks_survived,
            "server_deaths": self.server_deaths,
            "restarts": self.restarts,
            "memory_errors_logged": self.memory_errors_logged,
            **{f"site:{site}": count for site, count in sorted(sites.items())},
        }


@dataclass
class _SoakRun:
    """Everything a shard worker needs, inherited across the fork."""

    server_name: str
    policy_name: str
    config: Optional[Dict[str, object]]
    scale: float
    image: object
    restart_on_death: bool
    use_checkpoints: bool
    history_limit: Optional[int]

    def build_clone(self) -> Server:
        from repro.harness.engine import ENGINE

        server = ENGINE.build_server(
            self.server_name, self.policy_name, config=self.config,
            plant_attack=True, scale=self.scale,
        )
        server.limit_history(self.history_limit)
        if self.use_checkpoints and self.image is not None:
            server.adopt_image(self.image)
        else:
            # The pre-checkpoint cost model: no image is ever captured, so
            # boots (and in-shard restarts) pay exactly the pre-checkpoint
            # price — this is the baseline the benchmark gates against.
            server.checkpoint_restarts = False
            server.start()
        return server


def _run_shard(run: "_SoakRun", index: int, requests: Sequence[Request]) -> SoakShard:
    """Process one chunk against a fresh clone of the boot image.

    When a telemetry session is active the shard's events are stamped with
    its index as the scenario id — serial and pooled runs export the same
    stream shape, and the merged JSONL reads in stream order.  The previous
    stamp is restored afterwards, so an engine-managed outer scenario keeps
    stamping the events that follow the soak.
    """
    session = current_session()
    if session is not None:
        with session.scenario_scope(index):
            return _run_shard_body(run, index, requests)
    return _run_shard_body(run, index, requests)


def _run_shard_body(run: "_SoakRun", index: int, requests: Sequence[Request]) -> SoakShard:
    started = time.perf_counter()
    shard = SoakShard(
        index=index,
        requests=len(requests),
        attack_requests=sum(1 for request in requests if request.is_attack),
    )
    server = run.build_clone()

    def monitor_restart() -> None:
        # The pre-checkpoint baseline must pay the real reboot on every
        # death, not the image restore a plain restart() would take.
        if run.use_checkpoints:
            server.restart()
        else:
            server.restart_from_scratch()

    if not server.alive:
        # The boot image is fatal (Pine/Mutt style persistent triggers).
        # Mirror run_stability_experiment's accounting exactly: the failed
        # boot is a death, the monitor retries once before the stream starts
        # (a failed retry is another death), and the request loop below
        # keeps retrying before each request.
        shard.server_deaths += 1
        if run.restart_on_death:
            monitor_restart()
            shard.restarts += 1
            if not server.alive:
                shard.server_deaths += 1
    tally = server.add_telemetry_sink(WorkloadTallySink())
    unserved_while_down = 0
    for request in requests:
        if not server.alive:
            if run.restart_on_death:
                monitor_restart()
                shard.restarts += 1
                if not server.alive:
                    shard.server_deaths += 1
            if not server.alive:
                if not request.is_attack:
                    unserved_while_down += 1
                continue
        server.process(request)
    server.stop()
    shard.legitimate_served = tally.legitimate_served
    shard.legitimate_failed = tally.legitimate_failed + unserved_while_down
    shard.attacks_survived = tally.attacks_survived
    shard.server_deaths += tally.server_deaths
    shard.memory_errors_logged = tally.memory_errors
    shard.error_sites = dict(tally.error_sites)
    shard.wall_seconds = time.perf_counter() - started
    return shard


def _pool_run_shard(indexed: Tuple[int, List[Request]]) -> SoakShard:
    """Entry point inside a forked worker (the stamping lives in _run_shard)."""
    index, requests = indexed
    return _run_shard(_POOL_SOAK, index, requests)


def split_stream(requests: Sequence[Request], shards: int) -> List[List[Request]]:
    """Split a stream into ``shards`` contiguous, near-equal chunks.

    Deterministic in ``shards`` alone: chunk boundaries never depend on the
    worker count, which is what keeps parallel tallies identical to serial.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    requests = list(requests)
    shards = min(shards, max(len(requests), 1))
    base, extra = divmod(len(requests), shards)
    chunks: List[List[Request]] = []
    position = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(requests[position:position + size])
        position += size
    return chunks


def run_soak_experiment(
    server_name: str,
    policy_name: str,
    total_requests: int = 400,
    attack_every: int = 10,
    shards: int = 8,
    workers: Optional[int] = None,
    restart_on_death: bool = True,
    seed: int = 20040101,
    scale: float = 0.25,
    stream: Optional[RequestStream] = None,
    config: Optional[Dict[str, object]] = None,
    use_checkpoints: bool = True,
    history_limit: Optional[int] = 64,
    allow_unbounded_history: bool = False,
) -> SoakResult:
    """Run a sharded soak: boot once, fan the stream over cloned workers.

    ``use_checkpoints=False`` makes every shard (and every in-shard restart)
    boot from scratch — the pre-checkpoint cost model, kept so the benchmark
    can report the speedup honestly.  ``workers`` of None/0/1 runs the shards
    serially in-process through the *same* shard function, so parallel runs
    are tally-identical to serial ones by construction.

    As a soak-scale harness, an unbounded per-request history is refused
    unless ``allow_unbounded_history=True`` opts in explicitly (see
    :func:`~repro.servers.base.bounded_history_limit`).
    """
    global _POOL_SOAK
    history_limit = bounded_history_limit(
        history_limit, allow_unbounded=allow_unbounded_history,
        harness="run_soak_experiment",
    )
    workload = stream if stream is not None else mixed_stream(
        server_name, total_requests=total_requests,
        attack_every=attack_every, seed=seed,
    )
    requests = list(workload)
    chunks = split_stream(requests, shards)

    started = time.perf_counter()
    run = _SoakRun(
        server_name=server_name, policy_name=policy_name, config=config,
        scale=scale, image=None, restart_on_death=restart_on_death,
        use_checkpoints=use_checkpoints, history_limit=history_limit,
    )
    from repro.harness.engine import ENGINE

    template = ENGINE.build_server(
        server_name, policy_name, config=config, plant_attack=True, scale=scale,
    )
    template.limit_history(history_limit)
    if not use_checkpoints:
        template.checkpoint_restarts = False  # skip the unused image capture
    boot_fatal = template.start().fatal
    if use_checkpoints:
        run.image = template.boot_image
    template.stop()

    count = 0 if workers is None else int(workers)
    results: List[SoakShard] = []
    if count > 1 and len(chunks) > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            _POOL_SOAK = run
            try:
                with ProcessPoolExecutor(
                    max_workers=min(count, len(chunks)), mp_context=context
                ) as pool:
                    results = list(pool.map(_pool_run_shard, enumerate(chunks)))
            finally:
                _POOL_SOAK = None
    if not results:
        results = [_run_shard(run, index, chunk) for index, chunk in enumerate(chunks)]

    return SoakResult(
        server=server_name,
        policy=policy_name,
        shard_count=len(chunks),
        workers=count,
        use_checkpoints=use_checkpoints,
        total_requests=len(requests),
        attack_requests=workload.attack_count,
        legitimate_requests=workload.legitimate_count,
        boot_fatal=boot_fatal,
        shards=results,
        wall_seconds=time.perf_counter() - started,
    )
