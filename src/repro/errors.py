"""Exception hierarchy and outcome model for the failure-oblivious runtime.

The paper distinguishes three builds of each server (Standard, Bounds Check,
Failure Oblivious) by what happens at the moment an out-of-bounds access is
attempted.  The exceptions in this module are the Python analogue of the three
possible hard outcomes:

* ``SegmentationFault`` -- the Standard (unchecked) build corrupted memory and
  the process died, exactly like a real segfault.
* ``BoundsCheckViolation`` -- the Bounds Check (CRED) build detected the error
  and terminated with a message.
* ``ControlFlowHijack`` -- the Standard build's corrupted return address was
  attacker-controlled; the paper describes this as the attacker executing
  injected code.

The Failure Oblivious build never raises any of these for a memory error; it
records a :class:`MemoryErrorEvent` in its log and keeps going.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class MemoryFault(Exception):
    """Base class for all faults produced by the simulated memory system."""


class SegmentationFault(MemoryFault):
    """Raised when an unchecked access touches unmapped or protective memory.

    This models the behaviour of the paper's *Standard* build: the program is
    allowed to corrupt its address space and eventually dies with SIGSEGV.
    """

    def __init__(self, address: int, message: str = "") -> None:
        self.address = address
        super().__init__(message or f"segmentation fault at address {address:#x}")

    def __reduce__(self):
        # Exceptions pickle as ``cls(*args)``, but ``args`` holds the formatted
        # message, not the constructor arguments; spell them out so results can
        # cross process-pool boundaries (ExperimentEngine.run_many).  The
        # message is included because callers (the stack) raise with custom text.
        return (type(self), (self.address, str(self)))


class BoundsCheckViolation(MemoryFault):
    """Raised by the Bounds Check policy at the first detected memory error.

    Models the CRED safe-C compiler used for the paper's *Bounds Check* build,
    which prints an error message and terminates the program.
    """

    def __init__(self, event: "MemoryErrorEvent") -> None:
        self.event = event
        super().__init__(f"bounds check violation: {event.describe()}")

    def __reduce__(self):
        return (type(self), (self.event,))


class ControlFlowHijack(MemoryFault):
    """Raised when a corrupted return address is attacker controlled.

    In the real attacks the server jumps to injected code.  We cannot (and do
    not want to) execute injected code, so the simulated call stack raises this
    exception instead, which the harness classifies as a successful exploit.
    """

    def __init__(self, address: int, payload_tag: str) -> None:
        self.address = address
        self.payload_tag = payload_tag
        super().__init__(
            f"control flow hijacked to {address:#x} (payload {payload_tag!r})"
        )

    def __reduce__(self):
        return (type(self), (self.address, self.payload_tag))


class DoubleFree(MemoryFault):
    """Raised by the heap allocator when a block is freed twice."""


class HeapCorruption(MemoryFault):
    """Raised when heap metadata was smashed and later used by the allocator."""


class UseAfterFree(MemoryFault):
    """Raised on access through a pointer to a freed data unit (checked builds)."""

    def __init__(self, event: "MemoryErrorEvent") -> None:
        self.event = event
        super().__init__(f"use after free: {event.describe()}")

    def __reduce__(self):
        return (type(self), (self.event,))


class InfiniteLoopGuard(MemoryFault):
    """Raised when a guarded loop exceeds its iteration budget.

    The paper notes that manufactured read values can drive loop conditions
    (the Midnight Commander ``/`` search); a poor value sequence can hang the
    program.  Server loops in this reproduction are guarded so that a hang
    becomes an observable outcome instead of wedging the test suite.
    """


class MiniCError(Exception):
    """Base class for mini-C front end errors (lexing, parsing, typing)."""


class AccessKind(enum.Enum):
    """Whether a faulting access was a read or a write."""

    READ = "read"
    WRITE = "write"


class ErrorKind(enum.Enum):
    """Classification of a detected memory error."""

    OUT_OF_BOUNDS = "out-of-bounds"
    USE_AFTER_FREE = "use-after-free"
    UNINITIALIZED = "uninitialized"
    NULL_DEREF = "null-dereference"
    INVALID_FREE = "invalid-free"


@dataclass(frozen=True)
class MemoryErrorEvent:
    """One attempted invalid memory access.

    These events are what the optional memory-error log described in Section 3
    of the paper records; the harness also uses them to measure error
    propagation distances.
    """

    kind: ErrorKind
    access: AccessKind
    unit_name: str
    unit_size: int
    offset: int
    length: int
    site: str = ""
    request_id: Optional[int] = None

    def describe(self) -> str:
        """Return a one-line human readable description of the event."""
        return (
            f"{self.access.value} of {self.length} byte(s) at offset {self.offset} "
            f"of {self.unit_size}-byte unit {self.unit_name!r} "
            f"({self.kind.value}{', at ' + self.site if self.site else ''})"
        )


class RequestOutcome(enum.Enum):
    """How the server loop resolved one request.

    The paper's evaluation sections describe outcomes in these terms: the
    Standard build crashes (or is exploited), the Bounds Check build
    terminates, and the Failure Oblivious build either serves the request or
    turns the attack into an anticipated error case that the server's own
    error-handling logic rejects.
    """

    SERVED = "served"
    REJECTED_BY_ERROR_HANDLING = "rejected-by-error-handling"
    CRASHED = "crashed"
    TERMINATED_BY_CHECK = "terminated-by-check"
    EXPLOITED = "exploited"
    HUNG = "hung"


#: Outcomes after which the server process no longer exists and cannot serve
#: subsequent requests without being restarted.
FATAL_OUTCOMES = frozenset(
    {
        RequestOutcome.CRASHED,
        RequestOutcome.TERMINATED_BY_CHECK,
        RequestOutcome.EXPLOITED,
        RequestOutcome.HUNG,
    }
)


@dataclass
class RequestResult:
    """The result of processing a single request under some policy."""

    outcome: RequestOutcome
    response: Optional[object] = None
    error: Optional[BaseException] = None
    memory_errors: list = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def fatal(self) -> bool:
        """True if the server died while processing this request."""
        return self.outcome in FATAL_OUTCOMES

    @property
    def acceptable(self) -> bool:
        """True if the user-visible behaviour was acceptable (paper's criterion)."""
        return self.outcome in (
            RequestOutcome.SERVED,
            RequestOutcome.REJECTED_BY_ERROR_HANDLING,
        )
