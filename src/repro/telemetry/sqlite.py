"""Streaming SQLite export: the bus feeds post-hoc SQL instead of flat JSONL.

A :class:`SqliteSink` appends every event to a SQLite database with batched
``executemany`` inserts, so a fleet-scale run streams its telemetry to disk in
bounded memory and the result is *queryable* — ``repro fleet report`` and any
ad-hoc ``sqlite3`` session can aggregate billions of rows without re-parsing
JSONL.  The on-disk shape mirrors the JSONL export exactly: each row stores
the full :func:`~repro.telemetry.events.to_record` dict (scope and scenario
stamps included) as JSON in the ``record`` column, plus denormalized index
columns (event tag, server, policy, site, scenario, request id) for SQL
filtering.  Because the ``record`` column is the same dict a JSONL line
carries, :func:`iter_sqlite_records` makes every offline consumer
(``repro trace summary`` / ``filter``, :func:`~repro.telemetry.summary.request_traces`)
work identically on either format.

Fork-pool runs write one database per worker shard (no cross-process
contention on a single connection) and :func:`merge_sqlite` reassembles them
ordered by scenario id, exactly like
:meth:`~repro.telemetry.session.TelemetrySession.merge` does for JSONL spills.
"""

from __future__ import annotations

import json
import os
import sqlite3
import warnings
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.telemetry.events import to_record
from repro.telemetry.sinks import Sink

#: The first bytes of every SQLite database file (used for format sniffing).
SQLITE_MAGIC = b"SQLite format 3\x00"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    seq        INTEGER PRIMARY KEY,
    scenario   INTEGER,
    event      TEXT NOT NULL,
    server     TEXT,
    policy     TEXT,
    site       TEXT,
    request_id INTEGER,
    record     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_scenario ON events (scenario);
CREATE INDEX IF NOT EXISTS idx_events_event ON events (event);
CREATE INDEX IF NOT EXISTS idx_events_site ON events (site);
"""


def is_sqlite_file(path: str) -> bool:
    """True if ``path`` starts with the SQLite magic (vs a JSONL text file)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


def _row_for(record: Mapping[str, object]) -> tuple:
    scope = record.get("scope") or {}
    return (
        record.get("scenario"),
        record.get("event"),
        scope.get("server") if isinstance(scope, Mapping) else None,
        scope.get("policy") if isinstance(scope, Mapping) else None,
        record.get("site"),
        record.get("request_id"),
        json.dumps(record),
    )


class SqliteSink(Sink):
    """Batched-insert SQLite sink: attachable to a bus, or fed full records.

    Parameters
    ----------
    path:
        Database file (created with the ``events`` schema if missing).
    batch_size:
        Rows buffered between ``executemany`` flushes.  Batching is what
        keeps the per-event cost near the JSONL sink's: one commit per batch,
        not per event.
    scope / scenario:
        Default stamps merged into records written via :meth:`emit` (a bus
        delivers bare events, so the attacher supplies the attribution).
        ``scenario`` is mutable — the fleet scheduler retargets it per
        instance; use :meth:`scoped` for a fixed-stamp adapter instead.
    """

    def __init__(
        self,
        path: str,
        batch_size: int = 512,
        scope: Optional[Mapping[str, str]] = None,
        scenario: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.path = path
        self.batch_size = batch_size
        self.scope = dict(scope) if scope else None
        self.scenario = scenario
        self.written = 0
        self._batch: List[tuple] = []
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        # Durability is the merge step's job (spill databases are merged and
        # deleted); trading fsync-per-commit away keeps streaming writes from
        # dominating the run being observed.
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.commit()

    # -- writing -----------------------------------------------------------------

    def emit(self, event: object) -> None:
        record = to_record(event)
        if self.scope:
            record["scope"] = dict(self.scope)
        if self.scenario is not None:
            record["scenario"] = self.scenario
        self.write_record(record)

    def write_record(self, record: Mapping[str, object]) -> None:
        """Append one already-stamped record dict (the JSONL line shape)."""
        self._batch.append(_row_for(record))
        self.written += 1
        if len(self._batch) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Write the buffered batch out (no-op when the buffer is empty)."""
        if not self._batch:
            return
        self._conn.executemany(
            "INSERT INTO events (scenario, event, server, policy, site, "
            "request_id, record) VALUES (?, ?, ?, ?, ?, ?, ?)",
            self._batch,
        )
        self._conn.commit()
        self._batch.clear()

    def close(self) -> None:
        """Flush pending rows and close the connection."""
        self.flush()
        self._conn.close()

    def __enter__(self) -> "SqliteSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- adapters ----------------------------------------------------------------

    def scoped(self, scope: Mapping[str, str], scenario: Optional[int]) -> Sink:
        """A fixed-stamp bus adapter forwarding into this sink.

        One shared database can then serve many server instances: each
        instance attaches its own scoped adapter, and every row lands with
        that instance's server/policy scope and scenario id.
        """
        return _ScopedSqliteView(self, scope, scenario)


class _ScopedSqliteView(Sink):
    __slots__ = ("_sink", "_scope", "_scenario")

    def __init__(self, sink: SqliteSink, scope: Mapping[str, str],
                 scenario: Optional[int]) -> None:
        self._sink = sink
        self._scope = dict(scope)
        self._scenario = scenario

    def emit(self, event: object) -> None:
        record = to_record(event)
        record["scope"] = dict(self._scope)
        if self._scenario is not None:
            record["scenario"] = self._scenario
        self._sink.write_record(record)


# -- reading / merging ---------------------------------------------------------


def iter_sqlite_records(path: str) -> Iterator[Dict[str, object]]:
    """Yield the record dicts of a SQLite export, in stored (seq) order.

    The yielded dicts are exactly what the equivalent JSONL export's lines
    parse to, so every offline consumer accepts either format unchanged.
    """
    conn = sqlite3.connect(path)
    try:
        for (text,) in conn.execute("SELECT record FROM events ORDER BY seq"):
            yield json.loads(text)
    finally:
        conn.close()


def merge_sqlite(paths: Sequence[str], out_path: str) -> int:
    """Combine per-worker spill databases into one, ordered by scenario.

    Mirrors :meth:`~repro.telemetry.session.TelemetrySession.merge`: within a
    spill, rows keep their order; across the merge, contiguous same-scenario
    blocks are sorted by (scenario id, discovery order), unscoped rows
    (scenario NULL) first.  ``paths`` should be in spec/shard order so
    discovery order is deterministic.  Returns the number of rows written.

    A missing or unreadable spill (a worker died before flushing, a file was
    cleaned up early) is skipped with a :class:`UserWarning` — losing one
    worker's telemetry should degrade the export, not destroy the rest of
    the run's.
    """
    if os.path.exists(out_path):
        os.unlink(out_path)
    out = sqlite3.connect(out_path)
    out.executescript(_SCHEMA)
    out.execute("PRAGMA synchronous=OFF")
    # (scenario_key, discovery_order, rows) blocks, like the JSONL merge —
    # block bookkeeping is O(blocks); row copies stream batch-wise per block.
    blocks: List[tuple] = []
    total = 0
    for path in paths:
        if not os.path.exists(path):
            # sqlite3.connect would silently create an empty database here;
            # surface the gap instead and merge what actually exists.
            warnings.warn(
                f"spill database {path!r} is missing; merging without it",
                stacklevel=2,
            )
            continue
        spill = sqlite3.connect(path)
        try:
            block_key: object = None
            block_rows: List[tuple] = []
            for row in spill.execute(
                "SELECT scenario, event, server, policy, site, request_id, "
                "record FROM events ORDER BY seq"
            ):
                key = -1 if row[0] is None else row[0]
                if block_rows and key != block_key:
                    blocks.append((block_key, len(blocks), block_rows))
                    block_rows = []
                block_key = key
                block_rows.append(row)
                total += 1
            if block_rows:
                blocks.append((block_key, len(blocks), block_rows))
        except sqlite3.Error as error:
            warnings.warn(
                f"spill database {path!r} is unreadable ({error}); "
                "merging without it",
                stacklevel=2,
            )
        finally:
            spill.close()
    blocks.sort(key=lambda block: (block[0], block[1]))
    for _key, _order, rows in blocks:
        out.executemany(
            "INSERT INTO events (scenario, event, server, policy, site, "
            "request_id, record) VALUES (?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
    out.commit()
    out.close()
    return total


__all__ = [
    "SQLITE_MAGIC",
    "SqliteSink",
    "is_sqlite_file",
    "iter_sqlite_records",
    "merge_sqlite",
]
